#include "dist/wire.h"

#include <chrono>
#include <cstring>

#include "serve/frontend.h"

namespace tcss {
namespace {

void PutU8(uint8_t v, std::string* out) {
  out->push_back(static_cast<char>(v));
}

void PutU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutI32(int32_t v, std::string* out) {
  PutU32(static_cast<uint32_t>(v), out);
}

// Raw IEEE-754 bits: the value that arrives is the value that was sent,
// exactly — the foundation of the cross-process determinism contract.
void PutF64(double v, std::string* out) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits, out);
}

void PutF64Array(const std::vector<double>& v, std::string* out) {
  PutU32(static_cast<uint32_t>(v.size()), out);
  for (double x : v) PutF64(x, out);
}

void PutI32Array(const std::vector<int32_t>& v, std::string* out) {
  PutU32(static_cast<uint32_t>(v.size()), out);
  for (int32_t x : v) PutI32(x, out);
}

/// Bounds-checked sequential reader over a payload.
class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  bool TakeU8(uint8_t* out) {
    if (data_.size() < 1) return false;
    *out = static_cast<uint8_t>(data_[0]);
    data_.remove_prefix(1);
    return true;
  }

  bool TakeU32(uint32_t* out) {
    if (data_.size() < 4) return false;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[i])) << (8 * i);
    }
    data_.remove_prefix(4);
    *out = v;
    return true;
  }

  bool TakeU64(uint64_t* out) {
    if (data_.size() < 8) return false;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[i])) << (8 * i);
    }
    data_.remove_prefix(8);
    *out = v;
    return true;
  }

  bool TakeI32(int32_t* out) {
    uint32_t v = 0;
    if (!TakeU32(&v)) return false;
    *out = static_cast<int32_t>(v);
    return true;
  }

  bool TakeF64(double* out) {
    uint64_t bits = 0;
    if (!TakeU64(&bits)) return false;
    std::memcpy(out, &bits, sizeof(*out));
    return true;
  }

  // The count is validated against the bytes actually present before any
  // allocation: a flipped length byte cannot balloon memory.
  bool TakeF64Array(std::vector<double>* out) {
    uint32_t count = 0;
    if (!TakeU32(&count)) return false;
    if (static_cast<size_t>(count) * 8 > data_.size()) return false;
    out->resize(count);
    for (uint32_t i = 0; i < count; ++i) {
      if (!TakeF64(&(*out)[i])) return false;
    }
    return true;
  }

  bool TakeI32Array(std::vector<int32_t>* out) {
    uint32_t count = 0;
    if (!TakeU32(&count)) return false;
    if (static_cast<size_t>(count) * 4 > data_.size()) return false;
    out->resize(count);
    for (uint32_t i = 0; i < count; ++i) {
      if (!TakeI32(&(*out)[i])) return false;
    }
    return true;
  }

  bool TakeString(std::string* out) {
    uint32_t len = 0;
    if (!TakeU32(&len)) return false;
    if (static_cast<size_t>(len) > data_.size()) return false;
    out->assign(data_.data(), len);
    data_.remove_prefix(len);
    return true;
  }

  bool AtEnd() const { return data_.empty(); }

 private:
  std::string_view data_;
};

}  // namespace

const char* DistMsgTypeName(DistMsgType t) {
  switch (t) {
    case DistMsgType::kHello: return "hello";
    case DistMsgType::kStart: return "start";
    case DistMsgType::kGrad: return "grad";
    case DistMsgType::kReduced: return "reduced";
    case DistMsgType::kHeartbeat: return "heartbeat";
    case DistMsgType::kCkptAck: return "ckpt-ack";
    case DistMsgType::kFinal: return "final";
    case DistMsgType::kShutdown: return "shutdown";
    case DistMsgType::kReport: return "report";
    case DistMsgType::kAbort: return "abort";
  }
  return "unknown";
}

std::string EncodeDistMsg(const DistMsg& msg) {
  std::string out;
  PutU8(static_cast<uint8_t>(msg.type), &out);
  PutU32(msg.gen, &out);
  switch (msg.type) {
    case DistMsgType::kHello:
      PutU32(msg.rank, &out);
      PutU32(msg.num_workers, &out);
      PutU64(msg.fingerprint, &out);
      PutI32Array(msg.ckpt_epochs, &out);
      break;
    case DistMsgType::kStart:
      PutI32(msg.epoch, &out);
      break;
    case DistMsgType::kGrad:
      PutI32(msg.epoch, &out);
      PutF64(msg.loss, &out);
      PutF64(msg.grad_maxabs, &out);
      PutF64(msg.lr_scale, &out);
      PutF64Array(msg.u2, &out);
      PutF64Array(msg.u3, &out);
      PutF64Array(msg.h, &out);
      PutF64Array(msg.u3_replica, &out);
      break;
    case DistMsgType::kReduced:
      PutI32(msg.epoch, &out);
      PutU8(msg.action, &out);
      PutU8(msg.flags, &out);
      PutF64(msg.lr, &out);
      PutF64(msg.lr_scale, &out);
      PutF64Array(msg.u2, &out);
      PutF64Array(msg.u3, &out);
      PutF64Array(msg.h, &out);
      break;
    case DistMsgType::kHeartbeat:
    case DistMsgType::kShutdown:
    case DistMsgType::kReport:
      break;
    case DistMsgType::kCkptAck:
      PutI32(msg.epoch, &out);
      break;
    case DistMsgType::kFinal:
      PutI32(msg.epoch, &out);
      PutF64Array(msg.u1, &out);
      PutF64Array(msg.u2, &out);
      PutF64Array(msg.u3, &out);
      PutF64Array(msg.h, &out);
      break;
    case DistMsgType::kAbort: {
      uint32_t len = static_cast<uint32_t>(msg.text.size());
      PutU32(len, &out);
      out.append(msg.text);
      break;
    }
  }
  return out;
}

Result<DistMsg> ParseDistMsg(std::string_view payload) {
  Cursor cur(payload);
  uint8_t type_byte = 0;
  DistMsg msg;
  if (!cur.TakeU8(&type_byte) || !cur.TakeU32(&msg.gen)) {
    return Status::IOError("dist message too short");
  }
  if (type_byte < static_cast<uint8_t>(DistMsgType::kHello) ||
      type_byte > static_cast<uint8_t>(DistMsgType::kAbort)) {
    return Status::IOError("unknown dist message type");
  }
  msg.type = static_cast<DistMsgType>(type_byte);
  bool ok = true;
  switch (msg.type) {
    case DistMsgType::kHello:
      ok = cur.TakeU32(&msg.rank) && cur.TakeU32(&msg.num_workers) &&
           cur.TakeU64(&msg.fingerprint) && cur.TakeI32Array(&msg.ckpt_epochs);
      break;
    case DistMsgType::kStart:
      ok = cur.TakeI32(&msg.epoch);
      break;
    case DistMsgType::kGrad:
      ok = cur.TakeI32(&msg.epoch) && cur.TakeF64(&msg.loss) &&
           cur.TakeF64(&msg.grad_maxabs) && cur.TakeF64(&msg.lr_scale) &&
           cur.TakeF64Array(&msg.u2) && cur.TakeF64Array(&msg.u3) &&
           cur.TakeF64Array(&msg.h) && cur.TakeF64Array(&msg.u3_replica);
      break;
    case DistMsgType::kReduced:
      ok = cur.TakeI32(&msg.epoch) && cur.TakeU8(&msg.action) &&
           cur.TakeU8(&msg.flags) && cur.TakeF64(&msg.lr) &&
           cur.TakeF64(&msg.lr_scale) && cur.TakeF64Array(&msg.u2) &&
           cur.TakeF64Array(&msg.u3) && cur.TakeF64Array(&msg.h);
      if (ok && msg.action != kActionStep && msg.action != kActionRollback) {
        ok = false;
      }
      break;
    case DistMsgType::kHeartbeat:
    case DistMsgType::kShutdown:
    case DistMsgType::kReport:
      break;
    case DistMsgType::kCkptAck:
      ok = cur.TakeI32(&msg.epoch);
      break;
    case DistMsgType::kFinal:
      ok = cur.TakeI32(&msg.epoch) && cur.TakeF64Array(&msg.u1) &&
           cur.TakeF64Array(&msg.u2) && cur.TakeF64Array(&msg.u3) &&
           cur.TakeF64Array(&msg.h);
      break;
    case DistMsgType::kAbort:
      ok = cur.TakeString(&msg.text);
      break;
  }
  if (!ok) {
    return Status::IOError(std::string("malformed dist message: ") +
                           DistMsgTypeName(msg.type));
  }
  if (!cur.AtEnd()) {
    return Status::IOError(std::string("trailing bytes in dist message: ") +
                           DistMsgTypeName(msg.type));
  }
  return msg;
}

Status SendDistMsg(Conn* conn, const DistMsg& msg, int timeout_ms) {
  Frame frame;
  frame.id = msg.gen;
  frame.payload = EncodeDistMsg(msg);
  return conn->Write(EncodeFrame(kDistMagic, frame), timeout_ms);
}

Result<DistReadEvent> DistMsgReader::Next(Conn* conn, DistMsg* out,
                                          int deadline_ms,
                                          const std::atomic<bool>* stop,
                                          int tick_ms) {
  const auto start = std::chrono::steady_clock::now();
  for (;;) {
    if (!buf_.empty()) {
      Frame frame;
      size_t consumed = 0;
      auto decoded =
          DecodeFrame(kDistMagic, buf_, &frame, &consumed, kMaxDistPayload);
      if (!decoded.ok()) return decoded.status();
      if (decoded.value()) {
        buf_.erase(0, consumed);
        auto msg = ParseDistMsg(frame.payload);
        if (!msg.ok()) return msg.status();
        *out = msg.MoveValue();
        return DistReadEvent::kMsg;
      }
    }
    if (stop != nullptr && stop->load(std::memory_order_relaxed)) {
      return DistReadEvent::kStopped;
    }
    if (deadline_ms >= 0) {
      const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                               std::chrono::steady_clock::now() - start)
                               .count();
      if (elapsed >= deadline_ms) return DistReadEvent::kTimeout;
    }
    char chunk[16384];
    size_t n = 0;
    auto event = conn->Read(chunk, sizeof(chunk), &n, tick_ms);
    if (!event.ok()) return event.status();
    switch (event.value()) {
      case IoEvent::kData:
        buf_.append(chunk, n);
        break;
      case IoEvent::kEof:
        if (!buf_.empty()) {
          // EOF splitting a frame: the peer died mid-send. Distinct from
          // a clean close so callers can tell a crash from a goodbye.
          return Status::IOError("connection closed inside a dist frame");
        }
        return DistReadEvent::kEof;
      case IoEvent::kTimeout:
        break;  // tick: re-check stop/deadline
    }
  }
}

}  // namespace tcss
