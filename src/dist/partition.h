#ifndef TCSS_DIST_PARTITION_H_
#define TCSS_DIST_PARTITION_H_

#include <cstdint>
#include <cstddef>

#include "common/status.h"
#include "core/factor_model.h"
#include "core/tcss_config.h"
#include "tensor/sparse_tensor.h"

namespace tcss {

/// Contiguous block partition of the user mode (mode 0) across `world`
/// workers: rank r owns rows [Begin(r), End(r)). The remainder is spread
/// over the first rows%world ranks, so block sizes differ by at most one.
/// A pure function of (rows, world) — every process computes the same
/// partition without communication.
struct RowPartition {
  size_t rows = 0;
  int world = 1;

  RowPartition() = default;
  RowPartition(size_t rows_in, int world_in)
      : rows(rows_in), world(world_in < 1 ? 1 : world_in) {}

  size_t Begin(int rank) const {
    const size_t base = rows / static_cast<size_t>(world);
    const size_t rem = rows % static_cast<size_t>(world);
    const size_t r = static_cast<size_t>(rank);
    return r * base + (r < rem ? r : rem);
  }
  size_t End(int rank) const { return Begin(rank + 1); }
  size_t Count(int rank) const { return End(rank) - Begin(rank); }
};

/// Extracts rows [begin, end) of the user mode into a standalone tensor
/// with dims (end-begin, J, K); entry user indices are remapped to local
/// rows 0.. — exactly the tensor a worker trains its U1 block on. The
/// input must be finalized; the output is finalized (order is preserved,
/// COO order is row-major so a row range is a contiguous run).
Result<SparseTensor> SliceTensorRows(const SparseTensor& full, size_t begin,
                                     size_t end);

/// True when `config` is trainable by the distributed engine at
/// `num_workers` workers; otherwise fills *problem with a diagnostic.
/// Restrictions (see DESIGN.md §11): the loss must decompose exactly over
/// user row blocks (kRewritten/kNaive; kNegativeSampling's sampling
/// streams differ between one process and many), the social Hausdorff
/// head couples users across shards (lambda must be 0), and spectral
/// init needs the full tensor (multi-worker runs use kRandom/kOneHot,
/// which are reproducible from dims + seed alone).
bool ValidateDistConfig(const TcssConfig& config, int num_workers,
                        std::string* problem);

/// The factor initialization of worker `rank`: U1 holds rows
/// [part.Begin(rank), part.End(rank)) of the full-model init, U2/U3/h are
/// the full replicas — bit-identical to slicing InitializeFactors' output,
/// without materializing the I x r user factor. Requires kRandom or
/// kOneHot (enforced by ValidateDistConfig for num_workers > 1; a
/// single-worker engine passes its full tensor to InitializeFactors
/// instead, so W == 1 supports every init method).
Result<FactorModel> InitializeFactorsSlice(const TcssConfig& config,
                                           size_t dim_i, size_t dim_j,
                                           size_t dim_k,
                                           const RowPartition& part,
                                           int rank);

/// Order-insensitive digest of everything that must agree between the
/// coordinator and every worker for the run to make sense: tensor dims,
/// worker count, and the config fields that shape the trajectory. A
/// mismatched fingerprint in kHello aborts the handshake — a worker built
/// against yesterday's config cannot silently poison today's gradients.
uint64_t DistFingerprint(const TcssConfig& config, size_t dim_i, size_t dim_j,
                         size_t dim_k, int num_workers);

}  // namespace tcss

#endif  // TCSS_DIST_PARTITION_H_
