#include "dist/worker.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "core/spectral_init.h"
#include "core/trainer.h"
#include "obs/metrics.h"

namespace tcss {
namespace {

/// Deterministic reconnect jitter: a pure function of (rank, attempt), so
/// restarted fleets spread out without sacrificing reproducibility.
int JitterMs(int rank, int attempt, int cap) {
  if (cap <= 0) return 0;
  uint64_t z = 0x9e3779b97f4a7c15ULL * (static_cast<uint64_t>(rank) + 1) +
               0xbf58476d1ce4e5b9ULL * (static_cast<uint64_t>(attempt) + 1);
  z ^= z >> 30;
  z *= 0xbf58476d1ce4e5b9ULL;
  z ^= z >> 27;
  return static_cast<int>(z % static_cast<uint64_t>(cap));
}

/// Sleeps `total_ms` in small steps so an abrupt-stop (simulated SIGKILL)
/// cuts the wait short like a real signal would.
void InterruptibleSleep(int total_ms, const std::atomic<bool>* stop) {
  int slept = 0;
  while (slept < total_ms) {
    if (stop != nullptr && stop->load(std::memory_order_relaxed)) return;
    const int step = std::min(20, total_ms - slept);
    std::this_thread::sleep_for(std::chrono::milliseconds(step));
    slept += step;
  }
}

std::vector<double> Flat(const Matrix& m) {
  return std::vector<double>(m.data(), m.data() + m.size());
}

}  // namespace

DistWorker::DistWorker(const TcssConfig& config, size_t dim_i, size_t dim_j,
                       size_t dim_k, SparseTensor local,
                       DistWorkerOptions opts)
    : config_(config),
      dim_i_(dim_i),
      dim_j_(dim_j),
      dim_k_(dim_k),
      part_(dim_i, opts.num_workers),
      tensor_(std::move(local)),
      opts_(std::move(opts)) {
  env_ = opts_.env != nullptr ? opts_.env : Env::Default();
}

Status DistWorker::Run() {
  std::string problem = config_.Validate();
  if (!problem.empty()) return Status::InvalidArgument(problem);
  if (!ValidateDistConfig(config_, opts_.num_workers, &problem)) {
    return Status::InvalidArgument(problem);
  }
  if (opts_.rank < 0 || opts_.rank >= opts_.num_workers) {
    return Status::InvalidArgument("worker rank outside [0, num_workers)");
  }
  if (tensor_.dim_i() != part_.Count(opts_.rank) ||
      tensor_.dim_j() != dim_j_ || tensor_.dim_k() != dim_k_) {
    return Status::InvalidArgument(
        "local tensor slice does not match this rank's row block");
  }
  SetGlobalThreads(config_.num_threads);
  l2_ = WholeDataLoss::Create(config_);
  l2_->BindTensor(tensor_);
  if (!opts_.checkpoint_dir.empty()) {
    CheckpointOptions copts;
    copts.dir = opts_.checkpoint_dir;
    copts.retain = opts_.checkpoint_retain;
    copts.env = env_;
    copts.shard = opts_.rank;
    copts.num_shards = opts_.num_workers;
    ckpts_ = std::make_unique<CheckpointManager>(copts);
    TCSS_RETURN_IF_ERROR(ckpts_->Init());
  }
  fingerprint_ =
      DistFingerprint(config_, dim_i_, dim_j_, dim_k_, opts_.num_workers);

  obs::Counter* reconnects_counter =
      obs::MetricRegistry::Global()->GetCounter("dist.worker.reconnects");
  bool first_session = true;
  for (;;) {
    if (Dead()) return Status::IOError("abrupt stop injected");
    auto connected = ConnectWithRetry();
    if (!connected.ok()) return connected.status();
    std::unique_ptr<Conn> conn = connected.MoveValue();
    if (!first_session) {
      ++stats_.reconnects;
      reconnects_counter->Add(1);
    }
    first_session = false;

    // Liveness beacon. Runs while the main thread grinds through gradient
    // computations; shares the conn's write side under write_mu_.
    std::atomic<bool> hb_stop{false};
    std::thread heartbeat([this, &hb_stop, &conn] {
      for (;;) {
        InterruptibleSleep(opts_.heartbeat_interval_ms, &hb_stop);
        if (hb_stop.load(std::memory_order_relaxed) || Dead()) return;
        DistMsg hb;
        hb.type = DistMsgType::kHeartbeat;
        hb.gen = gen_.load(std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(write_mu_);
        if (!SendDistMsg(conn.get(), hb, opts_.write_timeout_ms).ok()) {
          return;  // main loop will discover the broken conn on its own
        }
      }
    });

    auto outcome = SessionLoop(conn.get());

    hb_stop.store(true, std::memory_order_relaxed);
    heartbeat.join();
    conn->Close();

    if (!outcome.ok()) return outcome.status();
    switch (outcome.value()) {
      case SessionOutcome::kShutdown:
        return Status::OK();
      case SessionOutcome::kDead:
        return Status::IOError("abrupt stop injected");
      case SessionOutcome::kLost:
      case SessionOutcome::kContinue:
        break;  // reconnect
    }
  }
}

Result<std::unique_ptr<Conn>> DistWorker::ConnectWithRetry() {
  const int attempts = std::max(1, opts_.reconnect_attempts);
  int delay = std::max(1, opts_.reconnect_base_ms);
  Status last = Status::OK();
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (Dead()) return Status::IOError("abrupt stop injected");
    auto conn = env_->Connect(opts_.socket_path);
    if (conn.ok()) return conn;
    last = conn.status();
    if (attempt + 1 == attempts) break;
    InterruptibleSleep(delay + JitterMs(opts_.rank, attempt, delay),
                       opts_.abrupt_stop);
    delay = std::min(delay * 2, std::max(1, opts_.reconnect_max_ms));
  }
  return Status::IOError("worker " + std::to_string(opts_.rank) +
                         " exhausted reconnect attempts: " + last.message());
}

Status DistWorker::SendHello(Conn* conn) {
  DistMsg hello;
  hello.type = DistMsgType::kHello;
  hello.gen = gen_.load(std::memory_order_relaxed);
  hello.rank = static_cast<uint32_t>(opts_.rank);
  hello.num_workers = static_cast<uint32_t>(opts_.num_workers);
  hello.fingerprint = fingerprint_;
  if (ckpts_ != nullptr) {
    for (int e : ckpts_->ListEpochs()) {
      if (e > 0 && e <= config_.epochs && bad_epochs_.count(e) == 0) {
        hello.ckpt_epochs.push_back(e);
      }
    }
  }
  std::lock_guard<std::mutex> lock(write_mu_);
  return SendDistMsg(conn, hello, opts_.write_timeout_ms);
}

Status DistWorker::StartAt(int epoch) {
  if (epoch == 0) {
    // Cold start. A single-worker engine owns the whole tensor, so every
    // init method (including spectral) works and the model is the byte-
    // for-byte InitializeFactors output; multi-worker slices replay the
    // seeded stream via InitializeFactorsSlice.
    Result<FactorModel> init =
        opts_.num_workers == 1
            ? InitializeFactors(tensor_, config_)
            : InitializeFactorsSlice(config_, dim_i_, dim_j_, dim_k_, part_,
                                     opts_.rank);
    if (!init.ok()) return init.status();
    model_ = init.MoveValue();
    adam_m_ = FactorGrads(model_);
    adam_v_ = FactorGrads(model_);
    adam_t_ = 0;
    lr_scale_ = 1.0;
    epoch_ = 0;
  } else {
    if (ckpts_ == nullptr) {
      return Status::FailedPrecondition(
          "coordinator requested a warm start but this worker has no "
          "checkpoint dir");
    }
    auto loaded = ckpts_->LoadEpoch(epoch);
    if (!loaded.ok()) return loaded.status();
    TrainerCheckpoint ckpt = loaded.MoveValue();
    if (ckpt.model.u1.rows() != part_.Count(opts_.rank) ||
        ckpt.model.u2.rows() != dim_j_ || ckpt.model.u3.rows() != dim_k_ ||
        ckpt.model.rank() != config_.rank || ckpt.epoch != epoch) {
      return Status::IOError("shard checkpoint shape/epoch mismatch");
    }
    model_ = std::move(ckpt.model);
    adam_m_ = std::move(ckpt.adam_m);
    adam_v_ = std::move(ckpt.adam_v);
    adam_t_ = ckpt.adam_t;
    lr_scale_ = ckpt.lr_scale;
    epoch_ = epoch;
    ++stats_.reloads;
  }
  grads_ = FactorGrads(model_);
  CaptureLastGood();
  return Status::OK();
}

void DistWorker::CaptureLastGood() {
  good_model_ = model_;
  good_m_ = adam_m_;
  good_v_ = adam_v_;
  good_t_ = adam_t_;
  good_epoch_ = epoch_;
}

void DistWorker::RestoreLastGood() {
  model_ = good_model_;
  adam_m_ = good_m_;
  adam_v_ = good_v_;
  adam_t_ = good_t_;
  epoch_ = good_epoch_;
}

Result<DistWorker::SessionOutcome> DistWorker::ComputeAndSendGrad(
    Conn* conn) {
  if (Dead()) return SessionOutcome::kDead;
  const int next_epoch = epoch_ + 1;
  if (opts_.stall_ms > 0 && opts_.stall_before_epoch == next_epoch) {
    InterruptibleSleep(opts_.stall_ms, opts_.abrupt_stop);
  }
  grads_.Zero();
  const double loss = l2_->ComputeWithGrads(model_, tensor_, &grads_);
  ++stats_.epochs_computed;
  if (Dead()) return SessionOutcome::kDead;  // killed mid-epoch

  DistMsg g;
  g.type = DistMsgType::kGrad;
  g.gen = gen_.load(std::memory_order_relaxed);
  g.epoch = next_epoch;
  g.loss = loss;
  g.grad_maxabs = MaxAbsOrInf(grads_.u1.data(), grads_.u1.size());
  g.lr_scale = lr_scale_;
  g.u2 = Flat(grads_.u2);
  g.u3 = Flat(grads_.u3);
  g.h = grads_.h;
  g.u3_replica = Flat(model_.u3);
  Status sent;
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    sent = SendDistMsg(conn, g, opts_.write_timeout_ms);
  }
  if (!sent.ok()) return SessionOutcome::kLost;
  return SessionOutcome::kContinue;
}

Status DistWorker::ApplyStep(const DistMsg& msg) {
  if (msg.u2.size() != model_.u2.size() ||
      msg.u3.size() != model_.u3.size() || msg.h.size() != model_.h.size()) {
    return Status::Internal("reduced gradient shape mismatch");
  }
  ++adam_t_;
  double bc1 = 0.0, bc2 = 0.0;
  AdamBiasCorrection(adam_t_, &bc1, &bc2);
  const double wd = config_.weight_decay;
  // Local U1 block steps on the local gradients (they *are* the exact
  // global rows); the replicated factors step on the coordinator's
  // reduced gradients, identical bytes on every worker — which keeps the
  // replicas in bitwise lockstep without ever re-broadcasting them.
  AdamUpdateBlock(model_.u1.data(), grads_.u1.data(), adam_m_.u1.data(),
                  adam_v_.u1.data(), model_.u1.size(), msg.lr, wd, bc1, bc2);
  AdamUpdateBlock(model_.u2.data(), msg.u2.data(), adam_m_.u2.data(),
                  adam_v_.u2.data(), model_.u2.size(), msg.lr, wd, bc1, bc2);
  AdamUpdateBlock(model_.u3.data(), msg.u3.data(), adam_m_.u3.data(),
                  adam_v_.u3.data(), model_.u3.size(), msg.lr, wd, bc1, bc2);
  AdamUpdateBlock(model_.h.data(), msg.h.data(), adam_m_.h.data(),
                  adam_v_.h.data(), model_.h.size(), msg.lr, wd, bc1, bc2);
  ++stats_.steps_applied;
  return Status::OK();
}

Status DistWorker::SaveShardCheckpoint() {
  TrainerCheckpoint ckpt;
  ckpt.model = model_;
  ckpt.adam_m = adam_m_;
  ckpt.adam_v = adam_v_;
  ckpt.adam_t = adam_t_;
  ckpt.epoch = epoch_;
  ckpt.lr_scale = lr_scale_;
  return ckpts_->Save(ckpt);
}

Status DistWorker::SendFinal(Conn* conn) {
  DistMsg fin;
  fin.type = DistMsgType::kFinal;
  fin.gen = gen_.load(std::memory_order_relaxed);
  fin.epoch = epoch_;
  fin.u1 = Flat(model_.u1);
  fin.u2 = Flat(model_.u2);
  fin.u3 = Flat(model_.u3);
  fin.h = model_.h;
  std::lock_guard<std::mutex> lock(write_mu_);
  return SendDistMsg(conn, fin, opts_.write_timeout_ms);
}

Result<DistWorker::SessionOutcome> DistWorker::SessionLoop(Conn* conn) {
  if (!SendHello(conn).ok()) return SessionOutcome::kLost;
  DistMsgReader reader;
  for (;;) {
    DistMsg msg;
    auto event = reader.Next(conn, &msg, opts_.coordinator_timeout_ms,
                             opts_.abrupt_stop);
    if (!event.ok()) {
      TCSS_LOG(Warning) << "worker " << opts_.rank
                        << ": connection error: " << event.status().message();
      return SessionOutcome::kLost;
    }
    switch (event.value()) {
      case DistReadEvent::kStopped:
        return SessionOutcome::kDead;
      case DistReadEvent::kEof:
        return SessionOutcome::kLost;
      case DistReadEvent::kTimeout:
        TCSS_LOG(Warning) << "worker " << opts_.rank
                          << ": coordinator silent past timeout";
        return SessionOutcome::kLost;
      case DistReadEvent::kMsg:
        break;
    }

    switch (msg.type) {
      case DistMsgType::kStart: {
        gen_.store(msg.gen, std::memory_order_relaxed);
        Status started = StartAt(msg.epoch);
        if (!started.ok()) {
          if (msg.epoch == 0) return started;  // cold init failing is fatal
          // A shard checkpoint the kHello advertised turned out to be
          // unloadable. Prune it and re-offer; the coordinator picks an
          // older common epoch (eventually 0), so recovery converges.
          TCSS_LOG(Warning)
              << "worker " << opts_.rank << ": shard checkpoint for epoch "
              << msg.epoch << " unusable (" << started.message()
              << "); re-offering without it";
          bad_epochs_.insert(msg.epoch);
          if (!SendHello(conn).ok()) return SessionOutcome::kLost;
          break;
        }
        if (epoch_ >= config_.epochs) {
          // Resumed at (or past) the final epoch: nothing to compute.
          Status sent = SendFinal(conn);
          if (!sent.ok()) return SessionOutcome::kLost;
          break;
        }
        auto advanced = ComputeAndSendGrad(conn);
        if (!advanced.ok()) return advanced.status();
        if (advanced.value() != SessionOutcome::kContinue) {
          return advanced.value();
        }
        break;
      }
      case DistMsgType::kReduced: {
        if (msg.gen != gen_.load(std::memory_order_relaxed)) break;  // stale
        if (msg.action == kActionRollback) {
          RestoreLastGood();
          lr_scale_ = msg.lr_scale;
          ++stats_.rollbacks;
        } else {
          if (msg.epoch != epoch_ + 1) {
            return Status::Internal(
                "coordinator stepped epoch " + std::to_string(msg.epoch) +
                " but worker completed " + std::to_string(epoch_));
          }
          // The forward pass of this epoch was verified finite by the
          // coordinator; the pre-step state is the new rollback target
          // (mirrors TcssTrainer's capture point exactly).
          CaptureLastGood();
          lr_scale_ = msg.lr_scale;
          TCSS_RETURN_IF_ERROR(ApplyStep(msg));
          epoch_ = msg.epoch;
          if ((msg.flags & kFlagCheckpoint) != 0 && ckpts_ != nullptr) {
            TCSS_RETURN_IF_ERROR(SaveShardCheckpoint());
            ++stats_.checkpoints;
            DistMsg ack;
            ack.type = DistMsgType::kCkptAck;
            ack.gen = gen_.load(std::memory_order_relaxed);
            ack.epoch = epoch_;
            std::lock_guard<std::mutex> lock(write_mu_);
            if (!SendDistMsg(conn, ack, opts_.write_timeout_ms).ok()) {
              return SessionOutcome::kLost;
            }
          }
          if ((msg.flags & kFlagLastEpoch) != 0) {
            Status sent = SendFinal(conn);
            if (!sent.ok()) return SessionOutcome::kLost;
            break;  // await kShutdown (or recovery)
          }
        }
        auto advanced = ComputeAndSendGrad(conn);
        if (!advanced.ok()) return advanced.status();
        if (advanced.value() != SessionOutcome::kContinue) {
          return advanced.value();
        }
        break;
      }
      case DistMsgType::kReport:
        gen_.store(msg.gen, std::memory_order_relaxed);
        if (!SendHello(conn).ok()) return SessionOutcome::kLost;
        break;
      case DistMsgType::kShutdown:
        return SessionOutcome::kShutdown;
      case DistMsgType::kAbort:
        return Status::NotConverged("coordinator aborted: " + msg.text);
      default:
        return Status::Internal(std::string("unexpected message from "
                                            "coordinator: ") +
                                DistMsgTypeName(msg.type));
    }
  }
}

}  // namespace tcss
