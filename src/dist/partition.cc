#include "dist/partition.h"

#include <cstring>

#include "common/rng.h"

namespace tcss {
namespace {

/// Bump on any incompatible change to the wire protocol or the epoch
/// state machine: mixed-version fleets then refuse each other's kHello
/// instead of diverging mid-run.
constexpr uint64_t kDistProtocolVersion = 1;

uint64_t Mix(uint64_t acc, uint64_t v) {
  uint64_t z = acc + 0x9e3779b97f4a7c15ULL + v;
  z ^= z >> 30;
  z *= 0xbf58476d1ce4e5b9ULL;
  z ^= z >> 27;
  z *= 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return z;
}

uint64_t MixDouble(uint64_t acc, double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return Mix(acc, bits);
}

}  // namespace

Result<SparseTensor> SliceTensorRows(const SparseTensor& full, size_t begin,
                                     size_t end) {
  if (!full.finalized()) {
    return Status::FailedPrecondition("SliceTensorRows: tensor not final");
  }
  if (begin > end || end > full.dim_i()) {
    return Status::InvalidArgument("SliceTensorRows: bad row range");
  }
  SparseTensor slice(end - begin, full.dim_j(), full.dim_k());
  for (const TensorEntry& e : full.entries()) {
    if (e.i < begin || e.i >= end) continue;
    TCSS_RETURN_IF_ERROR(slice.Add(static_cast<uint32_t>(e.i - begin), e.j,
                                   e.k, e.value));
  }
  TCSS_RETURN_IF_ERROR(slice.Finalize(/*binary=*/true));
  return slice;
}

bool ValidateDistConfig(const TcssConfig& config, int num_workers,
                        std::string* problem) {
  if (num_workers < 1) {
    *problem = "num_workers must be >= 1";
    return false;
  }
  if (config.loss_mode == LossMode::kNegativeSampling) {
    *problem =
        "distributed training requires a loss that decomposes over user "
        "row blocks (rewritten or naive); negative sampling draws "
        "different streams in one process than in many";
    return false;
  }
  const bool wants_hausdorff =
      config.lambda > 0.0 && (config.hausdorff == HausdorffMode::kSocial ||
                              config.hausdorff == HausdorffMode::kSelf);
  if (wants_hausdorff) {
    *problem =
        "the social Hausdorff head couples users across shards; "
        "distributed training requires lambda = 0 (or hausdorff mode "
        "none/zero-out)";
    return false;
  }
  if (num_workers > 1 && config.init == InitMethod::kSpectral) {
    *problem =
        "spectral init needs the full tensor in one process; multi-worker "
        "runs use random or one-hot init (reproducible from dims + seed)";
    return false;
  }
  return true;
}

Result<FactorModel> InitializeFactorsSlice(const TcssConfig& config,
                                           size_t dim_i, size_t dim_j,
                                           size_t dim_k,
                                           const RowPartition& part,
                                           int rank) {
  if (part.rows != dim_i) {
    return Status::InvalidArgument("partition does not cover dim_i");
  }
  if (rank < 0 || rank >= part.world) {
    return Status::InvalidArgument("rank outside partition world");
  }
  const size_t begin = part.Begin(rank);
  const size_t end = part.End(rank);
  const size_t r = config.rank;
  FactorModel m;
  m.h.assign(r, 1.0);

  switch (config.init) {
    case InitMethod::kRandom: {
      // Replays InitializeFactors' exact draw sequence — Rng(seed), U1
      // row-major, then U2, then U3 — storing only the owned U1 rows.
      // Every draw must happen (the Gaussian stream is stateful), so this
      // costs O(I*r) time but only O((end-begin)*r) memory.
      Rng rng(config.seed);
      m.u1.Resize(end - begin, r);
      for (size_t i = 0; i < dim_i; ++i) {
        if (i >= begin && i < end) {
          double* row = m.u1.row(i - begin);
          for (size_t t = 0; t < r; ++t) row[t] = rng.Gaussian(0.0, 0.1);
        } else {
          for (size_t t = 0; t < r; ++t) (void)rng.Gaussian(0.0, 0.1);
        }
      }
      m.u2 = Matrix::GaussianRandom(dim_j, r, &rng, 0.1);
      m.u3 = Matrix::GaussianRandom(dim_k, r, &rng, 0.1);
      break;
    }
    case InitMethod::kOneHot: {
      m.u1.Resize(end - begin, r);
      m.u2.Resize(dim_j, r);
      m.u3.Resize(dim_k, r);
      // The cyclic pattern depends on the *global* row index, so the
      // slice matches the corresponding rows of the full init.
      for (size_t i = begin; i < end; ++i) m.u1(i - begin, i % r) = 0.3;
      for (size_t j = 0; j < dim_j; ++j) m.u2(j, j % r) = 0.3;
      for (size_t k = 0; k < dim_k; ++k) m.u3(k, k % r) = 0.3;
      break;
    }
    case InitMethod::kSpectral:
      return Status::InvalidArgument(
          "spectral init cannot be sliced; use random or one-hot");
  }
  return m;
}

uint64_t DistFingerprint(const TcssConfig& config, size_t dim_i, size_t dim_j,
                         size_t dim_k, int num_workers) {
  uint64_t acc = Mix(kDistProtocolVersion, 0x7c55);
  acc = Mix(acc, dim_i);
  acc = Mix(acc, dim_j);
  acc = Mix(acc, dim_k);
  acc = Mix(acc, static_cast<uint64_t>(num_workers));
  acc = Mix(acc, config.rank);
  acc = Mix(acc, static_cast<uint64_t>(config.epochs));
  acc = Mix(acc, config.seed);
  acc = Mix(acc, static_cast<uint64_t>(config.init));
  acc = Mix(acc, static_cast<uint64_t>(config.loss_mode));
  acc = MixDouble(acc, config.learning_rate);
  acc = MixDouble(acc, config.weight_decay);
  acc = MixDouble(acc, config.lr_step_factor);
  acc = MixDouble(acc, config.w_pos);
  acc = MixDouble(acc, config.w_neg);
  acc = MixDouble(acc, config.temporal_smoothness);
  return acc;
}

}  // namespace tcss
