#ifndef TCSS_DIST_WORKER_H_
#define TCSS_DIST_WORKER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "common/env.h"
#include "common/status.h"
#include "core/checkpoint.h"
#include "core/factor_model.h"
#include "core/tcss_config.h"
#include "core/whole_data_loss.h"
#include "dist/partition.h"
#include "dist/wire.h"
#include "tensor/sparse_tensor.h"

namespace tcss {

/// Knobs of one distributed training worker (rank r of W).
struct DistWorkerOptions {
  int rank = 0;
  int num_workers = 1;
  /// Unix-domain socket of the coordinator.
  std::string socket_path;
  /// Transport and checkpoint I/O; null = Env::Default(). Tests inject
  /// FaultInjectionEnv here to break the wire on a deterministic schedule.
  Env* env = nullptr;

  /// Directory for this rank's TCKPv1 checkpoint shards
  /// (ckpt-<epoch>-s<rank>of<W>.tckp); "" disables durable shards, which
  /// degrades recovery to a cold restart from epoch 0.
  std::string checkpoint_dir;
  int checkpoint_retain = 3;

  /// Liveness beacon period. Sent from a dedicated thread so a long
  /// gradient computation never reads as death to the coordinator.
  int heartbeat_interval_ms = 100;

  /// Reconnect policy: bounded retries with exponential backoff
  /// (base * 2^attempt, capped) plus a deterministic jitter derived from
  /// (rank, attempt) — restarted fleets do not thunder in lockstep, yet
  /// runs stay reproducible. The attempt budget resets after every
  /// session that made protocol progress.
  int reconnect_attempts = 10;
  int reconnect_base_ms = 20;
  int reconnect_max_ms = 2000;

  /// Coordinator silence tolerated before this worker tears down the
  /// connection and goes through the reconnect path.
  int coordinator_timeout_ms = 60'000;
  int write_timeout_ms = 10'000;

  // Test hooks -----------------------------------------------------------
  /// Simulated SIGKILL: when it reads true the worker stops computing,
  /// heartbeating and responding at the next check, abandoning its
  /// connection exactly as a killed process would. Run() then returns an
  /// IOError; restart semantics are exercised by constructing a fresh
  /// DistWorker over the same checkpoint_dir.
  const std::atomic<bool>* abrupt_stop = nullptr;
  /// Straggler injection: sleep `stall_ms` before computing the gradient
  /// of epoch `stall_before_epoch` (0 disables).
  int stall_before_epoch = 0;
  int stall_ms = 0;
};

/// Observable effects of one Run() for tests and the chaos harness.
struct DistWorkerStats {
  int epochs_computed = 0;  ///< gradient evaluations (incl. rollback redos)
  int steps_applied = 0;    ///< Adam steps taken
  int rollbacks = 0;        ///< divergence rollbacks obeyed
  int reconnects = 0;       ///< sessions after the first
  int checkpoints = 0;      ///< shard snapshots written
  int reloads = 0;          ///< warm restarts from a shard checkpoint
};

/// One worker of the coordinator/worker training engine: owns the
/// contiguous U1 row block of its rank plus the matching tensor slice,
/// replicates U2/U3/h, and advances them in lockstep with every other
/// worker by applying the coordinator's reduced gradients with the exact
/// trainer arithmetic (AdamUpdateBlock et al.). See DESIGN.md §11.
class DistWorker {
 public:
  /// `local` is this rank's tensor slice — row-remapped, i.e. its dim_i
  /// equals RowPartition(dim_i, num_workers).Count(rank). Full tensor
  /// dims are passed separately; they shape the replicated factors.
  DistWorker(const TcssConfig& config, size_t dim_i, size_t dim_j,
             size_t dim_k, SparseTensor local, DistWorkerOptions opts);

  /// Blocks until the coordinator shuts the run down (OK), aborts it
  /// (the abort diagnostic), the reconnect budget is exhausted, or a
  /// protocol violation proves the peers incompatible.
  Status Run();

  const DistWorkerStats& stats() const { return stats_; }

 private:
  enum class SessionOutcome { kContinue, kShutdown, kLost, kDead };

  bool Dead() const {
    return opts_.abrupt_stop != nullptr &&
           opts_.abrupt_stop->load(std::memory_order_relaxed);
  }

  Result<std::unique_ptr<Conn>> ConnectWithRetry();
  Result<SessionOutcome> SessionLoop(Conn* conn);
  Status SendHello(Conn* conn);
  Status StartAt(int epoch);
  Result<SessionOutcome> ComputeAndSendGrad(Conn* conn);
  Status ApplyStep(const DistMsg& msg);
  void CaptureLastGood();
  void RestoreLastGood();
  Status SaveShardCheckpoint();
  Status SendFinal(Conn* conn);

  TcssConfig config_;
  size_t dim_i_, dim_j_, dim_k_;
  RowPartition part_;
  SparseTensor tensor_;
  DistWorkerOptions opts_;
  Env* env_ = nullptr;
  uint64_t fingerprint_ = 0;

  std::unique_ptr<WholeDataLoss> l2_;
  std::unique_ptr<CheckpointManager> ckpts_;

  FactorModel model_;
  FactorGrads grads_;
  FactorGrads adam_m_, adam_v_;
  int64_t adam_t_ = 0;
  int epoch_ = 0;
  double lr_scale_ = 1.0;
  std::atomic<uint32_t> gen_{0};

  /// Pre-step state of the last epoch whose forward loss the coordinator
  /// verified finite — the rollback target, mirroring TcssTrainer.
  FactorModel good_model_;
  FactorGrads good_m_, good_v_;
  int64_t good_t_ = 0;
  int good_epoch_ = 0;

  /// Shard-checkpoint epochs that failed to load this run; excluded from
  /// kHello so repeated recovery converges instead of retrying a corrupt
  /// file forever.
  std::set<int> bad_epochs_;

  std::mutex write_mu_;  ///< serializes main-loop and heartbeat writes
  DistWorkerStats stats_;
};

}  // namespace tcss

#endif  // TCSS_DIST_WORKER_H_
