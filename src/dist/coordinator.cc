#include "dist/coordinator.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>

#include "common/logging.h"
#include "common/strings.h"

namespace tcss {
namespace {

/// Bitwise equality of two double vectors (NaN-safe, -0.0 != +0.0): the
/// replica-lockstep check must detect *any* byte of drift, not values that
/// merely compare equal.
bool SameBits(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

}  // namespace

DistCoordinator::DistCoordinator(const TcssConfig& config, size_t dim_i,
                                 size_t dim_j, size_t dim_k,
                                 DistCoordinatorOptions opts)
    : config_(config),
      dim_i_(dim_i),
      dim_j_(dim_j),
      dim_k_(dim_k),
      part_(dim_i, opts.num_workers),
      opts_(std::move(opts)) {
  env_ = opts_.env != nullptr ? opts_.env : Env::Default();
}

DistCoordinator::~DistCoordinator() { Teardown(false, ""); }

int64_t DistCoordinator::NowMs() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void DistCoordinator::PushEvent(Event event) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(std::move(event));
  }
  events_cv_.notify_one();
}

bool DistCoordinator::PopEvent(Event* event, int tick_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!events_cv_.wait_for(lock, std::chrono::milliseconds(tick_ms),
                           [this] { return !events_.empty(); })) {
    return false;
  }
  *event = std::move(events_.front());
  events_.pop_front();
  return true;
}

void DistCoordinator::AcceptorLoop() {
  while (!acceptor_stop_.load(std::memory_order_relaxed)) {
    auto accepted = listener_->Accept(50);
    if (!accepted.ok()) {
      if (!acceptor_stop_.load(std::memory_order_relaxed)) {
        Event ev;
        ev.kind = Event::Kind::kAcceptFailed;
        ev.error = accepted.status();
        PushEvent(std::move(ev));
      }
      return;
    }
    std::unique_ptr<Conn> conn = accepted.MoveValue();
    if (conn == nullptr) continue;  // idle tick or transient abort
    {
      // The reader thread must start under the same lock that publishes
      // the session: once it is in sessions_, the state machine may
      // RetireSession it, which touches session->reader.
      std::lock_guard<std::mutex> lock(mu_);
      const uint64_t id = next_session_id_++;
      auto owned = std::make_unique<Session>();
      owned->id = id;
      owned->conn = std::move(conn);
      owned->last_rx_ms.store(NowMs(), std::memory_order_relaxed);
      Session* session = owned.get();
      session->reader =
          std::thread([this, session] { ReaderLoop(session); });
      sessions_[id] = std::move(owned);
    }
  }
}

void DistCoordinator::ReaderLoop(Session* session) {
  DistMsgReader reader;
  for (;;) {
    DistMsg msg;
    auto event = reader.Next(session->conn.get(), &msg, /*deadline_ms=*/-1,
                             &session->stop, /*tick_ms=*/50);
    if (!event.ok() || event.value() == DistReadEvent::kEof) {
      if (!session->stop.load(std::memory_order_relaxed)) {
        Event down;
        down.kind = Event::Kind::kDown;
        down.session_id = session->id;
        if (!event.ok()) down.error = event.status();
        PushEvent(std::move(down));
      }
      return;
    }
    if (event.value() == DistReadEvent::kStopped) return;
    if (event.value() != DistReadEvent::kMsg) continue;
    session->last_rx_ms.store(NowMs(), std::memory_order_relaxed);
    if (msg.type == DistMsgType::kHeartbeat) continue;  // liveness only
    Event ev;
    ev.session_id = session->id;
    ev.msg = std::move(msg);
    PushEvent(std::move(ev));
  }
}

DistCoordinator::Session* DistCoordinator::FindSession(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second.get();
}

void DistCoordinator::RetireSession(uint64_t id) {
  std::unique_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return;
    session = std::move(it->second);
    sessions_.erase(it);
  }
  session->stop.store(true, std::memory_order_relaxed);
  if (session->reader.joinable()) session->reader.join();
  session->conn->Close();
}

void DistCoordinator::RetireAllSessions() {
  std::vector<uint64_t> ids;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, session] : sessions_) ids.push_back(id);
  }
  for (uint64_t id : ids) RetireSession(id);
}

bool DistCoordinator::SendTo(uint64_t session_id, const DistMsg& msg) {
  Session* session = FindSession(session_id);
  if (session == nullptr) return false;
  // Sessions are only destroyed by the state-machine thread (this thread),
  // so the pointer stays valid across the unlocked Write.
  return SendDistMsg(session->conn.get(), msg, opts_.write_timeout_ms).ok();
}

Status DistCoordinator::Recover(uint64_t session_id, const std::string& why) {
  TCSS_LOG(Warning) << "coordinator: worker lost (" << why
                    << "); starting recovery " << stats_.recoveries + 1;
  if (session_id != 0) RetireSession(session_id);
  if (++stats_.recoveries > opts_.max_recoveries) {
    return Status::IOError(StrFormat(
        "worker failures exceeded the recovery budget (%d): last failure: %s",
        opts_.max_recoveries, why.c_str()));
  }
  need_world_ = true;
  ++gen_;
  DistMsg report;
  report.type = DistMsgType::kReport;
  report.gen = gen_;
  // Every surviving session is asked to re-Hello under the new generation;
  // a session we cannot even reach is dead too — drop it, its worker will
  // reconnect through the retry path.
  std::vector<uint64_t> ids;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, session] : sessions_) ids.push_back(id);
  }
  for (uint64_t id : ids) {
    if (!SendTo(id, report)) RetireSession(id);
  }
  return Status::OK();
}

Status DistCoordinator::WaitForWorld() {
  need_world_ = false;
  const int world = opts_.num_workers;
  rank_sessions_.assign(world, 0);
  rank_ckpts_.assign(world, {});
  int have = 0;
  const int64_t deadline = NowMs() + opts_.world_timeout_ms;
  while (have < world) {
    if (NowMs() >= deadline) {
      return Status::IOError(StrFormat(
          "timed out assembling the world: %d of %d workers checked in",
          have, world));
    }
    Event ev;
    if (!PopEvent(&ev, 50)) continue;
    switch (ev.kind) {
      case Event::Kind::kAcceptFailed:
        return ev.error;
      case Event::Kind::kDown: {
        Session* session = FindSession(ev.session_id);
        if (session != nullptr && session->rank >= 0 &&
            session->rank < world &&
            rank_sessions_[session->rank] == ev.session_id) {
          rank_sessions_[session->rank] = 0;
          rank_ckpts_[session->rank].clear();
          --have;
        }
        RetireSession(ev.session_id);
        break;
      }
      case Event::Kind::kMsg: {
        if (ev.msg.type != DistMsgType::kHello) break;  // stale traffic
        Session* session = FindSession(ev.session_id);
        if (session == nullptr) break;
        const uint32_t rank = ev.msg.rank;
        if (ev.msg.fingerprint != fingerprint_ ||
            ev.msg.num_workers != static_cast<uint32_t>(world) ||
            rank >= static_cast<uint32_t>(world)) {
          TCSS_LOG(Warning)
              << "coordinator: rejecting incompatible worker (rank "
              << rank << ", fingerprint mismatch or bad world size)";
          DistMsg abort;
          abort.type = DistMsgType::kAbort;
          abort.gen = gen_;
          abort.text =
              "config/fingerprint mismatch: this worker was launched "
              "against a different run";
          SendTo(ev.session_id, abort);
          RetireSession(ev.session_id);
          break;
        }
        session->rank = static_cast<int>(rank);
        if (rank_sessions_[rank] == 0) {
          ++have;
        } else if (rank_sessions_[rank] != ev.session_id) {
          // The rank reconnected before its old session died: the newest
          // connection wins, the zombie is retired.
          RetireSession(rank_sessions_[rank]);
        }
        rank_sessions_[rank] = ev.session_id;
        rank_ckpts_[rank] = ev.msg.ckpt_epochs;
        break;
      }
    }
  }

  // The restart epoch is the newest checkpoint *every* rank can load —
  // any rank missing it would fork the trajectory. No common epoch means
  // a cold start from 0.
  start_epoch_ = 0;
  std::vector<int32_t> candidates = rank_ckpts_[0];
  std::sort(candidates.rbegin(), candidates.rend());
  for (int32_t e : candidates) {
    if (e <= 0 || e > config_.epochs) continue;
    bool common = true;
    for (int r = 1; r < world && common; ++r) {
      common = std::find(rank_ckpts_[r].begin(), rank_ckpts_[r].end(), e) !=
               rank_ckpts_[r].end();
    }
    if (common) {
      start_epoch_ = e;
      break;
    }
  }
  epoch_ = start_epoch_;
  last_good_epoch_ = start_epoch_;
  lr_scale_known_ = false;  // re-adopted from the workers' next kGrad echo
  TCSS_LOG(Info) << "coordinator: world of " << world
                 << " assembled, starting at epoch " << start_epoch_
                 << " (generation " << gen_ << ")";
  return Status::OK();
}

Status DistCoordinator::RunEpochs() {
  const int world = opts_.num_workers;
  const size_t r = config_.rank;
  if (start_epoch_ >= config_.epochs) {
    finished_ = true;  // resumed past the end: straight to the gather
    return Status::OK();
  }

  std::vector<DistMsg> pending(world);
  std::vector<bool> have(world);
  int epoch = start_epoch_ + 1;
  for (;;) {
    const int64_t epoch_start = NowMs();
    std::fill(have.begin(), have.end(), false);
    std::vector<bool> straggler_flagged(world, false);
    int got = 0;

    while (got < world) {
      const int64_t now = NowMs();
      for (int w = 0; w < world; ++w) {
        Session* session = FindSession(rank_sessions_[w]);
        if (session == nullptr) continue;
        const int64_t silent =
            now - session->last_rx_ms.load(std::memory_order_relaxed);
        if (silent > opts_.heartbeat_timeout_ms) {
          return Recover(rank_sessions_[w],
                         StrFormat("rank %d silent for %d ms", w,
                                   static_cast<int>(silent)));
        }
        if (!have[w] && !straggler_flagged[w] &&
            now - epoch_start > opts_.straggler_warn_ms) {
          straggler_flagged[w] = true;
          ++stats_.stragglers;
          TCSS_LOG(Warning) << "coordinator: rank " << w
                            << " is straggling on epoch " << epoch
                            << " (alive but " << (now - epoch_start)
                            << " ms late)";
        }
      }
      if (need_world_) return Status::OK();

      Event ev;
      if (!PopEvent(&ev, 50)) continue;
      if (ev.kind == Event::Kind::kAcceptFailed) return ev.error;
      if (ev.kind == Event::Kind::kDown) {
        Session* session = FindSession(ev.session_id);
        const bool ranked =
            session != nullptr && session->rank >= 0 &&
            rank_sessions_[session->rank] == ev.session_id;
        if (!ranked) {
          RetireSession(ev.session_id);
          continue;
        }
        return Recover(ev.session_id,
                       StrFormat("rank %d connection dropped: %s",
                                 session->rank, ev.error.message().c_str()));
      }
      // kMsg ------------------------------------------------------------
      if (ev.msg.type == DistMsgType::kHello) {
        // A worker (re)introduced itself mid-run — some process restarted.
        // Rebuild the world; the Hello is re-sent under the new generation
        // in response to kReport.
        return Recover(0, "unexpected hello mid-run (worker restarted)");
      }
      if (ev.msg.gen != gen_) continue;  // pre-recovery traffic
      if (ev.msg.type == DistMsgType::kCkptAck) {
        ++stats_.ckpt_acks;
        continue;
      }
      if (ev.msg.type != DistMsgType::kGrad) {
        return Status::Internal(
            StrFormat("protocol violation: unexpected %s during epoch %d",
                      DistMsgTypeName(ev.msg.type), epoch));
      }
      Session* session = FindSession(ev.session_id);
      if (session == nullptr || session->rank < 0 ||
          rank_sessions_[session->rank] != ev.session_id) {
        continue;  // gradient from a retired session
      }
      const int w = session->rank;
      if (ev.msg.epoch != epoch) {
        return Status::Internal(
            StrFormat("rank %d sent a gradient for epoch %d while the run "
                      "is at epoch %d",
                      w, ev.msg.epoch, epoch));
      }
      if (ev.msg.u2.size() != dim_j_ * r || ev.msg.u3.size() != dim_k_ * r ||
          ev.msg.h.size() != r || ev.msg.u3_replica.size() != dim_k_ * r) {
        return Status::Internal(
            StrFormat("rank %d sent gradient arrays of the wrong shape", w));
      }
      if (!have[w]) ++got;
      have[w] = true;
      pending[w] = std::move(ev.msg);
    }

    // Deterministic all-reduce: rank 0's contribution is adopted verbatim
    // and ranks 1..W-1 are added in ascending order — the one fixed
    // summation order every run (and every resume) of the same world size
    // reproduces bit-for-bit. At W=1 this is the identity, which is what
    // makes the single-worker engine a bitwise oracle of TcssTrainer.
    double loss_l2 = pending[0].loss;
    std::vector<double> u2g = pending[0].u2;
    std::vector<double> hg = pending[0].h;
    Matrix u3g(dim_k_, r);
    std::copy(pending[0].u3.begin(), pending[0].u3.end(), u3g.data());
    for (int w = 1; w < world; ++w) {
      loss_l2 += pending[w].loss;
      for (size_t i = 0; i < u2g.size(); ++i) u2g[i] += pending[w].u2[i];
      for (size_t i = 0; i < u3g.size(); ++i) {
        u3g.data()[i] += pending[w].u3[i];
      }
      for (size_t i = 0; i < hg.size(); ++i) hg[i] += pending[w].h[i];
      if (!SameBits(pending[w].u3_replica, pending[0].u3_replica)) {
        BroadcastAbort("replica lockstep broken");
        return Status::Internal(StrFormat(
            "U3 replica of rank %d diverged bitwise from rank 0 at epoch "
            "%d — the lockstep invariant is broken",
            w, epoch));
      }
      if (!SameBits(pending[w].lr_scale, pending[0].lr_scale)) {
        BroadcastAbort("lr_scale lockstep broken");
        return Status::Internal(StrFormat(
            "lr_scale of rank %d diverged from rank 0 at epoch %d", w,
            epoch));
      }
    }
    // After a restart the backoff multiplier lives only in the shard
    // checkpoints; the workers' (verified-identical) echo restores it.
    if (!lr_scale_known_) {
      lr_scale_ = pending[0].lr_scale;
      lr_scale_known_ = true;
    } else if (!SameBits(lr_scale_, pending[0].lr_scale)) {
      BroadcastAbort("lr_scale desync");
      return Status::Internal(
          StrFormat("workers echo lr_scale %g but the coordinator tracks "
                    "%g at epoch %d",
                    pending[0].lr_scale, lr_scale_, epoch));
    }

    double loss_ts = 0.0;
    if (config_.temporal_smoothness > 0.0) {
      // U3 is replicated and verified identical, so the coupling term the
      // row-decomposition cannot shard is evaluated centrally on it.
      Matrix u3_rep(dim_k_, r);
      std::copy(pending[0].u3_replica.begin(), pending[0].u3_replica.end(),
                u3_rep.data());
      loss_ts =
          AddTemporalSmoothnessGrad(u3_rep, config_.temporal_smoothness, &u3g);
    }

    double grad_norm = pending[0].grad_maxabs;
    for (int w = 1; w < world; ++w) {
      grad_norm = std::max(grad_norm, pending[w].grad_maxabs);
    }
    grad_norm = std::max(grad_norm, MaxAbsOrInf(u2g.data(), u2g.size()));
    grad_norm = std::max(grad_norm, MaxAbsOrInf(u3g.data(), u3g.size()));
    grad_norm = std::max(grad_norm, MaxAbsOrInf(hg.data(), hg.size()));

    const double total_loss = loss_l2 + loss_ts;
    const bool diverged =
        !std::isfinite(total_loss) || !std::isfinite(grad_norm) ||
        (opts_.grad_norm_limit > 0.0 && grad_norm > opts_.grad_norm_limit);
    if (diverged) {
      if (stats_.rollbacks >= opts_.max_divergence_retries) {
        const std::string why = StrFormat(
            "divergence at epoch %d (loss=%g, grad_norm=%g): %d rollback "
            "retries with LR backoff %g exhausted; lower the learning rate",
            epoch, total_loss, grad_norm, stats_.rollbacks, opts_.lr_backoff);
        BroadcastAbort(why);
        return Status::NotConverged(why);
      }
      ++stats_.rollbacks;
      lr_scale_ *= opts_.lr_backoff;
      TCSS_LOG(Warning) << "coordinator: divergence at epoch " << epoch
                        << " (loss=" << total_loss
                        << ", grad_norm=" << grad_norm
                        << "); rolling back to epoch " << last_good_epoch_
                        << " with lr_scale " << lr_scale_;
      DistMsg rollback;
      rollback.type = DistMsgType::kReduced;
      rollback.gen = gen_;
      rollback.epoch = epoch;
      rollback.action = kActionRollback;
      rollback.lr_scale = lr_scale_;
      for (int w = 0; w < world; ++w) {
        if (!SendTo(rank_sessions_[w], rollback)) {
          return Recover(rank_sessions_[w],
                         StrFormat("rank %d unreachable for rollback", w));
        }
      }
      epoch = last_good_epoch_ + 1;
      continue;
    }

    // Step. The pre-step state (what every worker snapshots before
    // applying this message) becomes the rollback target.
    last_good_epoch_ = epoch - 1;
    const double lr = ScheduledLearningRate(config_, epoch) * lr_scale_;
    const bool stop_requested =
        opts_.stop != nullptr && opts_.stop->load(std::memory_order_relaxed);
    const bool last = epoch == config_.epochs || stop_requested;
    const bool snapshot =
        last || (opts_.checkpoint_every > 0 &&
                 epoch % opts_.checkpoint_every == 0);
    DistMsg step;
    step.type = DistMsgType::kReduced;
    step.gen = gen_;
    step.epoch = epoch;
    step.action = kActionStep;
    step.flags = static_cast<uint8_t>((snapshot ? kFlagCheckpoint : 0) |
                                      (last ? kFlagLastEpoch : 0));
    step.lr = lr;
    step.lr_scale = lr_scale_;
    step.u2 = std::move(u2g);
    step.u3.assign(u3g.data(), u3g.data() + u3g.size());
    step.h = std::move(hg);
    for (int w = 0; w < world; ++w) {
      if (!SendTo(rank_sessions_[w], step)) {
        // A partial broadcast leaves workers at different epochs; the
        // recovery restart epoch is the newest *common* checkpoint, which
        // by construction predates the torn step on every rank.
        return Recover(rank_sessions_[w],
                       StrFormat("rank %d unreachable for the epoch %d step",
                                 w, epoch));
      }
    }
    ++stats_.epochs;
    epoch_ = epoch;
    if (opts_.epoch_callback) {
      EpochStats es;
      es.epoch = epoch;
      es.loss_l2 = loss_l2;
      es.loss_ts = loss_ts;
      es.grad_norm = grad_norm;
      es.lr = lr;
      es.rollbacks = stats_.rollbacks;
      es.seconds = static_cast<double>(NowMs() - epoch_start) * 1e-3;
      opts_.epoch_callback(es);
    }
    if (last) {
      finished_ = true;
      return Status::OK();
    }
    ++epoch;
  }
}

Status DistCoordinator::GatherFinals(FactorModel* out) {
  const int world = opts_.num_workers;
  const size_t r = config_.rank;
  std::vector<DistMsg> finals(world);
  std::vector<bool> have(world);
  int got = 0;
  while (got < world) {
    const int64_t now = NowMs();
    for (int w = 0; w < world; ++w) {
      Session* session = FindSession(rank_sessions_[w]);
      if (session == nullptr) continue;
      const int64_t silent =
          now - session->last_rx_ms.load(std::memory_order_relaxed);
      if (silent > opts_.heartbeat_timeout_ms) {
        return Recover(rank_sessions_[w],
                       StrFormat("rank %d silent during the final gather", w));
      }
    }
    if (need_world_) return Status::OK();

    Event ev;
    if (!PopEvent(&ev, 50)) continue;
    if (ev.kind == Event::Kind::kAcceptFailed) return ev.error;
    if (ev.kind == Event::Kind::kDown) {
      Session* session = FindSession(ev.session_id);
      const bool ranked = session != nullptr && session->rank >= 0 &&
                          rank_sessions_[session->rank] == ev.session_id;
      if (!ranked) {
        RetireSession(ev.session_id);
        continue;
      }
      // The lost rank's kFinal may be gone with it, but its state is not:
      // the last epoch always snapshots, so recovery restarts the world at
      // config.epochs and every worker answers kStart with a fresh kFinal.
      return Recover(ev.session_id,
                     StrFormat("rank %d dropped before delivering its model",
                               session->rank));
    }
    if (ev.msg.type == DistMsgType::kHello) {
      return Recover(0, "unexpected hello during the final gather");
    }
    if (ev.msg.gen != gen_) continue;
    if (ev.msg.type == DistMsgType::kCkptAck) {
      ++stats_.ckpt_acks;
      continue;
    }
    if (ev.msg.type != DistMsgType::kFinal) continue;  // e.g. stale kGrad
    Session* session = FindSession(ev.session_id);
    if (session == nullptr || session->rank < 0 ||
        rank_sessions_[session->rank] != ev.session_id) {
      continue;
    }
    const int w = session->rank;
    if (ev.msg.u1.size() != part_.Count(w) * r ||
        ev.msg.u2.size() != dim_j_ * r || ev.msg.u3.size() != dim_k_ * r ||
        ev.msg.h.size() != r) {
      return Status::Internal(
          StrFormat("rank %d sent a final model of the wrong shape", w));
    }
    if (!have[w]) ++got;
    have[w] = true;
    finals[w] = std::move(ev.msg);
  }

  for (int w = 1; w < world; ++w) {
    if (!SameBits(finals[w].u2, finals[0].u2) ||
        !SameBits(finals[w].u3, finals[0].u3) ||
        !SameBits(finals[w].h, finals[0].h)) {
      BroadcastAbort("final replica mismatch");
      return Status::Internal(StrFormat(
          "final replicated factors of rank %d differ bitwise from rank 0",
          w));
    }
  }
  out->u1.Resize(dim_i_, r);
  for (int w = 0; w < world; ++w) {
    std::copy(finals[w].u1.begin(), finals[w].u1.end(),
              out->u1.row(part_.Begin(w)));
  }
  out->u2.Resize(dim_j_, r);
  std::copy(finals[0].u2.begin(), finals[0].u2.end(), out->u2.data());
  out->u3.Resize(dim_k_, r);
  std::copy(finals[0].u3.begin(), finals[0].u3.end(), out->u3.data());
  out->h = finals[0].h;
  return Status::OK();
}

void DistCoordinator::BroadcastAbort(const std::string& why) {
  DistMsg abort;
  abort.type = DistMsgType::kAbort;
  abort.gen = gen_;
  abort.text = why;
  std::vector<uint64_t> ids;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, session] : sessions_) ids.push_back(id);
  }
  for (uint64_t id : ids) SendTo(id, abort);
}

void DistCoordinator::Teardown(bool aborting, const std::string& why) {
  if (torn_down_) return;
  torn_down_ = true;
  if (listener_ != nullptr) {
    if (aborting) {
      BroadcastAbort(why);
    } else {
      DistMsg bye;
      bye.type = DistMsgType::kShutdown;
      bye.gen = gen_;
      std::vector<uint64_t> ids;
      {
        std::lock_guard<std::mutex> lock(mu_);
        for (const auto& [id, session] : sessions_) ids.push_back(id);
      }
      for (uint64_t id : ids) SendTo(id, bye);
    }
  }
  acceptor_stop_.store(true, std::memory_order_relaxed);
  if (acceptor_.joinable()) acceptor_.join();
  RetireAllSessions();
  if (listener_ != nullptr) listener_->Close();
}

Result<FactorModel> DistCoordinator::Run() {
  std::string problem = config_.Validate();
  if (!problem.empty()) return Status::InvalidArgument(problem);
  if (!ValidateDistConfig(config_, opts_.num_workers, &problem)) {
    return Status::InvalidArgument(problem);
  }
  fingerprint_ = DistFingerprint(config_, dim_i_, dim_j_, dim_k_,
                                 opts_.num_workers);
  auto listener = env_->NewListener(opts_.socket_path);
  if (!listener.ok()) return listener.status();
  listener_ = listener.MoveValue();
  acceptor_ = std::thread([this] { AcceptorLoop(); });
  gen_ = 1;

  for (;;) {
    Status st = WaitForWorld();
    if (!st.ok()) {
      Teardown(true, st.message());
      return st;
    }
    DistMsg start;
    start.type = DistMsgType::kStart;
    start.gen = gen_;
    start.epoch = start_epoch_;
    bool lost = false;
    for (int w = 0; w < opts_.num_workers && !lost; ++w) {
      if (!SendTo(rank_sessions_[w], start)) {
        st = Recover(rank_sessions_[w],
                     StrFormat("rank %d unreachable at start", w));
        lost = true;
      }
    }
    if (lost) {
      if (!st.ok()) {
        Teardown(true, st.message());
        return st;
      }
      continue;
    }

    finished_ = false;
    st = RunEpochs();
    if (!st.ok()) {
      Teardown(true, st.message());
      return st;
    }
    if (need_world_) continue;

    FactorModel model;
    st = GatherFinals(&model);
    if (!st.ok()) {
      Teardown(true, st.message());
      return st;
    }
    if (need_world_) continue;

    Teardown(false, "");
    return model;
  }
}

}  // namespace tcss
