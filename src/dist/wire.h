#ifndef TCSS_DIST_WIRE_H_
#define TCSS_DIST_WIRE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/env.h"
#include "common/status.h"

namespace tcss {

/// Wire protocol of the distributed training engine (src/dist).
///
/// Transport framing is the serving front-end's length-prefixed CRC32
/// codec (EncodeFrame/DecodeFrame from serve/frontend.h) under its own
/// magic, so every control and gradient message inherits the same
/// integrity guarantees the request path already proved under fuzzing: a
/// bit flip anywhere past the magic fails the CRC, an absurd length is
/// rejected before allocation, and a truncated frame can never parse.
///
/// The payload is binary, little-endian:
///
///   [u8 type] [u32 gen] [type-specific fields]
///
/// `gen` is the coordinator's recovery generation. Every recovery
/// increments it, and both sides drop messages from older generations —
/// a gradient computed before a worker died cannot contaminate the
/// restarted epoch. Doubles travel as their raw IEEE-754 bit patterns
/// (u64), which is what makes distributed training *bit*-deterministic:
/// no text round-trip, no last-ulp drift.
inline constexpr uint32_t kDistMagic = 0x4d445154u;  // "TQDM" LE

/// Gradient/final frames carry whole replicated factors (J*r + K*r + r
/// doubles) or a U1 row block, so the cap is far above the serving
/// frontend's: 256 MiB covers ~1M users x rank 32 in one final frame.
inline constexpr size_t kMaxDistPayload = 1u << 28;

enum class DistMsgType : uint8_t {
  /// worker -> coordinator. First message on every (re)connection, and
  /// the answer to kReport: identifies the rank and proves config/data
  /// compatibility via the fingerprint; lists the epochs of the shard
  /// checkpoints this worker can actually reload (the coordinator resumes
  /// from the newest epoch common to all workers).
  kHello = 1,
  /// coordinator -> worker: (re)start training from `epoch` completed
  /// epochs under generation `gen`. epoch == 0 means cold start.
  kStart = 2,
  /// worker -> coordinator: the barrier contribution of one epoch — the
  /// local L2 loss partial, the max-abs of the local U1 gradient block,
  /// the full U2/U3/h gradient partials, and the worker's current U3
  /// replica (the coordinator's temporal-smoothness input, doubling as a
  /// bitwise lockstep check across workers).
  kGrad = 3,
  /// coordinator -> worker: the barrier result. Either one Adam step
  /// (reduced U2/U3/h gradients + effective learning rate) or a rollback
  /// to the last verified-good state with a smaller LR scale.
  kReduced = 4,
  /// worker -> coordinator: liveness beacon, sent from a dedicated thread
  /// even while the main thread grinds through a long epoch.
  kHeartbeat = 5,
  /// worker -> coordinator: shard checkpoint for `epoch` is durable.
  kCkptAck = 6,
  /// worker -> coordinator: the trained U1 row block plus the replicated
  /// U2/U3/h (the coordinator cross-checks the replicas bitwise before
  /// assembling the full model).
  kFinal = 7,
  /// coordinator -> worker: training is over, disconnect.
  kShutdown = 8,
  /// coordinator -> worker: a peer died; re-send kHello with your current
  /// checkpoint availability so recovery can pick a common epoch.
  kReport = 9,
  /// coordinator -> worker: unrecoverable failure, give up (text carries
  /// the diagnostic).
  kAbort = 10,
};

/// kReduced actions.
inline constexpr uint8_t kActionStep = 0;
inline constexpr uint8_t kActionRollback = 1;

/// kReduced flag bits.
inline constexpr uint8_t kFlagCheckpoint = 1;  ///< snapshot after this step
inline constexpr uint8_t kFlagLastEpoch = 2;   ///< send kFinal afterwards

/// One decoded message (tagged union; only the fields of `type` are
/// meaningful).
struct DistMsg {
  DistMsgType type = DistMsgType::kHeartbeat;
  uint32_t gen = 0;

  // kHello
  uint32_t rank = 0;
  uint32_t num_workers = 0;
  uint64_t fingerprint = 0;
  std::vector<int32_t> ckpt_epochs;

  // kStart / kGrad / kReduced / kCkptAck / kFinal
  int32_t epoch = 0;

  // kReduced
  uint8_t action = kActionStep;
  uint8_t flags = 0;
  double lr = 0.0;

  // kGrad / kReduced
  double lr_scale = 0.0;

  // kGrad
  double loss = 0.0;
  double grad_maxabs = 0.0;
  std::vector<double> u3_replica;

  // kGrad (partials) / kReduced (reduced) / kFinal (trained replicas)
  std::vector<double> u2;
  std::vector<double> u3;
  std::vector<double> h;

  // kFinal
  std::vector<double> u1;

  // kAbort
  std::string text;
};

const char* DistMsgTypeName(DistMsgType t);

/// Serializes the payload (not the frame).
std::string EncodeDistMsg(const DistMsg& msg);

/// Strict, bounds-checked parse of a payload: unknown types, short
/// buffers, oversized array counts and trailing bytes are all errors —
/// the fuzz suite sweeps every byte of every message type through here.
Result<DistMsg> ParseDistMsg(std::string_view payload);

/// Frames and writes one message. Callers sharing a Conn between the
/// heartbeat thread and the main loop must serialize calls themselves.
Status SendDistMsg(Conn* conn, const DistMsg& msg, int timeout_ms);

/// Outcome of one DistMsgReader::Next call that did not hard-fail.
enum class DistReadEvent {
  kMsg,      ///< *out holds a parsed message
  kEof,      ///< peer closed between frames
  kTimeout,  ///< deadline expired with no complete frame
  kStopped,  ///< *stop became true
};

/// Incremental, deadline-bounded message reader over a Conn. Buffers
/// partial frames across reads (split reads reassemble), decodes + parses
/// complete ones. A malformed frame or payload is a hard error: the
/// stream cannot be resynchronized, the connection must be dropped.
class DistMsgReader {
 public:
  /// Blocks until a message arrives, the peer closes, `deadline_ms`
  /// expires (negative = no deadline), or `*stop` becomes true (checked
  /// every `tick_ms`; stop may be null).
  Result<DistReadEvent> Next(Conn* conn, DistMsg* out, int deadline_ms,
                             const std::atomic<bool>* stop,
                             int tick_ms = 50);

  size_t buffered() const { return buf_.size(); }

 private:
  std::string buf_;
};

}  // namespace tcss

#endif  // TCSS_DIST_WIRE_H_
