#ifndef TCSS_DIST_COORDINATOR_H_
#define TCSS_DIST_COORDINATOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/env.h"
#include "common/status.h"
#include "core/factor_model.h"
#include "core/tcss_config.h"
#include "core/trainer.h"
#include "dist/partition.h"
#include "dist/wire.h"

namespace tcss {

/// Per-epoch diagnostics of a distributed run. Same fields as the
/// single-process EpochStats where they apply; the coordinator never holds
/// the sharded U1, so the callback carries stats only.
using DistEpochCallback = std::function<void(const EpochStats&)>;

/// Knobs of the coordinator (the single control process of a run).
struct DistCoordinatorOptions {
  int num_workers = 2;
  /// Unix-domain socket to listen on (keep it short: sun_path caps at
  /// ~100 bytes).
  std::string socket_path;
  /// Transport; null = Env::Default(). Tests inject FaultInjectionEnv.
  Env* env = nullptr;

  /// Divergence guard, mirroring TrainOptions exactly.
  int max_divergence_retries = 3;
  double lr_backoff = 0.5;
  double grad_norm_limit = 0.0;

  /// Snapshot period for worker shard checkpoints, in epochs (<= 0
  /// disables periodic snapshots; the final epoch always snapshots when
  /// workers have a checkpoint dir).
  int checkpoint_every = 10;

  /// A worker whose connection stays silent (no heartbeat, no gradient)
  /// past this is declared dead and triggers recovery.
  int heartbeat_timeout_ms = 3'000;
  /// A live (heartbeating) worker whose gradient is this late is counted
  /// and logged as a straggler — visibility without a verdict.
  int straggler_warn_ms = 1'000;
  /// How long to wait for all ranks to check in (initially and after each
  /// recovery) before giving up on the run.
  int world_timeout_ms = 60'000;
  /// Worker deaths tolerated over the whole run before aborting.
  int max_recoveries = 16;
  int write_timeout_ms = 10'000;

  /// Cooperative cancellation, checked once per epoch: the run ends early
  /// through the normal last-epoch path (final snapshot + model gather).
  const std::atomic<bool>* stop = nullptr;

  DistEpochCallback epoch_callback;
};

/// Observable effects of one coordinated run.
struct DistCoordinatorStats {
  int epochs = 0;       ///< steps broadcast (excl. rollbacks)
  int rollbacks = 0;    ///< divergence rollbacks
  int recoveries = 0;   ///< worker deaths recovered from
  int stragglers = 0;   ///< late-gradient warnings
  int ckpt_acks = 0;    ///< shard checkpoint acknowledgements seen
};

/// The control process of the sharded training engine: accepts worker
/// connections, assembles the world, drives the epoch state machine
/// (gather gradients -> deterministic ascending-rank reduce -> divergence
/// check -> broadcast step or rollback), detects dead workers by
/// heartbeat silence, and recovers by restarting every worker from the
/// newest shard-checkpoint epoch they all hold. See DESIGN.md §11.
class DistCoordinator {
 public:
  DistCoordinator(const TcssConfig& config, size_t dim_i, size_t dim_j,
                  size_t dim_k, DistCoordinatorOptions opts);
  ~DistCoordinator();

  /// Blocks until the run completes (the assembled full model), a worker
  /// is unrecoverable, or training diverges past the retry budget.
  Result<FactorModel> Run();

  const DistCoordinatorStats& stats() const { return stats_; }

 private:
  struct Session {
    uint64_t id = 0;
    std::unique_ptr<Conn> conn;
    std::thread reader;
    std::atomic<bool> stop{false};
    /// steady_clock ms of the last byte of protocol activity (heartbeats
    /// count); the liveness signal.
    std::atomic<int64_t> last_rx_ms{0};
    int rank = -1;  ///< set by the state machine on kHello
  };

  struct Event {
    enum class Kind { kMsg, kDown, kAcceptFailed };
    Kind kind = Kind::kMsg;
    uint64_t session_id = 0;
    DistMsg msg;
    Status error;  ///< kAcceptFailed diagnostic
  };

  void AcceptorLoop();
  void ReaderLoop(Session* session);
  void PushEvent(Event event);
  /// Waits up to `tick_ms` for an event; false on timeout.
  bool PopEvent(Event* event, int tick_ms);

  Session* FindSession(uint64_t id);
  /// Stops the reader, closes the conn and forgets the session.
  void RetireSession(uint64_t id);
  void RetireAllSessions();

  /// True while `id` still maps to a live session.
  bool SendTo(uint64_t session_id, const DistMsg& msg);

  /// Collects kHello from all ranks (fresh or re-sent after kReport) and
  /// picks the common restart epoch. Fills rank_sessions_/start_epoch_.
  Status WaitForWorld();
  /// One gather->reduce->broadcast cycle; see .cc for the full protocol.
  Status RunEpochs();
  Status GatherFinals(FactorModel* out);
  /// Declares `session_id` dead and rebuilds the world (generation bump +
  /// kReport broadcast). Returns non-OK when the recovery budget is spent.
  Status Recover(uint64_t session_id, const std::string& why);

  /// Best-effort terminal broadcast + full teardown; idempotent.
  void BroadcastAbort(const std::string& why);
  void Teardown(bool aborting, const std::string& why);

  int64_t NowMs() const;

  TcssConfig config_;
  size_t dim_i_, dim_j_, dim_k_;
  RowPartition part_;
  DistCoordinatorOptions opts_;
  Env* env_ = nullptr;
  uint64_t fingerprint_ = 0;

  std::unique_ptr<Listener> listener_;
  std::thread acceptor_;
  std::atomic<bool> acceptor_stop_{false};

  std::mutex mu_;  ///< guards sessions_, events_, next_session_id_
  std::condition_variable events_cv_;
  std::deque<Event> events_;
  std::map<uint64_t, std::unique_ptr<Session>> sessions_;
  uint64_t next_session_id_ = 1;

  // State machine (Run thread only) --------------------------------------
  uint32_t gen_ = 0;
  std::vector<uint64_t> rank_sessions_;  ///< rank -> session id
  /// rank -> shard-checkpoint epochs from the newest kHello.
  std::vector<std::vector<int32_t>> rank_ckpts_;
  int start_epoch_ = 0;
  int epoch_ = 0;
  int last_good_epoch_ = 0;
  double lr_scale_ = 1.0;
  bool lr_scale_known_ = false;  ///< false until the first kGrad echo
  bool finished_ = false;        ///< last-epoch step broadcast
  bool need_world_ = false;      ///< a recovery invalidated the world
  bool torn_down_ = false;
  DistCoordinatorStats stats_;
};

}  // namespace tcss

#endif  // TCSS_DIST_COORDINATOR_H_
