// Tests for the user-facing convenience APIs: model persistence and
// top-K recommendation.
#include <gtest/gtest.h>

#include <filesystem>

#include "common/rng.h"
#include "core/model_io.h"
#include "core/recommend.h"
#include "core/tcss_model.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "data/tensor_builder.h"

namespace tcss {
namespace {

FactorModel RandomModel(size_t I, size_t J, size_t K, size_t r,
                        uint64_t seed) {
  Rng rng(seed);
  FactorModel m;
  m.u1 = Matrix::GaussianRandom(I, r, &rng, 0.5);
  m.u2 = Matrix::GaussianRandom(J, r, &rng, 0.5);
  m.u3 = Matrix::GaussianRandom(K, r, &rng, 0.5);
  m.h.resize(r);
  for (auto& h : m.h) h = rng.Gaussian();
  return m;
}

TEST(ModelIoTest, RoundTripIsExact) {
  FactorModel m = RandomModel(7, 5, 12, 4, 1);
  std::string path = ::testing::TempDir() + "/tcss_model_roundtrip.txt";
  ASSERT_TRUE(SaveFactorModel(m, path).ok());
  auto loaded = LoadFactorModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const FactorModel& l = loaded.value();
  EXPECT_EQ(l.rank(), 4u);
  // Hex-float serialization must round-trip bit-exactly.
  EXPECT_DOUBLE_EQ(MaxAbsDiff(l.u1, m.u1), 0.0);
  EXPECT_DOUBLE_EQ(MaxAbsDiff(l.u2, m.u2), 0.0);
  EXPECT_DOUBLE_EQ(MaxAbsDiff(l.u3, m.u3), 0.0);
  for (size_t t = 0; t < 4; ++t) EXPECT_DOUBLE_EQ(l.h[t], m.h[t]);
  EXPECT_DOUBLE_EQ(l.Predict(3, 2, 9), m.Predict(3, 2, 9));
}

TEST(ModelIoTest, RejectsMissingAndCorruptFiles) {
  EXPECT_FALSE(LoadFactorModel("/nonexistent/model.txt").ok());
  std::string path = ::testing::TempDir() + "/tcss_model_corrupt.txt";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("NOTTCSS\n1 1 1 1\n", f);
    std::fclose(f);
  }
  EXPECT_FALSE(LoadFactorModel(path).ok());
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("TCSSv1\n3 3 3 2\n0x1p+0 0x1p+0\n0x1p+0\n", f);  // truncated
    std::fclose(f);
  }
  EXPECT_FALSE(LoadFactorModel(path).ok());
}

TEST(ModelIoTest, TrainedModelSurvivesPersistence) {
  auto data = GenerateSyntheticLbsn(
      PresetConfig(SyntheticPreset::kGowallaLike, 0.2));
  ASSERT_TRUE(data.ok());
  auto split = SplitCheckins(data.value(), 0.8, 1);
  auto train = BuildCheckinTensor(data.value(), split.train,
                                  TimeGranularity::kMonthOfYear);
  ASSERT_TRUE(train.ok());
  TcssConfig cfg;
  cfg.epochs = 30;
  TcssModel model(cfg);
  ASSERT_TRUE(model
                  .Fit({&data.value(), &train.value(),
                        TimeGranularity::kMonthOfYear, 1})
                  .ok());
  std::string path = ::testing::TempDir() + "/tcss_trained_model.txt";
  ASSERT_TRUE(SaveFactorModel(model.factors(), path).ok());
  auto loaded = LoadFactorModel(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_DOUBLE_EQ(loaded.value().Predict(2, 3, 4), model.Score(2, 3, 4));
}

// Recommender backed by a fixed score table, for deterministic top-K
// assertions.
class TableRecommender : public Recommender {
 public:
  explicit TableRecommender(std::vector<double> scores)
      : scores_(std::move(scores)) {}
  std::string name() const override { return "table"; }
  Status Fit(const TrainContext&) override { return Status::OK(); }
  double Score(uint32_t, uint32_t j, uint32_t) const override {
    return scores_[j];
  }

 private:
  std::vector<double> scores_;
};

TEST(TopKTest, ReturnsSortedTopK) {
  TableRecommender model({0.1, 0.9, 0.5, 0.7, 0.3});
  TopKOptions opts;
  opts.k = 3;
  auto recs = TopKRecommendations(model, 0, 0, 5, opts);
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_EQ(recs[0].poi, 1u);
  EXPECT_EQ(recs[1].poi, 3u);
  EXPECT_EQ(recs[2].poi, 2u);
  EXPECT_DOUBLE_EQ(recs[0].score, 0.9);
}

TEST(TopKTest, KLargerThanCatalogue) {
  TableRecommender model({0.2, 0.1});
  TopKOptions opts;
  opts.k = 10;
  auto recs = TopKRecommendations(model, 0, 0, 2, opts);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].poi, 0u);
}

TEST(TopKTest, ExcludesVisitedPois) {
  TableRecommender model({0.9, 0.8, 0.7, 0.6});
  SparseTensor train(2, 4, 2);
  ASSERT_TRUE(train.Add(0, 0, 0).ok());  // user 0 visited poi 0
  ASSERT_TRUE(train.Add(1, 1, 0).ok());  // other user's visit: irrelevant
  ASSERT_TRUE(train.Finalize().ok());
  TopKOptions opts;
  opts.k = 2;
  opts.exclude_visited = true;
  auto recs = TopKRecommendations(model, 0, 0, 4, opts, &train);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].poi, 1u);  // poi 0 excluded for user 0
  EXPECT_EQ(recs[1].poi, 2u);
}

TEST(TopKTest, CandidateRestriction) {
  TableRecommender model({0.9, 0.8, 0.7, 0.6});
  TopKOptions opts;
  opts.k = 2;
  opts.candidates = {3, 2, 99};  // 99 out of range, ignored
  auto recs = TopKRecommendations(model, 0, 0, 4, opts);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].poi, 2u);
  EXPECT_EQ(recs[1].poi, 3u);
}

TEST(TopKTest, ExcludeVisitedWithoutTrainReturnsEmpty) {
  // The exclusion cannot be honored without the visit history; serving an
  // unfiltered list would leak already-visited POIs, so the contract is
  // an empty answer rather than UB or a crash.
  TableRecommender model({0.9, 0.8});
  TopKOptions opts;
  opts.k = 2;
  opts.exclude_visited = true;
  auto recs = TopKRecommendations(model, 0, 0, 2, opts, nullptr);
  EXPECT_TRUE(recs.empty());
}

TEST(TopKTest, ZeroKAndZeroCatalogueReturnEmpty) {
  TableRecommender model({0.9, 0.8});
  TopKOptions opts;
  opts.k = 0;
  EXPECT_TRUE(TopKRecommendations(model, 0, 0, 2, opts).empty());
  opts.k = 5;
  EXPECT_TRUE(TopKRecommendations(model, 0, 0, 0, opts).empty());
}

TEST(TopKTest, OutOfRangeTrainEntriesAreIgnored) {
  // The train tensor may cover a larger POI catalogue than the one being
  // served (e.g. after a category filter); its extra columns must neither
  // crash the visited-set construction nor exclude valid POIs.
  TableRecommender model({0.9, 0.8, 0.7});
  SparseTensor train(2, 10, 2);
  ASSERT_TRUE(train.Add(0, 1, 0).ok());  // real visit inside the catalogue
  ASSERT_TRUE(train.Add(0, 7, 0).ok());  // outside the served 3 POIs
  ASSERT_TRUE(train.Finalize().ok());
  TopKOptions opts;
  opts.k = 3;
  opts.exclude_visited = true;
  auto recs = TopKRecommendations(model, 0, 0, 3, opts, &train);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].poi, 0u);
  EXPECT_EQ(recs[1].poi, 2u);
}

TEST(TopKTest, TiesBrokenByPoiId) {
  TableRecommender model({0.5, 0.5, 0.5});
  TopKOptions opts;
  opts.k = 3;
  auto recs = TopKRecommendations(model, 0, 0, 3, opts);
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_EQ(recs[0].poi, 0u);
  EXPECT_EQ(recs[1].poi, 1u);
  EXPECT_EQ(recs[2].poi, 2u);
}

}  // namespace
}  // namespace tcss
