// Randomized corruption harness for every untrusted-input loader: the CSV
// dataset loader (strict and lenient), the TCSSv2 model parser, the
// TCKPv1 checkpoint parser, and the serving wire format (frame decoder +
// response-payload grammar). A deterministic Rng mutates, splices and
// truncates known-good bytes; every loader must hand back a Status (ok or
// not), never crash, never hang and never return half-validated data.
// tools/check.sh runs this binary under ASan/UBSan as well.

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/env.h"
#include "common/rng.h"
#include "core/checkpoint.h"
#include "core/model_io.h"
#include "data/csv_io.h"
#include "dist/wire.h"
#include "serve/frontend.h"
#include "serve/request.h"
#include "stream/delta_buffer.h"

namespace tcss {
namespace {

// --- Known-good corpora -----------------------------------------------

const char kGoodPois[] =
    "poi_id,lat,lon,category\n"
    "0,40.5,-74.1,2\n"
    "1,40.6,-74.2,0\n"
    "2,-33.9,151.2,3\n"
    "3,48.8,2.35,1\n";

const char kGoodCheckins[] =
    "user_id,poi_id,unix_seconds\n"
    "0,0,1300000000\n"
    "0,2,1300100000\n"
    "1,1,1300200000\n"
    "2,3,1300300000\n"
    "2,0,1300400000\n";

const char kGoodFriends[] =
    "user_id,friend_id\n"
    "0,1\n"
    "1,2\n";

FactorModel SmallModel() {
  FactorModel m;
  m.u1 = Matrix(3, 2);
  m.u2 = Matrix(4, 2);
  m.u3 = Matrix(5, 2);
  for (size_t i = 0; i < m.u1.rows(); ++i)
    for (size_t t = 0; t < 2; ++t) m.u1(i, t) = 0.1 * double(i) + 0.01;
  for (size_t j = 0; j < m.u2.rows(); ++j)
    for (size_t t = 0; t < 2; ++t) m.u2(j, t) = 0.2 * double(j) - 0.5;
  for (size_t k = 0; k < m.u3.rows(); ++k)
    for (size_t t = 0; t < 2; ++t) m.u3(k, t) = 0.05 * double(k + t);
  m.h = {1.25, -0.75};
  return m;
}

// Serialized TCSSv2 bytes (with CRC footer) for SmallModel().
std::string GoodModelBytes() {
  const std::string path = ::testing::TempDir() + "/fuzz_good_model.txt";
  EXPECT_TRUE(SaveFactorModel(SmallModel(), path).ok());
  auto bytes = Env::Default()->ReadFileToString(path);
  EXPECT_TRUE(bytes.ok());
  return bytes.ok() ? bytes.value() : std::string();
}

std::string GoodCheckpointBytes() {
  TrainerCheckpoint ckpt;
  ckpt.model = SmallModel();
  ckpt.adam_m = FactorGrads(ckpt.model);
  ckpt.adam_v = FactorGrads(ckpt.model);
  ckpt.adam_m.Zero();
  ckpt.adam_v.Zero();
  ckpt.adam_t = 42;
  ckpt.epoch = 7;
  ckpt.hausdorff_rotation = 3;
  ckpt.lr_scale = 0.5;
  return SerializeCheckpoint(ckpt);
}

// --- Mutation engine ---------------------------------------------------

// Applies 1-4 random byte-level mutations: flip, insert, delete, truncate,
// chunk duplication, or a splice of random bytes. Deterministic in `rng`.
std::string Mutate(const std::string& good, Rng* rng) {
  std::string s = good;
  const int n_mutations = 1 + int(rng->UniformInt(4));
  for (int m = 0; m < n_mutations && !s.empty(); ++m) {
    switch (rng->UniformInt(6)) {
      case 0: {  // flip one byte to an arbitrary value
        s[rng->UniformInt(s.size())] = char(rng->UniformInt(256));
        break;
      }
      case 1: {  // insert a random byte
        s.insert(s.begin() + long(rng->UniformInt(s.size() + 1)),
                 char(rng->UniformInt(256)));
        break;
      }
      case 2: {  // delete one byte
        s.erase(s.begin() + long(rng->UniformInt(s.size())));
        break;
      }
      case 3: {  // truncate (torn write)
        s.resize(rng->UniformInt(s.size() + 1));
        break;
      }
      case 4: {  // duplicate a chunk somewhere else
        const size_t from = rng->UniformInt(s.size());
        const size_t len = 1 + rng->UniformInt(std::min<size_t>(64, s.size() - from));
        const std::string chunk = s.substr(from, len);
        s.insert(rng->UniformInt(s.size() + 1), chunk);
        break;
      }
      default: {  // splice random bytes over a region
        const size_t at = rng->UniformInt(s.size());
        const size_t len =
            std::min<size_t>(1 + rng->UniformInt(16), s.size() - at);
        for (size_t i = 0; i < len; ++i)
          s[at + i] = char(rng->UniformInt(256));
        break;
      }
    }
  }
  return s;
}

// --- CSV loader fuzz ---------------------------------------------------

class CsvFuzz : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/tcss_fuzz_csv";
    ASSERT_TRUE(Env::Default()->CreateDirs(dir_).ok());
  }

  void WriteDataset(const std::string& pois, const std::string& checkins,
                    const std::string& friends) {
    Env* env = Env::Default();
    ASSERT_TRUE(AtomicWriteFile(env, dir_ + "/pois.csv", pois).ok());
    ASSERT_TRUE(AtomicWriteFile(env, dir_ + "/checkins.csv", checkins).ok());
    ASSERT_TRUE(AtomicWriteFile(env, dir_ + "/friends.csv", friends).ok());
    // A stale quarantine file from a previous iteration must not leak
    // into this one's report.
    (void)env->DeleteFile(dir_ + "/quarantine.csv");
  }

  // Loads in both modes; the only contract is "returns, with a Status".
  void LoadBothModes() {
    auto strict = LoadDatasetCsv(dir_);
    (void)strict.ok();
    CsvLoadOptions lenient;
    lenient.mode = CsvLoadMode::kLenient;
    lenient.max_bad_rows = 1000;
    LoadReport report;
    auto loose = LoadDatasetCsv(dir_, lenient, &report);
    if (loose.ok()) {
      // Whatever survived must be internally consistent: every check-in
      // refers to a loaded POI and a real user.
      const Dataset& d = loose.value();
      for (const auto& e : d.checkins()) {
        ASSERT_LT(e.poi, d.num_pois());
        ASSERT_LT(e.user, d.num_users());
      }
    }
  }

  std::string dir_;
};

TEST_F(CsvFuzz, MutatedCsvFilesNeverCrashLoaders) {
  Rng rng(0xc0ffee);
  const std::string good[3] = {kGoodPois, kGoodCheckins, kGoodFriends};
  for (int iter = 0; iter < 150; ++iter) {
    std::string files[3] = {good[0], good[1], good[2]};
    // Mutate one, sometimes two of the files.
    files[rng.UniformInt(3)] = Mutate(files[rng.UniformInt(3)], &rng);
    if (rng.Bernoulli(0.3))
      files[rng.UniformInt(3)] = Mutate(files[rng.UniformInt(3)], &rng);
    WriteDataset(files[0], files[1], files[2]);
    LoadBothModes();
  }
}

TEST_F(CsvFuzz, TruncatedCsvFilesNeverCrashLoaders) {
  const std::string good[3] = {kGoodPois, kGoodCheckins, kGoodFriends};
  for (int which = 0; which < 3; ++which) {
    for (size_t n = 0; n <= good[which].size(); ++n) {
      std::string files[3] = {good[0], good[1], good[2]};
      files[which] = good[which].substr(0, n);
      WriteDataset(files[0], files[1], files[2]);
      LoadBothModes();
    }
  }
}

// --- Model / checkpoint parser fuzz ------------------------------------

TEST(ModelFuzz, MutatedModelBytesNeverCrashParser) {
  const std::string good = GoodModelBytes();
  ASSERT_FALSE(good.empty());
  ASSERT_TRUE(ParseFactorModelBytes(good).ok());
  Rng rng(0xfacade);
  for (int iter = 0; iter < 400; ++iter) {
    const std::string bad = Mutate(good, &rng);
    auto r = ParseFactorModelBytes(bad);
    if (r.ok()) {
      // Astronomically unlikely (the CRC footer must still match), but if
      // it parses it must be a structurally sound model.
      EXPECT_GT(r.value().rank(), 0u);
    }
  }
}

// True when the bytes lost by cutting `good` at `n` are pure whitespace:
// such a prefix is semantically the complete file and may legally parse.
bool TailIsWhitespace(const std::string& good, size_t n) {
  return good.find_last_not_of(" \t\r\n") < n;
}

TEST(ModelFuzz, EveryModelPrefixIsRejected) {
  const std::string good = GoodModelBytes();
  ASSERT_FALSE(good.empty());
  for (size_t n = 0; n < good.size(); ++n) {
    if (TailIsWhitespace(good, n)) continue;
    auto r = ParseFactorModelBytes(good.substr(0, n));
    EXPECT_FALSE(r.ok()) << "prefix of length " << n << " parsed";
  }
}

TEST(CheckpointFuzz, MutatedCheckpointBytesNeverCrashParser) {
  const std::string good = GoodCheckpointBytes();
  ASSERT_TRUE(ParseCheckpoint(good).ok());
  Rng rng(0xdecade);
  for (int iter = 0; iter < 400; ++iter) {
    const std::string bad = Mutate(good, &rng);
    auto r = ParseCheckpoint(bad);
    if (r.ok()) {
      EXPECT_GT(r.value().model.rank(), 0u);
    }
  }
}

TEST(CheckpointFuzz, EveryCheckpointPrefixIsRejected) {
  const std::string good = GoodCheckpointBytes();
  for (size_t n = 0; n < good.size(); ++n) {
    if (TailIsWhitespace(good, n)) continue;
    auto r = ParseCheckpoint(good.substr(0, n));
    EXPECT_FALSE(r.ok()) << "prefix of length " << n << " parsed";
  }
}

// --- Serving wire-format fuzz -------------------------------------------
//
// The frame decoder fronts a network socket, the least trusted input in
// the codebase. Contract under corruption: DecodeFrame returns exactly one
// of {frame, need-more-bytes, malformed} — it never crashes, never
// allocates from a corrupt length field, and never hands back a frame
// whose bytes differ from what was sent (CRC over id||payload).

Frame GoodWireFrame() {
  return Frame{0x0123456789abcdefULL, "topk 3 7 k=25 deadline_ms=4.5"};
}

TEST(WireFuzz, MutatedFramesNeverCrashDecoderOrForgeContent) {
  const Frame good = GoodWireFrame();
  const std::string bytes = EncodeRequestFrame(good);
  Rng rng(0x31f3);
  for (int iter = 0; iter < 400; ++iter) {
    const std::string bad = Mutate(bytes, &rng);
    Frame out;
    size_t consumed = 0;
    auto r = DecodeFrame(kRequestMagic, bad, &out, &consumed);
    if (r.ok() && r.value()) {
      // A decoded frame must be byte-identical to a frame that was
      // actually encoded: a mutation either leaves an intact frame at the
      // front (insert/delete past the end) or the CRC catches it.
      EXPECT_EQ(out.id, good.id);
      EXPECT_EQ(out.payload, good.payload);
      EXPECT_EQ(consumed, bytes.size());
    }
  }
}

// Deterministic single-byte-flip sweep: every xor of every byte must be
// detected (wrong magic, bad length, or CRC mismatch) — or, when it
// changes nothing semantically, decode to the identical frame. CRC-32
// guarantees detection of any single flipped byte within its span.
TEST(WireFuzz, EveryByteFlipIsDetected) {
  const Frame good = GoodWireFrame();
  const std::string bytes = EncodeRequestFrame(good);
  for (size_t pos = 0; pos < bytes.size(); ++pos) {
    for (unsigned char mask : {0x01, 0x80, 0xff}) {
      std::string bad = bytes;
      bad[pos] = static_cast<char>(bad[pos] ^ mask);
      Frame out;
      size_t consumed = 0;
      auto r = DecodeFrame(kRequestMagic, bad, &out, &consumed);
      EXPECT_FALSE(r.ok() && r.value())
          << "flip at " << pos << " mask " << int(mask)
          << " forged a frame";
    }
  }
}

// The geo-fenced request grammar over the wire: a valid within_km frame
// round-trips bit-exactly into a parsed fence, and the flip/truncate
// sweeps over that frame never forge one — a corrupted fence is rejected
// at the frame layer (CRC) or the parse layer, never served.
TEST(WireFuzz, GeoFencedFramesRoundTripAndCorruptionsNeverForge) {
  const Frame good{0xfeedULL, "topk 3 7 k=5 within_km=12.5,40.75,-74.0"};
  const std::string bytes = EncodeRequestFrame(good);

  Frame out;
  size_t consumed = 0;
  auto r = DecodeFrame(kRequestMagic, bytes, &out, &consumed);
  ASSERT_TRUE(r.ok() && r.value());
  ASSERT_EQ(consumed, bytes.size());
  auto req = ParseRequestLine(out.payload);
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  EXPECT_DOUBLE_EQ(req.value().within_km, 12.5);
  EXPECT_DOUBLE_EQ(req.value().center.lat, 40.75);
  EXPECT_DOUBLE_EQ(req.value().center.lon, -74.0);

  // Single-byte flips: either the CRC rejects the frame, or (flips that
  // cancel out to the identical bytes aside) whatever decodes must parse
  // to the original fence — a *different* fence must never come through.
  for (size_t pos = 0; pos < bytes.size(); ++pos) {
    for (unsigned char mask : {0x01, 0x10, 0xff}) {
      std::string bad = bytes;
      bad[pos] = static_cast<char>(bad[pos] ^ mask);
      Frame decoded;
      size_t used = 0;
      auto res = DecodeFrame(kRequestMagic, bad, &decoded, &used);
      if (res.ok() && res.value()) {
        EXPECT_EQ(decoded.payload, good.payload)
            << "flip at " << pos << " forged a fence";
      }
    }
  }
  // Truncations: never a decodable frame, so never a half-parsed fence.
  for (size_t n = 0; n < bytes.size(); ++n) {
    Frame decoded;
    size_t used = 0;
    auto res = DecodeFrame(kRequestMagic, bytes.substr(0, n), &decoded,
                           &used);
    EXPECT_FALSE(res.ok() && res.value()) << "prefix " << n << " decoded";
  }
  // A frame that survives CRC but carries a mangled fence string dies at
  // the parser, not in the service.
  for (const char* payload :
       {"topk 3 7 within_km=12.5,40.75", "topk 3 7 within_km=12.5,95.0,0",
        "topk 3 7 within_km=-1,0,0", "topk 3 7 within_km=nan,0,0"}) {
    const std::string enc = EncodeRequestFrame(Frame{1, payload});
    Frame decoded;
    size_t used = 0;
    auto res = DecodeFrame(kRequestMagic, enc, &decoded, &used);
    ASSERT_TRUE(res.ok() && res.value());
    EXPECT_FALSE(ParseRequestLine(decoded.payload).ok()) << payload;
  }
}

// The streaming ingest verb over the wire (DESIGN.md §14): an ingest
// frame mutates serving state, so it is the most attack-worthy payload in
// the protocol. Contract: a valid frame round-trips bit-exactly into a
// parsed kIngest request; every single-byte flip is rejected (CRC) or
// decodes to the identical bytes; no truncation decodes; and a frame that
// survives CRC with a mangled ingest grammar dies in ParseRequestLine —
// the DeltaBuffer behind the verb only ever sees exactly-as-sent events.
TEST(WireFuzz, IngestFramesNeverForgeCheckIns) {
  const Frame good{0xbeefULL, "ingest 2 3 1300400000"};
  const std::string bytes = EncodeRequestFrame(good);

  Frame out;
  size_t consumed = 0;
  auto r = DecodeFrame(kRequestMagic, bytes, &out, &consumed);
  ASSERT_TRUE(r.ok() && r.value());
  auto req = ParseRequestLine(out.payload);
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  EXPECT_EQ(req.value().verb, ServeVerb::kIngest);
  EXPECT_EQ(req.value().user, 2u);
  EXPECT_EQ(req.value().poi, 3u);
  EXPECT_EQ(req.value().timestamp, 1300400000);

  // Flip sweep: anything that decodes must be the original check-in.
  for (size_t pos = 0; pos < bytes.size(); ++pos) {
    for (unsigned char mask : {0x01, 0x10, 0xff}) {
      std::string bad = bytes;
      bad[pos] = static_cast<char>(bad[pos] ^ mask);
      Frame decoded;
      size_t used = 0;
      auto res = DecodeFrame(kRequestMagic, bad, &decoded, &used);
      if (res.ok() && res.value()) {
        EXPECT_EQ(decoded.payload, good.payload)
            << "flip at " << pos << " forged a check-in";
      }
    }
  }
  // Truncation sweep: a torn ingest frame never decodes.
  for (size_t n = 0; n < bytes.size(); ++n) {
    Frame decoded;
    size_t used = 0;
    auto res =
        DecodeFrame(kRequestMagic, bytes.substr(0, n), &decoded, &used);
    EXPECT_FALSE(res.ok() && res.value()) << "prefix " << n << " decoded";
  }
  // CRC-clean frames with a mangled grammar: rejected at the parse layer
  // (exact integer parses, calendar bounds, no trailing junk) — these
  // never reach the engine at all.
  for (const char* payload :
       {"ingest", "ingest 2", "ingest 2 3", "ingest 2 3 1.5e9",
        "ingest -1 3 1300400000", "ingest 2 3 1300400000 extra",
        "ingest 2 3 99999999999999999999", "ingest 2 3 253402300800",
        "ingest 2 3 -62135596801", "ingest x 3 1300400000",
        "ingest 2 3 0x4dcd8500"}) {
    const std::string enc = EncodeRequestFrame(Frame{1, payload});
    Frame decoded;
    size_t used = 0;
    auto res = DecodeFrame(kRequestMagic, enc, &decoded, &used);
    ASSERT_TRUE(res.ok() && res.value());
    EXPECT_FALSE(ParseRequestLine(decoded.payload).ok()) << payload;
  }
}

// End-to-end mutation sweep into the delta buffer: run the full untrusted
// pipeline (decode -> parse -> validate -> append) over hundreds of
// mutated ingest frames. Every event that lands in the buffer must be
// byte-identical to the one that was sent — corruption is swallowed by
// one of the three layers, never stored.
TEST(WireFuzz, MutatedIngestFramesNeverReachTheDeltaBuffer) {
  const Frame good{0x5151ULL, "ingest 2 3 1300400000"};
  const std::string bytes = EncodeRequestFrame(good);
  DeltaBuffer delta(4, 5);  // user 2 / poi 3 are in range
  uint64_t intact_deliveries = 0;
  Rng rng(0xd317a);
  for (int iter = 0; iter < 600; ++iter) {
    const std::string bad = Mutate(bytes, &rng);
    Frame decoded;
    size_t used = 0;
    auto res = DecodeFrame(kRequestMagic, bad, &decoded, &used);
    if (!res.ok() || !res.value()) continue;  // frame layer caught it
    auto parsed = ParseRequestLine(decoded.payload);
    if (!parsed.ok() || parsed.value().verb != ServeVerb::kIngest) {
      continue;  // parse layer caught it
    }
    const ServeRequest& q = parsed.value();
    if (delta.Append(q.user, q.poi, q.timestamp).ok()) {
      // Stored: must be exactly the check-in that was sent.
      EXPECT_EQ(q.user, 2u);
      EXPECT_EQ(q.poi, 3u);
      EXPECT_EQ(q.timestamp, 1300400000);
      ++intact_deliveries;
    }
  }
  // Every stored event is the original one.
  for (const CheckInEvent& e : delta.Snapshot()) {
    EXPECT_EQ(e.user, 2u);
    EXPECT_EQ(e.poi, 3u);
    EXPECT_EQ(e.timestamp, 1300400000);
  }
  EXPECT_EQ(delta.accepted(), intact_deliveries);
  // Some mutations must leave the frame intact (insert/delete past the
  // end), or the sweep is not exercising the accept path at all.
  EXPECT_GT(intact_deliveries, 0u);
}

// Truncation sweep (torn frame at every byte): a prefix is either "need
// more bytes" (consistent so far) or malformed — never a whole frame.
TEST(WireFuzz, EveryTruncatedFrameNeedsMoreOrRejects) {
  const std::string bytes = EncodeRequestFrame(GoodWireFrame());
  for (size_t n = 0; n < bytes.size(); ++n) {
    Frame out;
    size_t consumed = 0;
    auto r = DecodeFrame(kRequestMagic, bytes.substr(0, n), &out, &consumed);
    if (r.ok()) {
      EXPECT_FALSE(r.value()) << "prefix of length " << n << " decoded";
    }
  }
  // And with garbage appended after the cut, the decoder still never
  // yields a frame (the CRC spans the whole payload).
  for (size_t n = kFrameHeaderSize; n < bytes.size(); ++n) {
    Frame out;
    size_t consumed = 0;
    const std::string torn =
        bytes.substr(0, n) + std::string(bytes.size() - n, '\xee');
    auto r = DecodeFrame(kRequestMagic, torn, &out, &consumed);
    EXPECT_FALSE(r.ok() && r.value())
        << "torn-at-" << n << " frame decoded";
  }
}

// A hostile length field must be rejected before any allocation.
TEST(WireFuzz, AbsurdLengthFieldRejectedWithoutAllocation) {
  std::string bytes = EncodeRequestFrame(GoodWireFrame());
  for (uint32_t hostile : {(uint32_t{1} << 20) + 1, uint32_t{1} << 24,
                           uint32_t{0xffffffff}}) {
    for (int b = 0; b < 4; ++b) {
      bytes[12 + b] = static_cast<char>(hostile >> (8 * b));
    }
    Frame out;
    size_t consumed = 0;
    auto r = DecodeFrame(kRequestMagic, bytes, &out, &consumed);
    EXPECT_FALSE(r.ok()) << "length " << hostile << " accepted";
  }
}

// When the 16-byte header is intact and only the length/payload/CRC is
// bad, the decoder must surface the header's id so the server's error
// response can echo it — a pipelined client correlates the failure with
// the request that caused it instead of seeing id=0.
TEST(WireFuzz, BadCrcAndBadLengthSurfaceHeaderId) {
  const Frame good = GoodWireFrame();
  const std::string bytes = EncodeRequestFrame(good);
  {
    std::string bad = bytes;
    bad.back() = static_cast<char>(bad.back() ^ 0x5a);  // corrupt the CRC
    Frame out;
    size_t consumed = 0;
    auto r = DecodeFrame(kRequestMagic, bad, &out, &consumed);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(out.id, good.id);
  }
  {
    std::string bad = bytes;
    const uint32_t hostile = (uint32_t{1} << 20) + 1;
    for (int b = 0; b < 4; ++b) {
      bad[12 + b] = static_cast<char>(hostile >> (8 * b));
    }
    Frame out;
    size_t consumed = 0;
    auto r = DecodeFrame(kRequestMagic, bad, &out, &consumed);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(out.id, good.id);
  }
}

// The server must never emit a response frame its own protocol rejects:
// worst-case recs (maximum k, widest numeric text) still encode to a
// payload within kMaxFramePayload by truncating the lowest-ranked tail,
// and the result round-trips through the client-side decoder and parser.
TEST(WireFuzz, OversizedOkResponseTruncatesToFitFrameCap) {
  WireResponse resp;
  resp.kind = WireResponse::Kind::kOk;
  resp.tier = ServeTier::kModel;
  resp.latency_ms = 1.0;
  resp.recs.reserve(kMaxRequestK);
  for (size_t i = 0; i < kMaxRequestK; ++i) {
    resp.recs.push_back({static_cast<uint32_t>(4000000000u - i),
                         -1.2345678901234567e-308});
  }
  const std::string payload = EncodeResponsePayload(resp);
  EXPECT_LE(payload.size(), kMaxFramePayload);
  const std::string frame = EncodeResponseFrame({7, payload});
  Frame out;
  size_t consumed = 0;
  auto r = DecodeFrame(kResponseMagic, frame, &out, &consumed);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.value());
  EXPECT_EQ(consumed, frame.size());
  auto parsed = ParseResponsePayload(out.payload);
  ASSERT_TRUE(parsed.ok());
  // Truncation keeps a non-empty ranked prefix.
  ASSERT_GT(parsed.value().recs.size(), 0u);
  EXPECT_LT(parsed.value().recs.size(), resp.recs.size());
  EXPECT_EQ(parsed.value().recs[0].poi, resp.recs[0].poi);
}

TEST(WireFuzz, MutatedResponsePayloadsNeverCrashParser) {
  WireResponse resp;
  resp.kind = WireResponse::Kind::kOk;
  resp.tier = ServeTier::kModel;
  resp.latency_ms = 1.25;
  resp.recs = {{4, 2.5}, {1, 1.75}, {0, 0.5}};
  const std::string good = EncodeResponsePayload(resp);
  auto round = ParseResponsePayload(good);
  ASSERT_TRUE(round.ok());
  ASSERT_EQ(round.value().recs.size(), 3u);
  Rng rng(0xf4a3);
  for (int iter = 0; iter < 400; ++iter) {
    const std::string bad = Mutate(good, &rng);
    auto r = ParseResponsePayload(bad);
    if (r.ok()) {
      // If it still parses, it must be structurally sound and bounded.
      EXPECT_LE(r.value().recs.size(), kMaxRequestK);
    }
  }
}

// --- distributed-training wire messages (src/dist/wire.h) ---------------
//
// The coordinator/worker protocol travels over the same CRC32 frame codec
// swept above, so a corrupted *frame* is already covered; these sweeps
// attack the layer underneath — the strict binary payload parser — with
// one representative message per DistMsgType.

std::vector<DistMsg> DistCorpus() {
  std::vector<DistMsg> corpus;
  {
    DistMsg m;
    m.type = DistMsgType::kHello;
    m.gen = 2;
    m.rank = 3;
    m.num_workers = 4;
    m.fingerprint = 0x0123456789abcdefull;
    m.ckpt_epochs = {10, 20, 30};
    corpus.push_back(m);
  }
  {
    DistMsg m;
    m.type = DistMsgType::kStart;
    m.gen = 2;
    m.epoch = 20;
    corpus.push_back(m);
  }
  {
    DistMsg m;
    m.type = DistMsgType::kGrad;
    m.gen = 2;
    m.epoch = 21;
    m.loss = 3.5;
    m.grad_maxabs = 0.125;
    m.lr_scale = 0.5;
    m.u2 = {1.0, 2.0};
    m.u3 = {-1.0};
    m.h = {0.25, -0.25};
    m.u3_replica = {7.0};
    corpus.push_back(m);
  }
  {
    DistMsg m;
    m.type = DistMsgType::kReduced;
    m.gen = 2;
    m.epoch = 21;
    m.action = kActionStep;
    m.flags = kFlagCheckpoint;
    m.lr = 0.05;
    m.lr_scale = 0.5;
    m.u2 = {0.5};
    m.u3 = {1.5};
    m.h = {2.5};
    corpus.push_back(m);
  }
  {
    DistMsg m;
    m.type = DistMsgType::kHeartbeat;
    m.gen = 2;
    corpus.push_back(m);
  }
  {
    DistMsg m;
    m.type = DistMsgType::kCkptAck;
    m.gen = 2;
    m.epoch = 20;
    corpus.push_back(m);
  }
  {
    DistMsg m;
    m.type = DistMsgType::kFinal;
    m.gen = 2;
    m.epoch = 40;
    m.u1 = {1.0, 2.0, 3.0, 4.0};
    m.u2 = {5.0};
    m.u3 = {6.0};
    m.h = {7.0};
    corpus.push_back(m);
  }
  {
    DistMsg m;
    m.type = DistMsgType::kShutdown;
    m.gen = 2;
    corpus.push_back(m);
  }
  {
    DistMsg m;
    m.type = DistMsgType::kReport;
    m.gen = 3;
    corpus.push_back(m);
  }
  {
    DistMsg m;
    m.type = DistMsgType::kAbort;
    m.gen = 3;
    m.text = "diverged past the retry budget";
    corpus.push_back(m);
  }
  return corpus;
}

// The payload encoding is canonical (fixed-width little-endian fields,
// length-prefixed arrays, trailing bytes rejected), so parse followed by
// re-encode must reproduce the input byte-for-byte. Any accepted mutation
// therefore IS a well-formed message — nothing half-parsed can leak into
// the training state machine.
TEST(DistWireFuzz, EveryByteFlipIsRejectedOrParsesCanonically) {
  for (const DistMsg& m : DistCorpus()) {
    const std::string good = EncodeDistMsg(m);
    for (size_t pos = 0; pos < good.size(); ++pos) {
      for (unsigned char mask : {0x01, 0x80, 0xff}) {
        std::string bad = good;
        bad[pos] = static_cast<char>(bad[pos] ^ mask);
        auto r = ParseDistMsg(bad);
        if (r.ok()) {
          EXPECT_EQ(EncodeDistMsg(r.value()), bad)
              << DistMsgTypeName(m.type) << " flip at " << pos << " mask "
              << int(mask) << " parsed non-canonically";
        }
      }
    }
  }
}

TEST(DistWireFuzz, EveryTruncationIsRejected) {
  for (const DistMsg& m : DistCorpus()) {
    const std::string good = EncodeDistMsg(m);
    for (size_t n = 0; n < good.size(); ++n) {
      EXPECT_FALSE(ParseDistMsg(std::string_view(good.data(), n)).ok())
          << DistMsgTypeName(m.type) << " prefix " << n << " parsed";
    }
    EXPECT_FALSE(ParseDistMsg(good + '\0').ok())
        << DistMsgTypeName(m.type) << " accepted a trailing byte";
  }
}

TEST(DistWireFuzz, MutatedPayloadsNeverCrashStrictParse) {
  Rng rng(0xd157);
  for (const DistMsg& m : DistCorpus()) {
    const std::string good = EncodeDistMsg(m);
    ASSERT_TRUE(ParseDistMsg(good).ok()) << DistMsgTypeName(m.type);
    for (int iter = 0; iter < 200; ++iter) {
      const std::string bad = Mutate(good, &rng);
      auto r = ParseDistMsg(bad);
      if (r.ok()) {
        // Canonicality again: accepted bytes are a real message.
        EXPECT_EQ(EncodeDistMsg(r.value()), bad);
      }
    }
  }
}

// Hostile array counts (the gradient/final messages carry
// length-prefixed double arrays) must be rejected before any allocation:
// the parser checks the count against the bytes actually present.
TEST(DistWireFuzz, AbsurdArrayCountsRejectedWithoutAllocation) {
  DistMsg grad;
  grad.type = DistMsgType::kGrad;
  grad.u2 = {1.0};
  const std::string good = EncodeDistMsg(grad);
  // Sweep a hostile 0xffffffff over every aligned u32 position; at least
  // the array-count fields are hit, and nothing may crash or allocate.
  for (size_t pos = 0; pos + 4 <= good.size(); ++pos) {
    std::string bad = good;
    bad[pos] = '\xff';
    bad[pos + 1] = '\xff';
    bad[pos + 2] = '\xff';
    bad[pos + 3] = '\xff';
    auto r = ParseDistMsg(bad);
    if (r.ok()) {
      EXPECT_EQ(EncodeDistMsg(r.value()), bad);
    }
  }
}

// End-to-end: a dist message inside its CRC32 frame. Every single-byte
// flip of the full on-wire bytes must be caught by the frame layer (magic
// mismatch, hostile length, or CRC) — the strict payload parser is the
// second line of defense, not the first.
TEST(DistWireFuzz, FramedMessageByteFlipsNeverForgeAFrame) {
  DistMsg m = DistCorpus()[2];  // kGrad, the richest payload
  Frame f;
  f.id = 7;
  f.payload = EncodeDistMsg(m);
  const std::string wire = EncodeFrame(kDistMagic, f);
  for (size_t pos = 0; pos < wire.size(); ++pos) {
    std::string bad = wire;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x10);
    Frame out;
    size_t consumed = 0;
    auto r = DecodeFrame(kDistMagic, bad, &out, &consumed);
    EXPECT_FALSE(r.ok() && r.value())
        << "flip at " << pos << " forged a framed dist message";
  }
}

}  // namespace
}  // namespace tcss
