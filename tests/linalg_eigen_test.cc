#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "linalg/jacobi_eigen.h"
#include "linalg/qr.h"
#include "linalg/subspace_iteration.h"

namespace tcss {
namespace {

Matrix RandomSymmetric(size_t n, Rng* rng) {
  Matrix a = Matrix::GaussianRandom(n, n, rng);
  Matrix s(n, n);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < n; ++j) s(i, j) = 0.5 * (a(i, j) + a(j, i));
  return s;
}

// ||A v - lambda v|| for each eigenpair.
double MaxResidual(const Matrix& a, const std::vector<double>& values,
                   const Matrix& vectors) {
  double worst = 0.0;
  for (size_t t = 0; t < values.size(); ++t) {
    std::vector<double> v = vectors.Column(t);
    std::vector<double> av = MatVec(a, v);
    double res = 0.0;
    for (size_t i = 0; i < v.size(); ++i) {
      double d = av[i] - values[t] * v[i];
      res += d * d;
    }
    worst = std::max(worst, std::sqrt(res));
  }
  return worst;
}

TEST(JacobiEigenTest, DiagonalMatrix) {
  Matrix a = Matrix::FromRows({{3, 0, 0}, {0, 1, 0}, {0, 0, 2}});
  auto r = JacobiEigen(a);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value().values[0], 3, 1e-12);
  EXPECT_NEAR(r.value().values[1], 2, 1e-12);
  EXPECT_NEAR(r.value().values[2], 1, 1e-12);
}

TEST(JacobiEigenTest, Known2x2) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  Matrix a = Matrix::FromRows({{2, 1}, {1, 2}});
  auto r = JacobiEigen(a);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value().values[0], 3, 1e-12);
  EXPECT_NEAR(r.value().values[1], 1, 1e-12);
}

TEST(JacobiEigenTest, RejectsNonSquare) {
  Matrix a(2, 3);
  EXPECT_FALSE(JacobiEigen(a).ok());
}

TEST(JacobiEigenTest, EigenvectorsAreOrthonormal) {
  Rng rng(5);
  Matrix a = RandomSymmetric(12, &rng);
  auto r = JacobiEigen(a);
  ASSERT_TRUE(r.ok());
  Matrix g = Gram(r.value().vectors);
  EXPECT_LT(MaxAbsDiff(g, Matrix::Identity(12)), 1e-10);
}

class JacobiPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(JacobiPropertyTest, ResidualAndTraceAndOrder) {
  Rng rng(100 + GetParam());
  const size_t n = 2 + rng.UniformInt(20);
  Matrix a = RandomSymmetric(n, &rng);
  auto r = JacobiEigen(a);
  ASSERT_TRUE(r.ok());
  const auto& dec = r.value();
  EXPECT_LT(MaxResidual(a, dec.values, dec.vectors), 1e-9);
  // Eigenvalues sum to the trace.
  double trace = 0.0, sum = 0.0;
  for (size_t i = 0; i < n; ++i) trace += a(i, i);
  for (double v : dec.values) sum += v;
  EXPECT_NEAR(sum, trace, 1e-9 * std::max(1.0, std::fabs(trace)));
  // Non-increasing order.
  for (size_t t = 1; t < n; ++t) EXPECT_GE(dec.values[t - 1], dec.values[t]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JacobiPropertyTest, ::testing::Range(0, 10));

TEST(QrTest, OrthonormalizeProducesOrthonormalColumns) {
  Rng rng(7);
  Matrix a = Matrix::GaussianRandom(20, 6, &rng);
  ASSERT_TRUE(Orthonormalize(&a, &rng).ok());
  EXPECT_LT(MaxAbsDiff(Gram(a), Matrix::Identity(6)), 1e-10);
}

TEST(QrTest, OrthonormalizeRecoversFromRankDeficiency) {
  Rng rng(8);
  Matrix a = Matrix::GaussianRandom(10, 4, &rng);
  // Make column 3 a copy of column 0.
  for (size_t i = 0; i < 10; ++i) a(i, 3) = a(i, 0);
  ASSERT_TRUE(Orthonormalize(&a, &rng).ok());
  EXPECT_LT(MaxAbsDiff(Gram(a), Matrix::Identity(4)), 1e-10);
}

TEST(QrTest, OrthonormalizeFailsWithoutRngOnDeficiency) {
  Matrix a(5, 2);
  for (size_t i = 0; i < 5; ++i) a(i, 0) = a(i, 1) = 1.0;
  EXPECT_FALSE(Orthonormalize(&a, nullptr).ok());
}

TEST(QrTest, ThinQrReconstructs) {
  Rng rng(9);
  Matrix a = Matrix::GaussianRandom(12, 5, &rng);
  Matrix q, r;
  ASSERT_TRUE(ThinQr(a, &q, &r).ok());
  EXPECT_LT(MaxAbsDiff(MatMul(q, r), a), 1e-10);
  EXPECT_LT(MaxAbsDiff(Gram(q), Matrix::Identity(5)), 1e-10);
  // R upper triangular with positive diagonal.
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_GT(r(i, i), 0.0);
    for (size_t j = 0; j < i; ++j) EXPECT_DOUBLE_EQ(r(i, j), 0.0);
  }
}

TEST(QrTest, RejectsWideMatrix) {
  Matrix a(2, 5), q, r;
  EXPECT_FALSE(ThinQr(a, &q, &r).ok());
}

TEST(SubspaceIterationTest, MatchesJacobiOnPsdMatrix) {
  Rng rng(10);
  // PSD matrix B B^T.
  Matrix b = Matrix::GaussianRandom(30, 30, &rng);
  Matrix a = MatMulT(b, b);
  DenseOperator op(&a);
  auto sub = SubspaceEigen(op, 5);
  ASSERT_TRUE(sub.ok());
  auto full = JacobiEigen(a);
  ASSERT_TRUE(full.ok());
  for (size_t t = 0; t < 5; ++t) {
    EXPECT_NEAR(sub.value().values[t], full.value().values[t],
                1e-6 * full.value().values[0]);
  }
  // Eigenvector directions match up to sign (assuming distinct values).
  for (size_t t = 0; t < 5; ++t) {
    double dot = 0.0;
    for (size_t i = 0; i < 30; ++i) {
      dot += sub.value().vectors(i, t) * full.value().vectors(i, t);
    }
    EXPECT_NEAR(std::fabs(dot), 1.0, 1e-5);
  }
}

TEST(SubspaceIterationTest, RejectsBadRank) {
  Matrix a = Matrix::Identity(4);
  DenseOperator op(&a);
  EXPECT_FALSE(SubspaceEigen(op, 0).ok());
  EXPECT_FALSE(SubspaceEigen(op, 5).ok());
}

TEST(SubspaceIterationTest, FullRankEqualsDim) {
  Rng rng(11);
  Matrix b = Matrix::GaussianRandom(8, 8, &rng);
  Matrix a = MatMulT(b, b);
  DenseOperator op(&a);
  auto sub = SubspaceEigen(op, 8);
  ASSERT_TRUE(sub.ok());
  auto full = JacobiEigen(a);
  ASSERT_TRUE(full.ok());
  for (size_t t = 0; t < 8; ++t) {
    EXPECT_NEAR(sub.value().values[t], full.value().values[t], 1e-6);
  }
}

}  // namespace
}  // namespace tcss
