#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "linalg/cholesky.h"
#include "linalg/svd.h"

namespace tcss {
namespace {

Matrix LowRank(size_t m, size_t n, size_t r, Rng* rng) {
  return MatMul(Matrix::GaussianRandom(m, r, rng),
                Matrix::GaussianRandom(r, n, rng));
}

Matrix Reconstruct(const TruncatedSvd& d) {
  Matrix us = d.u;
  for (size_t i = 0; i < us.rows(); ++i)
    for (size_t t = 0; t < us.cols(); ++t) us(i, t) *= d.s[t];
  return MatMulT(us, d.v);
}

TEST(SvdTest, ExactlyRecoversLowRankMatrix) {
  Rng rng(1);
  Matrix a = LowRank(15, 9, 3, &rng);
  auto svd = ComputeTruncatedSvd(a, 3);
  ASSERT_TRUE(svd.ok());
  EXPECT_LT(MaxAbsDiff(Reconstruct(svd.value()), a), 1e-8);
}

TEST(SvdTest, SingularValuesOfKnownMatrix) {
  // diag(3, 2) as a 2x2: singular values 3 and 2.
  Matrix a = Matrix::FromRows({{3, 0}, {0, 2}});
  auto svd = ComputeTruncatedSvd(a, 2);
  ASSERT_TRUE(svd.ok());
  EXPECT_NEAR(svd.value().s[0], 3.0, 1e-10);
  EXPECT_NEAR(svd.value().s[1], 2.0, 1e-10);
}

TEST(SvdTest, FactorsAreOrthonormal) {
  Rng rng(2);
  Matrix a = Matrix::GaussianRandom(20, 12, &rng);
  auto svd = ComputeTruncatedSvd(a, 5);
  ASSERT_TRUE(svd.ok());
  EXPECT_LT(MaxAbsDiff(Gram(svd.value().u), Matrix::Identity(5)), 1e-8);
  EXPECT_LT(MaxAbsDiff(Gram(svd.value().v), Matrix::Identity(5)), 1e-8);
  // Singular values non-increasing and non-negative.
  for (size_t t = 0; t < 5; ++t) {
    EXPECT_GE(svd.value().s[t], 0.0);
    if (t > 0) {
      EXPECT_GE(svd.value().s[t - 1], svd.value().s[t]);
    }
  }
}

TEST(SvdTest, WideAndTallAgree) {
  Rng rng(3);
  Matrix a = LowRank(8, 25, 4, &rng);
  auto tall = ComputeTruncatedSvd(a.Transposed(), 4);
  auto wide = ComputeTruncatedSvd(a, 4);
  ASSERT_TRUE(tall.ok());
  ASSERT_TRUE(wide.ok());
  for (size_t t = 0; t < 4; ++t) {
    EXPECT_NEAR(tall.value().s[t], wide.value().s[t], 1e-7);
  }
}

TEST(SvdTest, RejectsBadRank) {
  Matrix a(4, 3);
  EXPECT_FALSE(ComputeTruncatedSvd(a, 0).ok());
  EXPECT_FALSE(ComputeTruncatedSvd(a, 4).ok());
}

TEST(SvdTest, BestRankOneApproximationError) {
  // For A = diag(3, 1), the best rank-1 approx leaves error exactly 1.
  Matrix a = Matrix::FromRows({{3, 0}, {0, 1}});
  auto svd = ComputeTruncatedSvd(a, 1);
  ASSERT_TRUE(svd.ok());
  Matrix approx = Reconstruct(svd.value());
  Matrix diff = a;
  diff.Add(approx, -1.0);
  EXPECT_NEAR(diff.FrobeniusNorm(), 1.0, 1e-8);
}

TEST(CholeskyTest, SolvesKnownSystem) {
  // A = [[4,2],[2,3]], b = [10, 8] -> x = [1.75, 1.5]
  Matrix a = Matrix::FromRows({{4, 2}, {2, 3}});
  auto x = CholeskySolve(a, {10, 8});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(x.value()[0], 1.75, 1e-12);
  EXPECT_NEAR(x.value()[1], 1.5, 1e-12);
}

TEST(CholeskyTest, SolveMultiMatchesSingle) {
  Rng rng(4);
  Matrix b = Matrix::GaussianRandom(6, 6, &rng);
  Matrix a = MatMulT(b, b);
  for (size_t i = 0; i < 6; ++i) a(i, i) += 1.0;  // well-conditioned SPD
  Matrix rhs = Matrix::GaussianRandom(6, 3, &rng);
  auto multi = CholeskySolveMulti(a, rhs);
  ASSERT_TRUE(multi.ok());
  for (size_t j = 0; j < 3; ++j) {
    auto single = CholeskySolve(a, rhs.Column(j));
    ASSERT_TRUE(single.ok());
    for (size_t i = 0; i < 6; ++i) {
      EXPECT_NEAR(multi.value()(i, j), single.value()[i], 1e-10);
    }
  }
}

TEST(CholeskyTest, ResidualIsSmall) {
  Rng rng(5);
  Matrix b = Matrix::GaussianRandom(10, 10, &rng);
  Matrix a = MatMulT(b, b);
  for (size_t i = 0; i < 10; ++i) a(i, i) += 0.5;
  std::vector<double> rhs(10, 1.0);
  auto x = CholeskySolve(a, rhs);
  ASSERT_TRUE(x.ok());
  auto ax = MatVec(a, x.value());
  for (size_t i = 0; i < 10; ++i) EXPECT_NEAR(ax[i], 1.0, 1e-8);
}

TEST(CholeskyTest, RidgeRescuesSingularMatrix) {
  // Rank-deficient A; the automatic ridge escalation should still solve.
  Matrix a = Matrix::FromRows({{1, 1}, {1, 1}});
  auto x = CholeskySolve(a, {2, 2}, 1e-8);
  EXPECT_TRUE(x.ok());
}

TEST(CholeskyTest, RejectsShapeMismatch) {
  Matrix a(3, 2);
  EXPECT_FALSE(CholeskySolve(a, {1, 2, 3}).ok());
}

}  // namespace
}  // namespace tcss
