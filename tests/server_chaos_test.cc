// Chaos harness for the serving front-end (src/serve/server.cc). The one
// invariant every scenario asserts: an accepted request (a well-formed
// request frame the server read) gets exactly one well-formed response —
// ok, degraded, error, or an explicit shed — and the server never
// crashes, leaks a connection, or deadlocks. Scenarios: overload storms
// against a tiny queue, torn/truncated/garbage frames, wire faults
// injected through FaultInjectionEnv, hot reloads mid-storm, graceful
// drain under load, and a deadline property at 1/2/8 workers. The soak
// scenario scales with TCSS_SERVER_SOAK (tools/check.sh sets 10000 for
// the TSan stage).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/env.h"
#include "common/fault_env.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "core/model_io.h"
#include "data/dataset.h"
#include "serve/frontend.h"
#include "serve/model_watcher.h"
#include "serve/recommend_service.h"
#include "serve/server.h"

namespace tcss {
namespace {

// --- fixtures (the serve_test.cc tiny world) ---------------------------

// 4 users, 5 POIs, monthly bins; user 3 is unseen by a 3-row model and
// serves from fold-in.
Dataset TinyDataset() {
  std::vector<Poi> pois(5);
  for (int j = 0; j < 5; ++j) {
    pois[j] = {{30.0 + j, -80.0 + j}, PoiCategory::kFood};
  }
  SocialGraph social(4);
  EXPECT_TRUE(social.AddEdge(0, 1).ok());
  EXPECT_TRUE(social.Finalize().ok());
  Dataset data(4, std::move(pois), std::move(social));
  const int64_t jan = 1577836800;
  const int64_t feb = 1580515200;
  EXPECT_TRUE(data.AddCheckIn(0, 0, jan).ok());
  EXPECT_TRUE(data.AddCheckIn(0, 1, feb).ok());
  EXPECT_TRUE(data.AddCheckIn(1, 2, jan).ok());
  EXPECT_TRUE(data.AddCheckIn(2, 3, jan).ok());
  EXPECT_TRUE(data.AddCheckIn(3, 1, jan).ok());
  EXPECT_TRUE(data.AddCheckIn(3, 4, feb).ok());
  return data;
}

FactorModel ConstantModel(size_t I, size_t J, size_t K, double level) {
  FactorModel m;
  const size_t r = 2;
  m.u1 = Matrix(I, r);
  m.u2 = Matrix(J, r);
  m.u3 = Matrix(K, r);
  m.u1.Fill(1.0);
  m.u2.Fill(1.0);
  m.u3.Fill(1.0);
  m.h.assign(r, level / static_cast<double>(r));
  return m;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// Everything a server scenario needs, torn down in order.
struct World {
  Dataset data;
  std::string model_path;
  std::string socket_path;
  std::unique_ptr<ModelWatcher> watcher;
  std::unique_ptr<RecommendService> service;
  std::unique_ptr<Server> server;

  Env* env() const { return server_env; }
  Env* server_env = nullptr;
};

// Builds a live world: saved constant model, watcher, Init()ed service,
// started server. `env` faults the wire when it is a FaultInjectionEnv.
std::unique_ptr<World> StartWorld(
    const std::string& tag, const ServerOptions& base_opts,
    Env* env = nullptr,
    const RecommendService::Options& svc_opts = RecommendService::Options()) {
  auto w = std::make_unique<World>();
  w->data = TinyDataset();
  w->model_path = TempPath(tag + ".model");
  w->socket_path = TempPath(tag + ".sock");
  w->server_env = env != nullptr ? env : Env::Default();
  EXPECT_TRUE(SaveFactorModel(ConstantModel(3, 5, 12, 1.0), w->model_path)
                  .ok());
  ModelWatcher::Options wopts;
  wopts.num_users = w->data.num_users();
  wopts.num_pois = w->data.num_pois();
  wopts.num_bins = 12;
  w->watcher = std::make_unique<ModelWatcher>(w->model_path, wopts);
  w->service = std::make_unique<RecommendService>(
      &w->data, TimeGranularity::kMonthOfYear, w->watcher.get(), svc_opts);
  EXPECT_TRUE(w->service->Init().ok());
  ServerOptions opts = base_opts;
  opts.env = w->server_env;
  w->server = std::make_unique<Server>(w->service.get(), w->socket_path,
                                       opts);
  EXPECT_TRUE(w->server->Start().ok());
  return w;
}

// --- a well-behaved pipelined client -----------------------------------

struct ClientOutcome {
  std::unordered_map<uint64_t, WireResponse> responses;
  size_t duplicates = 0;   ///< a second response for an already-seen id
  size_t malformed = 0;    ///< payload ParseResponsePayload rejected
  Status transport = Status::OK();  ///< first wire error, if any
};

// Sends `requests` pipelined (a writer loop) while a reader thread
// collects responses by id; stops once every id is answered, the server
// closes, or `deadline_s` passes (a watchdog thread trips the reader's
// stop flag — FrameReader::Next ticks forever on a silent connection
// otherwise). Requests and responses deliberately overlap in flight —
// that is the contract the id field exists for.
ClientOutcome RunClient(Env* env, const std::string& path,
                        const std::vector<Frame>& requests,
                        double deadline_s = 60.0, int write_gap_ms = 0) {
  ClientOutcome out;
  auto conn = env->Connect(path);
  if (!conn.ok()) {
    out.transport = conn.status();
    return out;
  }
  Conn* c = conn.value().get();
  std::atomic<bool> done_reading{false};
  std::atomic<bool> give_up{false};
  std::thread watchdog([&] {
    Stopwatch clock;
    while (!done_reading.load() && clock.ElapsedSeconds() < deadline_s) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    give_up.store(true);
  });
  std::thread reader([&] {
    FrameReader fr;
    while (out.responses.size() < requests.size()) {
      Frame f;
      auto ev = fr.Next(c, kResponseMagic, &f, &give_up, 50);
      if (!ev.ok()) {
        out.transport = ev.status();
        break;
      }
      if (ev.value() == FrameReader::Event::kStopped) {
        if (out.transport.ok()) {
          out.transport = Status::IOError("client read deadline exceeded");
        }
        break;
      }
      if (ev.value() != FrameReader::Event::kFrame) break;  // EOF
      auto parsed = ParseResponsePayload(f.payload);
      if (!parsed.ok()) {
        ++out.malformed;
        continue;
      }
      if (!out.responses.emplace(f.id, parsed.value()).second) {
        ++out.duplicates;
      }
    }
    done_reading.store(true);
  });
  Status write_err;  // merged after join: the reader owns out.* until then
  for (const Frame& f : requests) {
    if (done_reading.load()) break;  // connection already dead
    write_err = c->Write(EncodeRequestFrame(f), /*timeout_ms=*/5000);
    if (!write_err.ok()) break;
    if (write_gap_ms > 0) {
      // Throttled mode: each frame arrives as its own server read op (the
      // wire-fault sweep needs the op counter to advance per frame).
      std::this_thread::sleep_for(std::chrono::milliseconds(write_gap_ms));
    }
  }
  reader.join();
  watchdog.join();
  c->Close();
  if (!write_err.ok() && out.transport.ok()) out.transport = write_err;
  return out;
}

Frame TopkFrame(uint64_t id, uint32_t user, uint32_t time_bin, size_t k,
                double deadline_ms = 0.0) {
  std::string payload = StrFormat("topk %u %u k=%zu", user, time_bin, k);
  if (deadline_ms > 0.0) {
    payload += StrFormat(" deadline_ms=%.6f", deadline_ms);
  }
  return {id, payload};
}

// Asserts the serving invariant from a client's point of view: every
// request answered exactly once, every answer one of the three shapes.
void ExpectAllAnswered(const ClientOutcome& out,
                       const std::vector<Frame>& requests) {
  EXPECT_TRUE(out.transport.ok()) << out.transport.ToString();
  EXPECT_EQ(out.duplicates, 0u);
  EXPECT_EQ(out.malformed, 0u);
  ASSERT_EQ(out.responses.size(), requests.size());
  for (const Frame& f : requests) {
    ASSERT_TRUE(out.responses.count(f.id)) << "id " << f.id << " unanswered";
  }
}

// Server-side ledger: accepted == answered, exactly.
void ExpectServerLedgerBalanced(const ServerStats& s) {
  EXPECT_EQ(s.frames_received,
            s.responses_ok + s.responses_error + s.shed_total() -
                s.sheds[static_cast<int>(ShedReason::kOverloaded)])
      << s.ToString();  // overload sheds answer *connections*, not frames
}

// --- scenarios ---------------------------------------------------------

TEST(ServerChaosTest, RoundTripAcrossTiers) {
  auto w = StartWorld("rt", ServerOptions{});
  std::vector<Frame> reqs = {
      TopkFrame(1, 0, 0, 3),   // trained user: model tier
      TopkFrame(2, 3, 0, 3),   // unseen user: fold-in tier
      TopkFrame(3, 99, 0, 3),  // bad user: degrades to popularity
  };
  ClientOutcome out = RunClient(w->env(), w->socket_path, reqs);
  ExpectAllAnswered(out, reqs);
  EXPECT_EQ(out.responses.at(1).kind, WireResponse::Kind::kOk);
  EXPECT_EQ(out.responses.at(1).tier, ServeTier::kModel);
  EXPECT_EQ(out.responses.at(1).recs.size(), 3u);
  EXPECT_EQ(out.responses.at(2).tier, ServeTier::kFoldIn);
  EXPECT_EQ(out.responses.at(3).tier, ServeTier::kPopularity);
  EXPECT_TRUE(w->server->Stop().ok());
  ExpectServerLedgerBalanced(w->server->stats());
}

TEST(ServerChaosTest, UnparseablePayloadGetsErrorResponseStreamSurvives) {
  auto w = StartWorld("badpayload", ServerOptions{});
  std::vector<Frame> reqs = {
      TopkFrame(1, 0, 0, 2),
      {2, "topk not-a-number 0"},  // well-formed frame, bad payload
      TopkFrame(3, 1, 0, 2),
  };
  ClientOutcome out = RunClient(w->env(), w->socket_path, reqs);
  ExpectAllAnswered(out, reqs);
  EXPECT_EQ(out.responses.at(1).kind, WireResponse::Kind::kOk);
  EXPECT_EQ(out.responses.at(2).kind, WireResponse::Kind::kError);
  EXPECT_EQ(out.responses.at(3).kind, WireResponse::Kind::kOk);
  EXPECT_TRUE(w->server->Stop().ok());
  const ServerStats s = w->server->stats();
  EXPECT_EQ(s.responses_error, 1u);
  ExpectServerLedgerBalanced(s);
}

// Garbage, torn, truncated and bit-flipped frames: the server answers at
// most once (an error frame), closes that connection, and keeps serving
// fresh connections.
TEST(ServerChaosTest, MalformedFramesNeverKillTheServer) {
  auto w = StartWorld("malformed", ServerOptions{});
  const std::string good = EncodeRequestFrame(TopkFrame(7, 0, 0, 2));

  std::vector<std::string> attacks;
  attacks.push_back("GET / HTTP/1.1\r\n\r\n");        // wrong protocol
  attacks.push_back(std::string(64, '\0'));           // zero noise
  attacks.push_back(good.substr(0, good.size() / 2)); // torn frame
  for (size_t flip : {0uL, 5uL, 13uL, 20uL, good.size() - 1}) {
    std::string bad = good;
    bad[flip] = static_cast<char>(bad[flip] ^ 0x40);  // magic/id/len/crc
    attacks.push_back(bad);
  }
  {
    // Absurd length field: header claims 16 MiB.
    std::string bad = good;
    bad[12] = 0;
    bad[13] = 0;
    bad[14] = 0;
    bad[15] = 1;
    attacks.push_back(bad);
  }

  for (const std::string& attack : attacks) {
    auto conn = w->env()->Connect(w->socket_path);
    ASSERT_TRUE(conn.ok());
    // A torn write or an error-then-close from the server are both fine;
    // what is not fine is a crash or a hang. Attacks the decoder must
    // wait out (a torn frame looks like a slow client) end at the
    // watchdog, not at an unbounded read.
    Status ignored = conn.value()->Write(attack, 2000);
    (void)ignored;
    std::atomic<bool> give_up{false};
    std::atomic<bool> got_all{false};
    std::thread watchdog([&] {
      Stopwatch clock;
      while (!got_all.load() && clock.ElapsedSeconds() < 2.0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
      give_up.store(true);
    });
    FrameReader fr;
    for (;;) {
      Frame f;
      auto ev =
          fr.Next(conn.value().get(), kResponseMagic, &f, &give_up, 50);
      if (!ev.ok() || ev.value() != FrameReader::Event::kFrame) break;
      auto parsed = ParseResponsePayload(f.payload);
      EXPECT_TRUE(parsed.ok());  // even under attack: well-formed or closed
    }
    got_all.store(true);
    watchdog.join();
    conn.value()->Close();
  }

  // The server is still alive and correct for a well-behaved client.
  std::vector<Frame> reqs = {TopkFrame(1, 0, 0, 2)};
  ClientOutcome out = RunClient(w->env(), w->socket_path, reqs);
  ExpectAllAnswered(out, reqs);
  EXPECT_TRUE(w->server->Stop().ok());
  EXPECT_GE(w->server->stats().bad_frames, attacks.size() - 1);
  ExpectServerLedgerBalanced(w->server->stats());
}

// A frame whose header is intact but whose CRC is corrupt gets an error
// response that echoes the header's id, so a pipelined client can tell
// which request poisoned the stream.
TEST(ServerChaosTest, MalformedFrameErrorEchoesHeaderId) {
  auto w = StartWorld("echoid", ServerOptions{});
  auto conn = w->env()->Connect(w->socket_path);
  ASSERT_TRUE(conn.ok());
  std::string bytes = EncodeRequestFrame(TopkFrame(0xdeadbeefULL, 0, 0, 2));
  bytes.back() = static_cast<char>(bytes.back() ^ 0x5a);  // corrupt the CRC
  ASSERT_TRUE(conn.value()->Write(bytes, 2000).ok());
  std::atomic<bool> give_up{false};
  std::atomic<bool> got_it{false};
  std::thread watchdog([&] {
    Stopwatch clock;
    while (!got_it.load() && clock.ElapsedSeconds() < 10.0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    give_up.store(true);
  });
  FrameReader fr;
  Frame resp;
  auto ev = fr.Next(conn.value().get(), kResponseMagic, &resp, &give_up, 50);
  got_it.store(true);
  watchdog.join();
  ASSERT_TRUE(ev.ok()) << ev.status().ToString();
  ASSERT_EQ(ev.value(), FrameReader::Event::kFrame);
  EXPECT_EQ(resp.id, 0xdeadbeefULL);
  auto parsed = ParseResponsePayload(resp.payload);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().kind, WireResponse::Kind::kError);
  conn.value()->Close();
  EXPECT_TRUE(w->server->Stop().ok());
}

// Regression for the slow-client guard: a write to a peer that never
// reads must fail within the timeout, not block until the peer drains
// the socket buffer. (Connection fds are non-blocking, so the poll()
// budget bounds every progress step; a blocking send() of a payload
// larger than the free buffer space would otherwise sleep forever and
// wedge whichever server thread held the connection.)
TEST(ServerChaosTest, WriteToStalledPeerFailsWithinTimeout) {
  Env* env = Env::Default();
  const std::string path = TempPath("stalled.sock");
  auto listener = env->NewListener(path);
  ASSERT_TRUE(listener.ok());
  auto client = env->Connect(path);
  ASSERT_TRUE(client.ok());
  auto accepted = listener.value()->Accept(1000);
  ASSERT_TRUE(accepted.ok());
  ASSERT_TRUE(accepted.value() != nullptr);
  // 8 MiB into a peer that never reads — far beyond any socket buffer.
  const std::string big(8u << 20, 'x');
  Stopwatch clock;
  Status st = accepted.value()->Write(big, /*timeout_ms=*/100);
  EXPECT_FALSE(st.ok());
  EXPECT_LT(clock.ElapsedSeconds(), 30.0) << "write did not time out";
  accepted.value()->Close();
  client.value()->Close();
  listener.value()->Close();
}

// Overload storm against a deliberately tiny queue: many pipelined
// clients, queue capacity 4. Backpressure must answer every request —
// ok or an explicit queue_full shed — and the ledger must balance.
TEST(ServerChaosTest, OverloadStormShedsExplicitlyNeverSilently) {
  ServerOptions opts;
  opts.queue_capacity = 4;
  opts.max_batch = 2;
  auto w = StartWorld("storm", opts);

  constexpr int kClients = 4;
  constexpr int kPerClient = 100;
  std::vector<std::vector<Frame>> reqs(kClients);
  std::vector<ClientOutcome> outs(kClients);
  for (int cidx = 0; cidx < kClients; ++cidx) {
    for (int i = 0; i < kPerClient; ++i) {
      reqs[cidx].push_back(TopkFrame(static_cast<uint64_t>(i) + 1,
                                     static_cast<uint32_t>(i % 4),
                                     static_cast<uint32_t>(i % 12), 3));
    }
  }
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int cidx = 0; cidx < kClients; ++cidx) {
    clients.emplace_back([&, cidx] {
      outs[cidx] = RunClient(w->env(), w->socket_path, reqs[cidx]);
    });
  }
  for (auto& t : clients) t.join();

  size_t oks = 0;
  size_t sheds = 0;
  for (int cidx = 0; cidx < kClients; ++cidx) {
    ExpectAllAnswered(outs[cidx], reqs[cidx]);
    for (const auto& [id, resp] : outs[cidx].responses) {
      if (resp.kind == WireResponse::Kind::kOk) ++oks;
      if (resp.kind == WireResponse::Kind::kShed) ++sheds;
    }
  }
  EXPECT_EQ(oks + sheds, static_cast<size_t>(kClients) * kPerClient);
  EXPECT_GT(oks, 0u);  // the queue made progress under the storm
  EXPECT_TRUE(w->server->Stop().ok());
  const ServerStats s = w->server->stats();
  EXPECT_EQ(s.frames_received, static_cast<uint64_t>(kClients) * kPerClient);
  EXPECT_EQ(s.responses_ok, oks);
  ExpectServerLedgerBalanced(s);
}

// Hot reload mid-storm: the model file is rewritten while clients hammer
// the server (dispatcher polls every batch). Every response stays
// well-formed and the new generation eventually serves.
TEST(ServerChaosTest, HotReloadMidStorm) {
  ServerOptions opts;
  opts.poll_every_batches = 1;
  auto w = StartWorld("reload", opts);

  std::atomic<bool> storm_done{false};
  std::thread reloader([&] {
    double level = 2.0;
    while (!storm_done.load()) {
      ASSERT_TRUE(
          SaveFactorModel(ConstantModel(3, 5, 12, level), w->model_path)
              .ok());
      level += 1.0;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  constexpr int kRounds = 8;
  constexpr int kPerRound = 40;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<Frame> reqs;
    for (int i = 0; i < kPerRound; ++i) {
      reqs.push_back(TopkFrame(static_cast<uint64_t>(i) + 1,
                               static_cast<uint32_t>(i % 4), 0, 3));
    }
    ClientOutcome out = RunClient(w->env(), w->socket_path, reqs);
    ExpectAllAnswered(out, reqs);
  }
  storm_done.store(true);
  reloader.join();
  EXPECT_TRUE(w->server->Stop().ok());
  ExpectServerLedgerBalanced(w->server->stats());
  EXPECT_EQ(w->service->health(), ServeHealth::kHealthy);
}

// The ANN tier under the same reload storm: every reloaded generation
// changes the model fingerprint, so the dispatcher rebuilds the LSH index
// mid-traffic while clients flood the socket. The generation invariant
// (a TCSS_CHECK in the service) crashes the process if a request is ever
// scored against a (model, index) pair from different generations; the
// ledger and per-response checks keep the external contract honest.
TEST(ServerChaosTest, AnnHotReloadMidStormRebuildsAtomically) {
  ServerOptions opts;
  opts.poll_every_batches = 1;
  RecommendService::Options svc;
  svc.ann.enabled = true;
  // On the 5-POI catalogue the default floor would always fall back to
  // exact; a floor of 1 keeps the union serving so the storm actually
  // exercises rebuilds on the ANN path.
  svc.ann.lsh.min_candidates = 1;
  svc.ann.audit_every = 2;
  auto w = StartWorld("annreload", opts, nullptr, svc);

  std::atomic<bool> storm_done{false};
  std::thread reloader([&] {
    double level = 2.0;
    while (!storm_done.load()) {
      // Each level rescales h, which perturbs the model fingerprint and
      // forces an index rebuild on the next ANN-eligible request.
      ASSERT_TRUE(
          SaveFactorModel(ConstantModel(3, 5, 12, level), w->model_path)
              .ok());
      level += 1.0;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  constexpr int kRounds = 8;
  constexpr int kPerRound = 40;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<Frame> reqs;
    for (int i = 0; i < kPerRound; ++i) {
      reqs.push_back(TopkFrame(static_cast<uint64_t>(i) + 1,
                               static_cast<uint32_t>(i % 3), 0, 3));
    }
    ClientOutcome out = RunClient(w->env(), w->socket_path, reqs);
    ExpectAllAnswered(out, reqs);
    for (const auto& [id, resp] : out.responses) {
      if (resp.kind == WireResponse::Kind::kOk) {
        EXPECT_FALSE(resp.recs.empty()) << "id " << id;
      }
    }
  }
  storm_done.store(true);
  reloader.join();
  EXPECT_TRUE(w->server->Stop().ok());
  ExpectServerLedgerBalanced(w->server->stats());

  const ServiceStats stats = w->service->Stats();
  EXPECT_GT(stats.ann_served, 0u) << "the storm never served from the union";
  EXPECT_GE(stats.ann_rebuilds, 2u) << "no mid-traffic rebuild happened";
  EXPECT_EQ(w->service->health(), ServeHealth::kHealthy);
}

// Graceful drain under load: stop lands mid-storm. Clients still get one
// response per request (results or draining/queue_full sheds), the server
// joins cleanly, the ledger balances.
TEST(ServerChaosTest, GracefulDrainUnderLoad) {
  ServerOptions opts;
  opts.queue_capacity = 16;
  auto w = StartWorld("drain", opts);

  constexpr int kClients = 3;
  constexpr int kPerClient = 120;
  std::vector<std::vector<Frame>> reqs(kClients);
  std::vector<ClientOutcome> outs(kClients);
  for (int cidx = 0; cidx < kClients; ++cidx) {
    for (int i = 0; i < kPerClient; ++i) {
      reqs[cidx].push_back(
          TopkFrame(static_cast<uint64_t>(i) + 1,
                    static_cast<uint32_t>(i % 4), 0, 2));
    }
  }
  std::vector<std::thread> clients;
  for (int cidx = 0; cidx < kClients; ++cidx) {
    clients.emplace_back([&, cidx] {
      outs[cidx] = RunClient(w->env(), w->socket_path, reqs[cidx],
                             /*deadline_s=*/30.0);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  w->server->RequestStop();
  EXPECT_TRUE(w->server->Wait().ok());
  for (auto& t : clients) t.join();

  // After the drain the client outcome is looser — requests written after
  // the readers exited were never *accepted* (no frame read), so they get
  // no response; requests the server read must all be answered. The
  // server-side ledger is the exact invariant.
  const ServerStats s = w->server->stats();
  ExpectServerLedgerBalanced(s);
  size_t answered = 0;
  for (int cidx = 0; cidx < kClients; ++cidx) {
    EXPECT_EQ(outs[cidx].duplicates, 0u);
    EXPECT_EQ(outs[cidx].malformed, 0u);
    answered += outs[cidx].responses.size();
  }
  EXPECT_EQ(answered, static_cast<size_t>(s.responses_ok) +
                          s.responses_error + s.shed_total() -
                          s.sheds[static_cast<int>(ShedReason::kOverloaded)]);
}

// Deadline property at 1/2/8 workers: a request carrying budget B is
// answered or explicitly shed — never silently dropped — regardless of
// worker count, budget size, or queue pressure.
TEST(ServerChaosTest, DeadlinePropertyAcrossWorkerCounts) {
  for (int workers : {1, 2, 8}) {
    ServerOptions opts;
    opts.num_workers = workers;
    opts.queue_capacity = 8;
    opts.max_batch = 4;
    auto w = StartWorld(StrFormat("deadline%d", workers), opts);
    std::vector<Frame> reqs;
    for (int i = 0; i < 60; ++i) {
      // Budgets from hopeless (1 microsecond) to comfortable (1 s).
      const double budget_ms = (i % 3 == 0) ? 0.001 : (i % 3 == 1) ? 5.0
                                                                   : 1000.0;
      reqs.push_back(TopkFrame(static_cast<uint64_t>(i) + 1,
                               static_cast<uint32_t>(i % 4), 0, 3,
                               budget_ms));
    }
    ClientOutcome out = RunClient(w->env(), w->socket_path, reqs);
    ExpectAllAnswered(out, reqs);
    for (const auto& [id, resp] : out.responses) {
      EXPECT_TRUE(resp.kind == WireResponse::Kind::kOk ||
                  resp.kind == WireResponse::Kind::kShed);
    }
    EXPECT_TRUE(w->server->Stop().ok());
    ExpectServerLedgerBalanced(w->server->stats());
  }
}

// Wire faults through FaultInjectionEnv: reads and writes fail (or tear)
// after k operations, swept over k. Whatever the wire does, the server
// neither crashes nor hangs, later connections work, and the ledger
// balances (torn responses count as write failures, not lost requests).
TEST(ServerChaosTest, WireFaultScheduleSweep) {
  struct Schedule {
    int fail_reads_after;
    int fail_writes_after;
    bool truncate_writes;
  };
  const Schedule schedules[] = {
      {0, -1, false},  // every server read fails immediately
      {2, -1, false},  // reads die mid-stream
      {7, -1, false},  // reads die late
      {-1, 0, false},  // every response write fails
      {-1, 2, false},  // writes die mid-stream
      {-1, 2, true},   // torn response: first half delivered, then fault
      {-1, 0, true},   // torn from the first write
      {3, 3, true},    // both directions flaky
  };
  int idx = 0;
  for (const Schedule& sched : schedules) {
    FaultInjectionEnv fenv(Env::Default());
    auto w = StartWorld(StrFormat("wire%d", idx++), ServerOptions{}, &fenv);
    fenv.set_truncate_conn_writes(sched.truncate_writes);
    fenv.set_fail_conn_reads_after(sched.fail_reads_after);
    fenv.set_fail_conn_writes_after(sched.fail_writes_after);

    std::vector<Frame> reqs;
    for (int i = 0; i < 10; ++i) {
      reqs.push_back(TopkFrame(static_cast<uint64_t>(i) + 1,
                               static_cast<uint32_t>(i % 4), 0, 2));
    }
    // The fault schedule hits the *server's* conns (its env); the client
    // may see garbage, truncation or a reset — all acceptable, and the
    // short deadline keeps a silent wire from stalling the sweep.
    ClientOutcome out = RunClient(Env::Default(), w->socket_path, reqs, 3.0,
                                  /*write_gap_ms=*/25);
    EXPECT_EQ(out.duplicates, 0u);
    EXPECT_GT(fenv.conn_faults_injected(), 0)
        << StrFormat("r=%d w=%d t=%d", sched.fail_reads_after,
                     sched.fail_writes_after, sched.truncate_writes);

    // Lift the faults: the server must still serve a fresh client.
    fenv.set_fail_conn_reads_after(-1);
    fenv.set_fail_conn_writes_after(-1);
    fenv.set_truncate_conn_writes(false);
    std::vector<Frame> again = {TopkFrame(1, 0, 0, 2)};
    ClientOutcome ok = RunClient(Env::Default(), w->socket_path, again);
    ExpectAllAnswered(ok, again);

    EXPECT_TRUE(w->server->Stop().ok());
    ExpectServerLedgerBalanced(w->server->stats());
  }
}

// Accept-gate faults and kernel-dribble reads (the FaultInjectionEnv
// knobs added for the distributed engine, aimed back at the serving
// front-end): a dropped accept is exactly a real ECONNABORTED — the
// client vanished between connect and accept — and must not wedge the
// accept loop; 2-byte chunked reads force every request through the
// frame reassembly path.
TEST(ServerChaosTest, DroppedAcceptsAndSplitReadsAreSurvived) {
  FaultInjectionEnv fenv(Env::Default());
  auto w = StartWorld("acceptsplit", ServerOptions{}, &fenv);

  // Every delivered connection dies at the accept gate: clients connect
  // (the kernel backlog accepts the handshake) but are never served.
  fenv.set_fail_accepts_after(0);
  for (int i = 0; i < 2; ++i) {
    std::vector<Frame> reqs = {TopkFrame(1, 0, 0, 2)};
    ClientOutcome out = RunClient(Env::Default(), w->socket_path, reqs, 2.0);
    EXPECT_TRUE(out.responses.empty())
        << "a connection dropped at accept was answered";
  }
  EXPECT_GE(fenv.accepts_delivered(), 2);

  // Lift the fault; the accept loop must still be alive. Now dribble all
  // server-side reads 2 bytes at a time and demand full service.
  fenv.set_fail_accepts_after(-1);
  fenv.set_conn_read_chunk(2);
  std::vector<Frame> reqs;
  for (int i = 0; i < 8; ++i) {
    reqs.push_back(TopkFrame(static_cast<uint64_t>(i) + 1,
                             static_cast<uint32_t>(i % 4), 0, 2));
  }
  ClientOutcome ok = RunClient(Env::Default(), w->socket_path, reqs);
  ExpectAllAnswered(ok, reqs);
  // Far more read ops than frames: the chunk cap really was in force.
  EXPECT_GT(fenv.conn_reads_attempted(), static_cast<int>(reqs.size()) * 4);

  EXPECT_TRUE(w->server->Stop().ok());
  ExpectServerLedgerBalanced(w->server->stats());
}

// Connection-limit overload: with max_connections=1 a second concurrent
// connection is answered with one explicit overloaded-shed frame.
TEST(ServerChaosTest, ConnectionLimitShedsExplicitly) {
  ServerOptions opts;
  opts.max_connections = 1;
  auto w = StartWorld("connlimit", opts);

  auto first = w->env()->Connect(w->socket_path);
  ASSERT_TRUE(first.ok());
  // Park a request on the first connection so its session stays alive.
  ASSERT_TRUE(first.value()
                  ->Write(EncodeRequestFrame(TopkFrame(1, 0, 0, 2)), 2000)
                  .ok());
  FrameReader fr1;
  Frame f1;
  ASSERT_TRUE(
      fr1.Next(first.value().get(), kResponseMagic, &f1, nullptr, 100).ok());

  // Second connection: must receive a shed frame (reason=overloaded) or a
  // clean close — never a hang.
  bool saw_overload_shed = false;
  for (int attempt = 0; attempt < 50 && !saw_overload_shed; ++attempt) {
    auto second = w->env()->Connect(w->socket_path);
    ASSERT_TRUE(second.ok());
    FrameReader fr2;
    Frame f2;
    auto ev = fr2.Next(second.value().get(), kResponseMagic, &f2, nullptr,
                       100);
    if (ev.ok() && ev.value() == FrameReader::Event::kFrame) {
      auto parsed = ParseResponsePayload(f2.payload);
      ASSERT_TRUE(parsed.ok());
      if (parsed.value().kind == WireResponse::Kind::kShed) {
        EXPECT_EQ(parsed.value().shed, ShedReason::kOverloaded);
        saw_overload_shed = true;
      }
    }
    second.value()->Close();
  }
  EXPECT_TRUE(saw_overload_shed);
  first.value()->Close();
  EXPECT_TRUE(w->server->Stop().ok());
}

// Soak: sustained mixed traffic (deadlines, fold-in users, bad users)
// until TCSS_SERVER_SOAK requests have been pushed through. Gates the
// TSan stage in tools/check.sh with 10k requests.
TEST(ServerChaosTest, SoakMixedTraffic) {
  size_t soak = 2000;
  if (const char* env_soak = std::getenv("TCSS_SERVER_SOAK")) {
    soak = static_cast<size_t>(std::atol(env_soak));
  }
  ServerOptions opts;
  opts.queue_capacity = 64;
  opts.max_batch = 16;
  opts.poll_every_batches = 32;
  auto w = StartWorld("soak", opts);

  constexpr int kClients = 4;
  const size_t per_client = (soak + kClients - 1) / kClients;
  std::vector<std::vector<Frame>> reqs(kClients);
  std::vector<ClientOutcome> outs(kClients);
  for (int cidx = 0; cidx < kClients; ++cidx) {
    for (size_t i = 0; i < per_client; ++i) {
      const uint32_t user = static_cast<uint32_t>((i + cidx) % 5);  // 4=bad
      const double budget_ms = (i % 7 == 0) ? 2.0 : 0.0;
      reqs[cidx].push_back(TopkFrame(i + 1, user,
                                     static_cast<uint32_t>(i % 12), 3,
                                     budget_ms));
    }
  }
  std::vector<std::thread> clients;
  for (int cidx = 0; cidx < kClients; ++cidx) {
    clients.emplace_back([&, cidx] {
      outs[cidx] = RunClient(w->env(), w->socket_path, reqs[cidx],
                             /*deadline_s=*/300.0);
    });
  }
  for (auto& t : clients) t.join();
  for (int cidx = 0; cidx < kClients; ++cidx) {
    ExpectAllAnswered(outs[cidx], reqs[cidx]);
  }
  EXPECT_TRUE(w->server->Stop().ok());
  const ServerStats s = w->server->stats();
  EXPECT_EQ(s.frames_received,
            static_cast<uint64_t>(per_client) * kClients);
  ExpectServerLedgerBalanced(s);
}

}  // namespace
}  // namespace tcss
