#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <map>
#include <set>

#include "common/env.h"
#include "common/rng.h"
#include "data/csv_io.h"
#include "data/dataset.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "data/tensor_builder.h"
#include "data/time_binning.h"
#include "geo/geo_point.h"

namespace tcss {
namespace {

TEST(TimeBinningTest, CivilRoundTripKnownDates) {
  // 2011-02-14 13:45:30 UTC.
  int64_t ts = FromCivil(2011, 2, 14, 13, 45, 30);
  CivilTime c = ToCivil(ts);
  EXPECT_EQ(c.year, 2011);
  EXPECT_EQ(c.month, 2);
  EXPECT_EQ(c.day, 14);
  EXPECT_EQ(c.hour, 13);
  EXPECT_EQ(c.minute, 45);
  EXPECT_EQ(c.second, 30);
  EXPECT_EQ(c.day_of_year, 31 + 13);
}

TEST(TimeBinningTest, EpochIsJan1st1970) {
  CivilTime c = ToCivil(0);
  EXPECT_EQ(c.year, 1970);
  EXPECT_EQ(c.month, 1);
  EXPECT_EQ(c.day, 1);
  EXPECT_EQ(c.hour, 0);
  EXPECT_EQ(c.day_of_year, 0);
}

TEST(TimeBinningTest, LeapYearDayOfYear) {
  // 2012 is a leap year: March 1st is day 31+29 = index 60.
  CivilTime c = ToCivil(FromCivil(2012, 3, 1));
  EXPECT_EQ(c.day_of_year, 60);
  // 2011 (non-leap): March 1st is index 59.
  EXPECT_EQ(ToCivil(FromCivil(2011, 3, 1)).day_of_year, 59);
}

TEST(TimeBinningTest, NegativeTimestamps) {
  // 1969-12-31 23:00:00.
  CivilTime c = ToCivil(-3600);
  EXPECT_EQ(c.year, 1969);
  EXPECT_EQ(c.month, 12);
  EXPECT_EQ(c.day, 31);
  EXPECT_EQ(c.hour, 23);
}

TEST(TimeBinningTest, BinsPerGranularity) {
  EXPECT_EQ(NumBins(TimeGranularity::kMonthOfYear), 12u);
  EXPECT_EQ(NumBins(TimeGranularity::kWeekOfYear), 53u);
  EXPECT_EQ(NumBins(TimeGranularity::kHourOfDay), 24u);
  // Paper example: a February check-in has k = 1.
  int64_t feb = FromCivil(2011, 2, 10, 12);
  EXPECT_EQ(TimeBin(feb, TimeGranularity::kMonthOfYear), 1u);
  // 22:00 falls in hour bin 22.
  int64_t night = FromCivil(2011, 6, 1, 22);
  EXPECT_EQ(TimeBin(night, TimeGranularity::kHourOfDay), 22u);
  // December 31st of a non-leap year is day 364 -> week 52.
  int64_t nye = FromCivil(2011, 12, 31, 5);
  EXPECT_EQ(TimeBin(nye, TimeGranularity::kWeekOfYear), 52u);
}

TEST(TimeBinningTest, GranularityNames) {
  EXPECT_STREQ(GranularityName(TimeGranularity::kMonthOfYear), "month");
  EXPECT_STREQ(GranularityName(TimeGranularity::kWeekOfYear), "week");
  EXPECT_STREQ(GranularityName(TimeGranularity::kHourOfDay), "hour");
}

Dataset TinyDataset() {
  SocialGraph social(3);
  EXPECT_TRUE(social.AddEdge(0, 1).ok());
  EXPECT_TRUE(social.Finalize().ok());
  std::vector<Poi> pois = {
      {{40.0, -74.0}, PoiCategory::kFood},
      {{40.1, -74.1}, PoiCategory::kShopping},
      {{40.2, -74.2}, PoiCategory::kFood},
  };
  Dataset d(3, pois, std::move(social));
  EXPECT_TRUE(d.AddCheckIn(0, 0, FromCivil(2011, 1, 5)).ok());
  EXPECT_TRUE(d.AddCheckIn(0, 1, FromCivil(2011, 2, 5)).ok());
  EXPECT_TRUE(d.AddCheckIn(1, 2, FromCivil(2011, 3, 5)).ok());
  EXPECT_TRUE(d.AddCheckIn(2, 0, FromCivil(2011, 3, 6)).ok());
  return d;
}

TEST(DatasetTest, BasicAccessors) {
  Dataset d = TinyDataset();
  EXPECT_EQ(d.num_users(), 3u);
  EXPECT_EQ(d.num_pois(), 3u);
  EXPECT_EQ(d.num_checkins(), 4u);
  EXPECT_EQ(d.PoiLocations().size(), 3u);
  EXPECT_FALSE(d.Summary().empty());
  EXPECT_FALSE(d.AddCheckIn(3, 0, 0).ok());
  EXPECT_FALSE(d.AddCheckIn(0, 3, 0).ok());
}

TEST(DatasetTest, FilterByCategoryReindexes) {
  Dataset d = TinyDataset();
  Dataset food = d.FilterByCategory(PoiCategory::kFood);
  EXPECT_EQ(food.num_pois(), 2u);
  EXPECT_EQ(food.num_users(), 3u);
  // Check-ins at the shopping POI are dropped; food POIs re-indexed 0,1.
  EXPECT_EQ(food.num_checkins(), 3u);
  for (const auto& c : food.checkins()) EXPECT_LT(c.poi, 2u);
  // Social graph preserved.
  EXPECT_TRUE(food.social().HasEdge(0, 1));
}

TEST(DatasetTest, UserPoiSetsDeduplicated) {
  Dataset d = TinyDataset();
  EXPECT_TRUE(d.AddCheckIn(0, 0, FromCivil(2011, 5, 5)).ok());
  auto sets = d.UserPoiSets();
  EXPECT_EQ(sets[0], (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(sets[1], (std::vector<uint32_t>{2}));
}

TEST(TensorBuilderTest, BuildsBinaryTensor) {
  Dataset d = TinyDataset();
  auto t = BuildCheckinTensor(d, TimeGranularity::kMonthOfYear);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value().dim_i(), 3u);
  EXPECT_EQ(t.value().dim_j(), 3u);
  EXPECT_EQ(t.value().dim_k(), 12u);
  EXPECT_EQ(t.value().nnz(), 4u);
  EXPECT_TRUE(t.value().Contains(0, 0, 0));   // January
  EXPECT_TRUE(t.value().Contains(0, 1, 1));   // February
  EXPECT_TRUE(t.value().Contains(1, 2, 2));   // March
}

TEST(TensorBuilderTest, EventsToCellsDeduplicates) {
  std::vector<CheckInEvent> events = {
      {0, 0, FromCivil(2011, 1, 2)},
      {0, 0, FromCivil(2011, 1, 20)},  // same cell (same month)
      {0, 0, FromCivil(2011, 2, 2)},
  };
  auto cells = EventsToCells(events, TimeGranularity::kMonthOfYear);
  EXPECT_EQ(cells.size(), 2u);
}

TEST(SplitTest, FractionsAndCoverage) {
  auto data =
      GenerateSyntheticLbsn(PresetConfig(SyntheticPreset::kGowallaLike, 0.2));
  ASSERT_TRUE(data.ok());
  const Dataset& d = data.value();
  TrainTestSplit split = SplitCheckins(d, 0.8, 1);
  EXPECT_EQ(split.train.size() + split.test.size(), d.num_checkins());
  const double frac =
      static_cast<double>(split.train.size()) / d.num_checkins();
  EXPECT_NEAR(frac, 0.8, 0.02);
  // Every active user keeps at least one training event.
  std::set<uint32_t> train_users;
  for (const auto& e : split.train) train_users.insert(e.user);
  std::set<uint32_t> all_users;
  for (const auto& e : d.checkins()) all_users.insert(e.user);
  EXPECT_EQ(train_users, all_users);
}

TEST(SplitTest, DeterministicPerSeed) {
  auto data =
      GenerateSyntheticLbsn(PresetConfig(SyntheticPreset::kYelpLike, 0.2));
  ASSERT_TRUE(data.ok());
  auto a = SplitCheckins(data.value(), 0.8, 9);
  auto b = SplitCheckins(data.value(), 0.8, 9);
  ASSERT_EQ(a.test.size(), b.test.size());
  for (size_t i = 0; i < a.test.size(); ++i) {
    EXPECT_EQ(a.test[i].user, b.test[i].user);
    EXPECT_EQ(a.test[i].poi, b.test[i].poi);
    EXPECT_EQ(a.test[i].timestamp, b.test[i].timestamp);
  }
}

TEST(CsvIoTest, RoundTrip) {
  Dataset d = TinyDataset();
  std::string dir = ::testing::TempDir() + "/tcss_csv_roundtrip";
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(SaveDatasetCsv(d, dir).ok());
  auto loaded = LoadDatasetCsv(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Dataset& l = loaded.value();
  EXPECT_EQ(l.num_users(), d.num_users());
  EXPECT_EQ(l.num_pois(), d.num_pois());
  EXPECT_EQ(l.num_checkins(), d.num_checkins());
  for (uint32_t j = 0; j < d.num_pois(); ++j) {
    EXPECT_NEAR(l.poi(j).location.lat, d.poi(j).location.lat, 1e-6);
    EXPECT_EQ(l.poi(j).category, d.poi(j).category);
  }
  EXPECT_TRUE(l.social().HasEdge(0, 1));
  EXPECT_EQ(l.checkins()[0].timestamp, d.checkins()[0].timestamp);
}

TEST(CsvIoTest, MissingDirectoryFails) {
  EXPECT_FALSE(LoadDatasetCsv("/nonexistent/dir").ok());
}

// Writes the three CSV files of a dataset directory from raw strings.
std::string WriteCsvDir(const std::string& name, const std::string& pois,
                        const std::string& checkins,
                        const std::string& friends) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::create_directories(dir);
  std::filesystem::remove(dir + "/quarantine.csv");
  EXPECT_TRUE(AtomicWriteFile(Env::Default(), dir + "/pois.csv", pois).ok());
  EXPECT_TRUE(
      AtomicWriteFile(Env::Default(), dir + "/checkins.csv", checkins).ok());
  EXPECT_TRUE(
      AtomicWriteFile(Env::Default(), dir + "/friends.csv", friends).ok());
  return dir;
}

const char kDirtyPois[] =
    "poi_id,lat,lon,category\n"
    "0,40.5,-74.1,2\n"
    "1,95.0,-74.2,0\n"      // lat out of [-90, 90]
    "2,40.7,-200.0,2\n"         // lon out of [-180, 180]
    "3,nan,12.0,2\n"            // NaN must not pass the range check
    "4,48.8,2.35,1\n";  // kEntertainment

const char kDirtyCheckins[] =
    "user_id,poi_id,unix_seconds\n"
    "0,0,1300000000\n"
    "0,4,1.5e9\n"                  // float timestamp: rejected, not truncated
    "1,1,1300100000\n"             // references quarantined poi 1
    "1,4,9999999999999\n"          // past year 9999
    "2,4,1300200000\n";

const char kDirtyFriends[] =
    "user_id,friend_id\n"
    "0,1\n"
    "1,1\n"                        // self-loop
    "1,0\n"                        // duplicate of 0,1 (other orientation)
    "1,2\n";

TEST(CsvIoTest, StrictModeFailsOnFirstBadRowWithLineNumber) {
  const std::string dir =
      WriteCsvDir("tcss_csv_strict", kDirtyPois, kDirtyCheckins,
                  kDirtyFriends);
  auto r = LoadDatasetCsv(dir);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("pois.csv line 3"), std::string::npos)
      << r.status().ToString();
}

TEST(CsvIoTest, StrictModeRejectsSelfLoopsAndDuplicateEdges) {
  const char pois[] = "poi_id,lat,lon,category\n0,40.5,-74.1,2\n";
  const char checkins[] = "user_id,poi_id,unix_seconds\n0,0,1300000000\n";
  {
    const std::string dir = WriteCsvDir(
        "tcss_csv_selfloop", pois, checkins,
        "user_id,friend_id\n2,2\n");
    auto r = LoadDatasetCsv(dir);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().ToString().find("friends.csv line 2"),
              std::string::npos);
  }
  {
    const std::string dir = WriteCsvDir(
        "tcss_csv_dupedge", pois, checkins,
        "user_id,friend_id\n0,1\n1,0\n");
    EXPECT_FALSE(LoadDatasetCsv(dir).ok());
  }
}

TEST(CsvIoTest, LenientModeQuarantinesAndReindexes) {
  const std::string dir =
      WriteCsvDir("tcss_csv_lenient", kDirtyPois, kDirtyCheckins,
                  kDirtyFriends);
  CsvLoadOptions opts;
  opts.mode = CsvLoadMode::kLenient;
  LoadReport report;
  auto r = LoadDatasetCsv(dir, opts, &report);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Dataset& d = r.value();

  // POIs 1, 2, 3 were quarantined; survivors 0 and 4 re-index to 0 and 1.
  EXPECT_EQ(report.bad_pois, 3u);
  ASSERT_EQ(d.num_pois(), 2u);
  EXPECT_NEAR(d.poi(1).location.lat, 48.8, 1e-9);
  EXPECT_EQ(d.poi(1).category, PoiCategory::kEntertainment);

  // Bad timestamp rows and the check-in at quarantined POI 1 are dropped;
  // the two clean check-ins land on the re-indexed POIs.
  EXPECT_EQ(report.bad_checkins, 3u);
  ASSERT_EQ(d.num_checkins(), 2u);
  EXPECT_EQ(d.checkins()[0].poi, 0u);
  EXPECT_EQ(d.checkins()[1].poi, 1u);

  // Self-loop and duplicate edge quarantined; edges 0-1 and 1-2 survive.
  EXPECT_EQ(report.bad_edges, 2u);
  EXPECT_EQ(report.edges_loaded, 2u);
  EXPECT_TRUE(d.social().HasEdge(0, 1));
  EXPECT_TRUE(d.social().HasEdge(1, 2));

  // The quarantine file names every dropped row with file + line + reason.
  ASSERT_FALSE(report.quarantine_path.empty());
  auto q = Env::Default()->ReadFileToString(report.quarantine_path);
  ASSERT_TRUE(q.ok());
  EXPECT_NE(q.value().find("pois.csv,3"), std::string::npos) << q.value();
  EXPECT_NE(q.value().find("references quarantined poi"), std::string::npos);
  EXPECT_EQ(report.bad_rows(), 8u);
}

TEST(CsvIoTest, LenientModeFailsPastMaxBadRows) {
  const std::string dir =
      WriteCsvDir("tcss_csv_budget", kDirtyPois, kDirtyCheckins,
                  kDirtyFriends);
  CsvLoadOptions opts;
  opts.mode = CsvLoadMode::kLenient;
  opts.max_bad_rows = 2;  // the dirty corpus has 8 bad rows
  LoadReport report;
  EXPECT_FALSE(LoadDatasetCsv(dir, opts, &report).ok());
}

TEST(CsvIoTest, CleanDataLoadsIdenticallyInBothModes) {
  Dataset d = TinyDataset();
  std::string dir = ::testing::TempDir() + "/tcss_csv_clean_lenient";
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(SaveDatasetCsv(d, dir).ok());
  CsvLoadOptions opts;
  opts.mode = CsvLoadMode::kLenient;
  LoadReport report;
  auto r = LoadDatasetCsv(dir, opts, &report);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(report.bad_rows(), 0u);
  EXPECT_TRUE(report.quarantine_path.empty());
  EXPECT_EQ(r.value().num_checkins(), d.num_checkins());
}

class SyntheticPresetTest
    : public ::testing::TestWithParam<SyntheticPreset> {};

TEST_P(SyntheticPresetTest, SatisfiesPaperFilters) {
  SyntheticConfig cfg = PresetConfig(GetParam(), 0.3);
  auto data = GenerateSyntheticLbsn(cfg);
  ASSERT_TRUE(data.ok());
  const Dataset& d = data.value();
  EXPECT_EQ(d.num_users(), cfg.num_users);
  EXPECT_EQ(d.num_pois(), cfg.num_pois);
  // The paper filters to users with >= 15 check-ins and >= 1 friend.
  std::vector<size_t> per_user(d.num_users(), 0);
  for (const auto& c : d.checkins()) ++per_user[c.user];
  for (uint32_t u = 0; u < d.num_users(); ++u) {
    EXPECT_GE(per_user[u], 15u) << "user " << u;
    EXPECT_GE(d.social().Degree(u), 1u) << "user " << u;
  }
  // All POI locations valid.
  for (const auto& p : d.pois()) EXPECT_TRUE(IsValid(p.location));
}

TEST_P(SyntheticPresetTest, DeterministicForSeed) {
  SyntheticConfig cfg = PresetConfig(GetParam(), 0.2);
  auto a = GenerateSyntheticLbsn(cfg);
  auto b = GenerateSyntheticLbsn(cfg);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.value().num_checkins(), b.value().num_checkins());
  for (size_t i = 0; i < a.value().num_checkins(); ++i) {
    EXPECT_EQ(a.value().checkins()[i].poi, b.value().checkins()[i].poi);
    EXPECT_EQ(a.value().checkins()[i].timestamp,
              b.value().checkins()[i].timestamp);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Presets, SyntheticPresetTest,
    ::testing::Values(SyntheticPreset::kGowallaLike,
                      SyntheticPreset::kYelpLike,
                      SyntheticPreset::kFoursquareLike,
                      SyntheticPreset::kGmu5kLike));

TEST(SyntheticTest, OutdoorCheckinsAreSummerHeavy) {
  auto data =
      GenerateSyntheticLbsn(PresetConfig(SyntheticPreset::kGowallaLike, 0.3));
  ASSERT_TRUE(data.ok());
  const Dataset& d = data.value();
  std::map<int, size_t> summer_winter = {{0, 0}, {1, 0}};
  for (const auto& c : d.checkins()) {
    if (d.poi(c.poi).category != PoiCategory::kOutdoor) continue;
    const int month = ToCivil(c.timestamp).month;
    if (month >= 6 && month <= 8) ++summer_winter[0];
    if (month == 12 || month <= 2) ++summer_winter[1];
  }
  // Each outdoor POI has its own peak month drawn from the summer-biased
  // category profile, so the aggregate is summer-heavy but not extreme.
  EXPECT_GT(summer_winter[0], 1.4 * summer_winter[1]);
}

TEST(SyntheticTest, FriendsShareMorePoisThanStrangers) {
  auto data =
      GenerateSyntheticLbsn(PresetConfig(SyntheticPreset::kGowallaLike, 0.3));
  ASSERT_TRUE(data.ok());
  const Dataset& d = data.value();
  auto sets = d.UserPoiSets();
  auto overlap = [&sets](uint32_t a, uint32_t b) {
    size_t inter = 0;
    for (uint32_t p : sets[a]) {
      if (std::binary_search(sets[b].begin(), sets[b].end(), p)) ++inter;
    }
    const size_t denom = std::min(sets[a].size(), sets[b].size());
    return denom ? static_cast<double>(inter) / denom : 0.0;
  };
  Rng rng(77);
  double friend_sim = 0.0, stranger_sim = 0.0;
  size_t n_friend = 0, n_stranger = 0;
  for (uint32_t u = 0; u < d.num_users(); ++u) {
    for (const uint32_t* f = d.social().NeighborsBegin(u);
         f != d.social().NeighborsEnd(u); ++f) {
      if (u < *f) {
        friend_sim += overlap(u, *f);
        ++n_friend;
      }
    }
    const uint32_t s = static_cast<uint32_t>(rng.UniformInt(d.num_users()));
    if (s != u && !d.social().HasEdge(u, s)) {
      stranger_sim += overlap(u, s);
      ++n_stranger;
    }
  }
  ASSERT_GT(n_friend, 0u);
  ASSERT_GT(n_stranger, 0u);
  // Social homophily: friends' POI sets overlap noticeably more.
  EXPECT_GT(friend_sim / n_friend, 1.3 * (stranger_sim / n_stranger));
}

TEST(SyntheticTest, RejectsDegenerateConfig) {
  SyntheticConfig cfg;
  cfg.num_users = 1;
  EXPECT_FALSE(GenerateSyntheticLbsn(cfg).ok());
}

}  // namespace
}  // namespace tcss
