#include <gtest/gtest.h>

#include <cmath>

#include "baselines/cp_als.h"
#include "baselines/lfbca.h"
#include "baselines/mcco.h"
#include "baselines/pure_svd.h"
#include "baselines/registry.h"
#include "baselines/tucker_hooi.h"
#include "common/rng.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "data/tensor_builder.h"
#include "eval/ranking_protocol.h"
#include "linalg/svd.h"

namespace tcss {
namespace {

struct World {
  Dataset data;
  SparseTensor train;
  std::vector<TensorCell> test_cells;
};

const World& SharedWorld() {
  static World* world = [] {
    auto data = GenerateSyntheticLbsn(
        PresetConfig(SyntheticPreset::kGowallaLike, 0.25));
    EXPECT_TRUE(data.ok());
    TrainTestSplit split = SplitCheckins(data.value(), 0.8, 42);
    auto train = BuildCheckinTensor(data.value(), split.train,
                                    TimeGranularity::kMonthOfYear);
    EXPECT_TRUE(train.ok());
    return new World{data.MoveValue(), train.MoveValue(),
                     EventsToCells(split.test,
                                   TimeGranularity::kMonthOfYear)};
  }();
  return *world;
}

TEST(RegistryTest, AllModelsConstructible) {
  for (const auto& name : RegisteredModelNames()) {
    auto model = MakeModel(name);
    ASSERT_NE(model, nullptr) << name;
    EXPECT_EQ(model->name().rfind(name, 0), 0u) << name;
  }
  EXPECT_EQ(MakeModel("NoSuchModel"), nullptr);
  EXPECT_EQ(RegisteredModelNames().size(), 13u);
}

// Every registered baseline must fit without error and beat chance on the
// shared synthetic world (chance Hit@10 is ~0.10).
class EveryModelTest : public ::testing::TestWithParam<std::string> {};

TEST_P(EveryModelTest, FitsAndBeatsChance) {
  const World& w = SharedWorld();
  auto model = MakeModel(GetParam(), 7);
  ASSERT_NE(model, nullptr);
  ASSERT_TRUE(
      model->Fit({&w.data, &w.train, TimeGranularity::kMonthOfYear, 7}).ok())
      << GetParam();
  RankingProtocolOptions opts;
  RankingMetrics m =
      EvaluateRanking(*model, w.data.num_pois(), w.test_cells, opts);
  EXPECT_GT(m.hit_at_k, 0.16) << GetParam();
  EXPECT_GT(m.mrr, 0.055) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Models, EveryModelTest,
    ::testing::Values("MCCO", "PureSVD", "STRNN", "STAN", "STGN", "CP",
                      "Tucker", "P-Tucker", "NCF", "NTM", "CoSTCo",
                      "Popularity", "UserKNN", "GeoMF"));

TEST(CpAlsTest, RecoversTrueLowRankTensor) {
  // Build a tensor that *is* rank-2 (entries from a CP model) and check
  // that CP-ALS reaches a near-perfect fit on the observed entries.
  Rng rng(1);
  const size_t I = 12, J = 10, K = 6, r = 2;
  Matrix a = Matrix::GaussianRandom(I, r, &rng, 1.0);
  Matrix b = Matrix::GaussianRandom(J, r, &rng, 1.0);
  Matrix c = Matrix::GaussianRandom(K, r, &rng, 1.0);
  SparseTensor x(I, J, K);
  for (uint32_t i = 0; i < I; ++i)
    for (uint32_t j = 0; j < J; ++j)
      for (uint32_t k = 0; k < K; ++k) {
        double v = 0;
        for (size_t t = 0; t < r; ++t) v += a(i, t) * b(j, t) * c(k, t);
        ASSERT_TRUE(x.Add(i, j, k, v).ok());
      }
  ASSERT_TRUE(x.Finalize(/*binary=*/false).ok());

  CpAls::Options opts;
  opts.rank = 2;
  opts.sweeps = 40;
  CpAls model(opts);
  Dataset dummy;  // CP ignores side information
  ASSERT_TRUE(model.Fit({&dummy, &x, TimeGranularity::kMonthOfYear, 1}).ok());
  double err = 0.0, norm = 0.0;
  for (const auto& e : x.entries()) {
    const double d = model.Score(e.i, e.j, e.k) - e.value;
    err += d * d;
    norm += e.value * e.value;
  }
  EXPECT_LT(std::sqrt(err / norm), 1e-4);
}

TEST(TuckerHooiTest, FactorsAreOrthonormalAndFitIsReasonable) {
  const World& w = SharedWorld();
  TuckerHooi::Options opts;
  opts.rank1 = opts.rank2 = 6;
  opts.rank3 = 6;
  TuckerHooi model(opts);
  ASSERT_TRUE(
      model.Fit({&w.data, &w.train, TimeGranularity::kMonthOfYear, 1}).ok());
  for (int mode = 0; mode < 3; ++mode) {
    const Matrix& f = model.factor(mode);
    EXPECT_LT(MaxAbsDiff(Gram(f), Matrix::Identity(f.cols())), 1e-8);
  }
  // Mean score on positives clearly above mean score overall.
  double pos = 0.0;
  for (const auto& e : w.train.entries()) pos += model.Score(e.i, e.j, e.k);
  pos /= static_cast<double>(w.train.nnz());
  EXPECT_GT(pos, 0.1);
}

TEST(PureSvdTest, MatchesDenseSvdScores) {
  // On a tiny tensor, PureSVD's implicit SVD must agree with a dense SVD
  // of the collapsed user-POI matrix.
  SparseTensor x(5, 4, 3);
  Rng rng(3);
  for (int n = 0; n < 12; ++n) {
    (void)x.Add(rng.UniformInt(5), rng.UniformInt(4), rng.UniformInt(3));
  }
  ASSERT_TRUE(x.Finalize().ok());
  Matrix dense(5, 4);
  for (const auto& e : x.entries()) dense(e.i, e.j) = 1.0;

  PureSvd::Options opts;
  opts.rank = 3;
  PureSvd model(opts);
  Dataset dummy;
  ASSERT_TRUE(model.Fit({&dummy, &x, TimeGranularity::kMonthOfYear, 1}).ok());

  auto svd = ComputeTruncatedSvd(dense, 3);
  ASSERT_TRUE(svd.ok());
  for (uint32_t i = 0; i < 5; ++i) {
    for (uint32_t j = 0; j < 4; ++j) {
      double expect = 0.0;
      for (size_t t = 0; t < 3; ++t) {
        expect += svd.value().u(i, t) * svd.value().s[t] * svd.value().v(j, t);
      }
      EXPECT_NEAR(model.Score(i, j, 0), expect, 1e-6);
      // Time index must not matter.
      EXPECT_DOUBLE_EQ(model.Score(i, j, 0), model.Score(i, j, 2));
    }
  }
}

TEST(MccoTest, CompletesRankOneMatrix) {
  // Observed entries: a random ~2/3 sample of an all-ones matrix;
  // soft-impute should push the *unobserved* cells well above zero.
  // (A structured mask like a checkerboard would be adversarial: the
  // checkerboard itself is a nuclear-norm-tied completion.)
  SparseTensor x(6, 6, 1);
  Rng mask_rng(9);
  for (uint32_t i = 0; i < 6; ++i) {
    for (uint32_t j = 0; j < 6; ++j) {
      if (mask_rng.Uniform() < 0.67) {
        ASSERT_TRUE(x.Add(i, j, 0).ok());
      }
    }
  }
  ASSERT_TRUE(x.Finalize().ok());
  Mcco::Options opts;
  opts.max_rank = 3;
  opts.tau = 0.3;
  opts.iterations = 40;
  Mcco model(opts);
  Dataset dummy;
  ASSERT_TRUE(model.Fit({&dummy, &x, TimeGranularity::kMonthOfYear, 1}).ok());
  double unobserved = 0.0;
  int n = 0;
  for (uint32_t i = 0; i < 6; ++i) {
    for (uint32_t j = 0; j < 6; ++j) {
      if (!x.Contains(i, j, 0)) {
        unobserved += model.Score(i, j, 0);
        ++n;
      }
    }
  }
  ASSERT_GT(n, 0);
  EXPECT_GT(unobserved / n, 0.5);
}

TEST(LfbcaTest, RevisitDampingDemotesVisitedPois) {
  const World& w = SharedWorld();
  Lfbca::Options damped_opts;
  Lfbca::Options open_opts;
  open_opts.revisit_damping = 1.0;
  Lfbca damped(damped_opts), open(open_opts);
  ASSERT_TRUE(
      damped.Fit({&w.data, &w.train, TimeGranularity::kMonthOfYear, 1}).ok());
  ASSERT_TRUE(
      open.Fit({&w.data, &w.train, TimeGranularity::kMonthOfYear, 1}).ok());
  // On visited POIs the damped score is strictly smaller.
  const auto& e = w.train.entries().front();
  EXPECT_LT(damped.Score(e.i, e.j, 0), open.Score(e.i, e.j, 0));
  // Ranking with damping (new-location recommendation) scores worse on a
  // revisit-heavy test set - the faithful behaviour of the original LFBCA.
  RankingProtocolOptions opts;
  auto md = EvaluateRanking(damped, w.data.num_pois(), w.test_cells, opts);
  auto mo = EvaluateRanking(open, w.data.num_pois(), w.test_cells, opts);
  EXPECT_LT(md.hit_at_k, mo.hit_at_k);
}

TEST(RegistryTest, ExtraModelsConstructible) {
  for (const auto& name : ExtraModelNames()) {
    auto model = MakeModel(name);
    ASSERT_NE(model, nullptr) << name;
    EXPECT_EQ(model->name(), name);
  }
}

TEST(BaselineTest, FitRejectsNullTensor) {
  for (const auto& name : RegisteredModelNames()) {
    auto model = MakeModel(name);
    EXPECT_FALSE(model->Fit({nullptr, nullptr}).ok()) << name;
  }
}

}  // namespace
}  // namespace tcss
