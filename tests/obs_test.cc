// Observability subsystem tests (ctest label "obs"): the sharded metric
// registry, histogram bucket/quantile edge cases, trace timers, the global
// kill switch, and the JSON snapshot exporter through the Env layer. The
// concurrent tests double as the TSan workload for tools/check.sh stage 3.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "common/env.h"
#include "common/fault_env.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace tcss {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::HistogramSnapshot;
using obs::MetricRegistry;
using obs::MetricsSnapshot;

// ---------------------------------------------------------------------------
// Registry

TEST(MetricRegistryTest, SameNameSamePointer) {
  MetricRegistry reg;
  Counter* a = reg.GetCounter("reg.counter");
  Counter* b = reg.GetCounter("reg.counter");
  EXPECT_EQ(a, b);
  EXPECT_NE(reg.GetCounter("reg.other"), a);
  EXPECT_EQ(reg.GetHistogram("reg.hist"), reg.GetHistogram("reg.hist"));
  EXPECT_EQ(reg.GetGauge("reg.gauge"), reg.GetGauge("reg.gauge"));
}

TEST(MetricRegistryTest, GlobalIsAProcessSingleton) {
  EXPECT_EQ(MetricRegistry::Global(), MetricRegistry::Global());
  EXPECT_NE(MetricRegistry::Global(), nullptr);
}

TEST(MetricRegistryTest, SnapshotIsNameSorted) {
  MetricRegistry reg;
  reg.GetCounter("z.last")->Add(1);
  reg.GetCounter("a.first")->Add(2);
  reg.GetCounter("m.mid")->Add(3);
  MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].name, "a.first");
  EXPECT_EQ(snap.counters[1].name, "m.mid");
  EXPECT_EQ(snap.counters[2].name, "z.last");
  EXPECT_EQ(snap.counters[0].value, 2u);
}

// ---------------------------------------------------------------------------
// Counter

TEST(CounterTest, SumsAcrossThreads) {
  MetricRegistry reg;
  Counter* c = reg.GetCounter("ctr.threads");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c->Increment();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c->Value(), kThreads * kPerThread);
}

TEST(CounterTest, KillSwitchDropsWrites) {
  MetricRegistry reg;
  Counter* c = reg.GetCounter("ctr.disabled");
  Histogram* h = reg.GetHistogram("hist.disabled");
  Gauge* g = reg.GetGauge("gauge.disabled");
  obs::SetMetricsEnabled(false);
  c->Add(7);
  h->Record(1.0);
  g->Set(3.5);
  obs::SetMetricsEnabled(true);
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(h->Snapshot().count, 0u);
  EXPECT_EQ(g->Value(), 0.0);
  c->Add(7);
  EXPECT_EQ(c->Value(), 7u);
}

// ---------------------------------------------------------------------------
// Histogram edge cases

TEST(HistogramTest, EmptySnapshot) {
  Histogram h;
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0.0);
  EXPECT_EQ(snap.Quantile(0.5), 0.0);
  EXPECT_EQ(snap.Quantile(0.99), 0.0);
}

TEST(HistogramTest, SingleSampleIsExactAtEveryQuantile) {
  Histogram h;
  h.Record(3.25);
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_DOUBLE_EQ(snap.sum, 3.25);
  EXPECT_DOUBLE_EQ(snap.min, 3.25);
  EXPECT_DOUBLE_EQ(snap.max, 3.25);
  // Clamping to [min, max] makes a one-sample histogram exact everywhere.
  EXPECT_DOUBLE_EQ(snap.Quantile(0.0), 3.25);
  EXPECT_DOUBLE_EQ(snap.Quantile(0.5), 3.25);
  EXPECT_DOUBLE_EQ(snap.Quantile(1.0), 3.25);
}

TEST(HistogramTest, ValueBeyondLastBucketKeepsExactMax) {
  Histogram h;
  h.Record(1e12);  // far past the covered bucket range
  h.Record(1.0);
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 2u);
  EXPECT_DOUBLE_EQ(snap.max, 1e12);
  // The overflow bucket's upper bound is clamped to the observed max.
  EXPECT_DOUBLE_EQ(snap.Quantile(0.99), 1e12);
  EXPECT_DOUBLE_EQ(snap.Quantile(1.0), 1e12);
}

TEST(HistogramTest, TinyZeroAndNegativeLandInBucketZero) {
  Histogram h;
  h.Record(0.0);
  h.Record(-5.0);
  h.Record(1e-9);
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_DOUBLE_EQ(snap.min, -5.0);
  // All samples sit in bucket 0; quantiles clamp into [min, max].
  EXPECT_LE(snap.Quantile(0.5), snap.max);
  EXPECT_GE(snap.Quantile(0.5), snap.min);
}

TEST(HistogramTest, BucketIndexIsMonotone) {
  size_t prev = 0;
  for (double v = 1e-7; v < 1e9; v *= 1.7) {
    const size_t idx = Histogram::BucketIndex(v);
    EXPECT_GE(idx, prev) << "value " << v;
    EXPECT_LT(idx, Histogram::kNumBuckets);
    prev = idx;
  }
  EXPECT_EQ(Histogram::BucketIndex(1e300), Histogram::kNumBuckets - 1);
}

TEST(HistogramTest, QuantileResolutionWithinBucketWidth) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(static_cast<double>(i));
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 1000u);
  // Buckets are ~19% wide, so the reported p50 must be within ~25% of the
  // true median and quantiles must be monotone.
  const double p50 = snap.Quantile(0.50);
  EXPECT_GT(p50, 500.0 * 0.75);
  EXPECT_LT(p50, 500.0 * 1.25);
  EXPECT_LE(snap.Quantile(0.50), snap.Quantile(0.95));
  EXPECT_LE(snap.Quantile(0.95), snap.Quantile(0.99));
  EXPECT_LE(snap.Quantile(0.99), snap.max);
}

TEST(HistogramTest, ShardMergeAcrossThreads) {
  Histogram h;
  constexpr int kThreads = 16;
  constexpr int kPerThread = 500;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(1.0 + static_cast<double>(t));
      }
    });
  }
  for (auto& w : workers) w.join();
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 16.0);
  uint64_t bucket_total = 0;
  for (uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, snap.count);
}

TEST(HistogramTest, SnapshotMergeCombinesDistributions) {
  Histogram a, b;
  a.Record(1.0);
  a.Record(2.0);
  b.Record(100.0);
  HistogramSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  EXPECT_EQ(merged.count, 3u);
  EXPECT_DOUBLE_EQ(merged.min, 1.0);
  EXPECT_DOUBLE_EQ(merged.max, 100.0);
  HistogramSnapshot empty;
  empty.Merge(merged);  // merge into a default-constructed snapshot
  EXPECT_EQ(empty.count, 3u);
  merged.Merge(HistogramSnapshot());  // merging empty is a no-op
  EXPECT_EQ(merged.count, 3u);
}

// Concurrent Record + Snapshot: meaningful mostly under TSan, where any
// unlocked access to the shard state is reported as a race.
TEST(HistogramTest, ConcurrentRecordAndSnapshot) {
  Histogram h;
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 20000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&h] {
      double v = 0.5;
      for (int i = 0; i < kPerWriter; ++i) {
        h.Record(v);
        v = v < 1e6 ? v * 1.01 : 0.5;
      }
    });
  }
  uint64_t last = 0;
  for (int i = 0; i < 200; ++i) {
    HistogramSnapshot snap = h.Snapshot();
    EXPECT_GE(snap.count, last);  // counts only grow
    last = snap.count;
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(h.Snapshot().count,
            static_cast<uint64_t>(kWriters) * kPerWriter);
}

// ---------------------------------------------------------------------------
// Trace timers

TEST(ScopedTimerTest, RecordsOneSampleOnDestruction) {
  MetricRegistry reg;
  Histogram* h = reg.GetHistogram("timer.hist");
  {
    obs::ScopedTimer timer(h);
  }
  HistogramSnapshot snap = h->Snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_GE(snap.max, 0.0);
}

TEST(ScopedTimerTest, StopIsIdempotentAndNullHistogramIsInert) {
  MetricRegistry reg;
  Histogram* h = reg.GetHistogram("timer.idempotent");
  obs::ScopedTimer timer(h);
  timer.StopAndRecordMs();
  timer.StopAndRecordMs();  // second stop must not double-record
  EXPECT_EQ(h->Snapshot().count, 1u);
  obs::ScopedTimer inert(nullptr);  // must not crash on destruction
}

// ---------------------------------------------------------------------------
// JSON export

TEST(MetricsJsonTest, SnapshotContainsRegisteredMetrics) {
  MetricRegistry reg;
  reg.GetCounter("json.requests")->Add(42);
  reg.GetGauge("json.lr")->Set(0.125);
  Histogram* h = reg.GetHistogram("json.latency_ms");
  h->Record(2.0);
  h->Record(4.0);
  const std::string json = reg.Snapshot().ToJson();
  EXPECT_NE(json.find("\"schema\": \"tcss.metrics.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"json.requests\": 42"), std::string::npos);
  EXPECT_NE(json.find("json.lr"), std::string::npos);
  EXPECT_NE(json.find("json.latency_ms"), std::string::npos);
  EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(MetricsJsonTest, DumpJsonWritesParseableFile) {
  MetricRegistry reg;
  reg.GetCounter("dump.count")->Add(3);
  const std::string path = ::testing::TempDir() + "/tcss_obs_metrics.json";
  ASSERT_TRUE(reg.DumpJson(Env::Default(), path).ok());
  auto read = Env::Default()->ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_NE(read.value().find("\"dump.count\": 3"), std::string::npos);
  EXPECT_EQ(read.value().front(), '{');
  EXPECT_EQ(read.value().back(), '\n');
}

TEST(MetricsJsonTest, DumpJsonFailsCleanlyUnderFaultInjection) {
  MetricRegistry reg;
  reg.GetCounter("dump.faulty")->Add(1);
  const std::string path = ::testing::TempDir() + "/tcss_obs_faulty.json";
  FaultInjectionEnv env(Env::Default());
  env.set_fail_after(0);  // first filesystem op fails
  EXPECT_FALSE(reg.DumpJson(&env, path).ok());
  // The atomic-write protocol must not leave a torn destination file.
  EXPECT_FALSE(Env::Default()->FileExists(path));
}

}  // namespace
}  // namespace tcss
