// Tests for the CSF tensor format and the Lanczos eigensolver - the two
// performance-oriented alternatives to the COO MTTKRP and subspace
// iteration.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "linalg/jacobi_eigen.h"
#include "linalg/lanczos.h"
#include "tensor/csf_tensor.h"
#include "tensor/gram_operator.h"
#include "tensor/mttkrp.h"

namespace tcss {
namespace {

SparseTensor RandomTensor(size_t I, size_t J, size_t K, size_t nnz,
                          uint64_t seed, bool binary) {
  SparseTensor t(I, J, K);
  Rng rng(seed);
  for (size_t n = 0; n < nnz; ++n) {
    EXPECT_TRUE(t.Add(rng.UniformInt(I), rng.UniformInt(J), rng.UniformInt(K),
                      binary ? 1.0 : rng.Uniform(0.1, 2.0))
                    .ok());
  }
  EXPECT_TRUE(t.Finalize(binary).ok());
  return t;
}

TEST(CsfTensorTest, StructureCountsAreConsistent) {
  SparseTensor coo = RandomTensor(10, 8, 6, 120, 1, true);
  CsfTensor csf(coo);
  EXPECT_EQ(csf.nnz(), coo.nnz());
  EXPECT_LE(csf.num_slices(), coo.nnz());
  EXPECT_LE(csf.num_fibers(), coo.nnz());
  EXPECT_GE(csf.num_fibers(), csf.num_slices());
  EXPECT_NEAR(csf.SquaredSum(), coo.SquaredSum(), 1e-12);
  // Slice ids strictly increasing; fiber ids within a slice increasing
  // (inherited from the COO sort order).
  for (size_t s = 1; s < csf.slice_ids().size(); ++s) {
    EXPECT_LT(csf.slice_ids()[s - 1], csf.slice_ids()[s]);
  }
}

class CsfMttkrpTest : public ::testing::TestWithParam<int> {};

TEST_P(CsfMttkrpTest, MatchesCooMttkrp) {
  Rng rng(100 + GetParam());
  const size_t I = 4 + rng.UniformInt(12);
  const size_t J = 4 + rng.UniformInt(12);
  const size_t K = 3 + rng.UniformInt(10);
  const size_t nnz = 1 + rng.UniformInt(I * J);
  const bool binary = GetParam() % 2 == 0;
  SparseTensor coo = RandomTensor(I, J, K, nnz, 200 + GetParam(), binary);
  CsfTensor csf(coo);
  const size_t r = 1 + rng.UniformInt(6);
  Matrix factors[3] = {Matrix(I, r), Matrix::GaussianRandom(J, r, &rng),
                       Matrix::GaussianRandom(K, r, &rng)};
  Matrix coo_out = Mttkrp(coo, factors, 0);
  Matrix csf_out = csf.MttkrpMode0(factors[1], factors[2]);
  EXPECT_LT(MaxAbsDiff(coo_out, csf_out), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsfMttkrpTest, ::testing::Range(0, 12));

TEST(CsfTensorTest, EmptyTensor) {
  SparseTensor coo(3, 3, 3);
  ASSERT_TRUE(coo.Finalize().ok());
  CsfTensor csf(coo);
  EXPECT_EQ(csf.nnz(), 0u);
  EXPECT_EQ(csf.num_slices(), 0u);
  Matrix out = csf.MttkrpMode0(Matrix(3, 2, 1.0), Matrix(3, 2, 1.0));
  EXPECT_DOUBLE_EQ(out.MaxAbs(), 0.0);
}

Matrix RandomPsd(size_t n, Rng* rng) {
  Matrix b = Matrix::GaussianRandom(n, n, rng);
  return MatMulT(b, b);
}

TEST(LanczosTest, MatchesJacobiOnPsdMatrix) {
  Rng rng(5);
  Matrix a = RandomPsd(40, &rng);
  DenseOperator op(&a);
  auto lanczos = LanczosEigen(op, 6);
  ASSERT_TRUE(lanczos.ok()) << lanczos.status().ToString();
  auto full = JacobiEigen(a);
  ASSERT_TRUE(full.ok());
  for (size_t t = 0; t < 6; ++t) {
    EXPECT_NEAR(lanczos.value().values[t], full.value().values[t],
                1e-6 * full.value().values[0]);
  }
  // Eigenvector residuals ||A v - lambda v|| are small.
  for (size_t t = 0; t < 6; ++t) {
    auto v = lanczos.value().vectors.Column(t);
    auto av = MatVec(a, v);
    double res = 0.0;
    for (size_t i = 0; i < v.size(); ++i) {
      const double d = av[i] - lanczos.value().values[t] * v[i];
      res += d * d;
    }
    EXPECT_LT(std::sqrt(res), 1e-5 * full.value().values[0]);
  }
}

TEST(LanczosTest, AgreesWithSubspaceIterationOnShiftedGramOperator) {
  // The zero-diagonal Gram is indefinite; subspace (power) iteration
  // finds the largest-magnitude eigenvalues, while Lanczos finds the
  // algebraically largest. After a PSD shift the two semantics coincide
  // (this is exactly how spectral initialization uses the operator).
  SparseTensor x = RandomTensor(25, 20, 8, 300, 7, true);
  ModeGramOperator op(x, 0, /*zero_diagonal=*/true);
  double sigma = 0.0;
  for (double d : op.Diagonal()) sigma = std::max(sigma, d);
  ShiftedOperator shifted(&op, sigma);
  auto lanczos = LanczosEigen(shifted, 5);
  auto subspace = SubspaceEigen(shifted, 5);
  ASSERT_TRUE(lanczos.ok());
  ASSERT_TRUE(subspace.ok());
  for (size_t t = 0; t < 5; ++t) {
    EXPECT_NEAR(lanczos.value().values[t], subspace.value().values[t],
                1e-5 * std::max(1.0, std::fabs(subspace.value().values[0])));
  }
}

TEST(ShiftedOperatorTest, ShiftsSpectrumNotVectors) {
  Rng rng(21);
  Matrix b = Matrix::GaussianRandom(15, 15, &rng);
  Matrix a = MatMulT(b, b);
  DenseOperator base(&a);
  ShiftedOperator shifted(&base, 3.5);
  auto top_base = LanczosEigen(base, 3);
  auto top_shift = LanczosEigen(shifted, 3);
  ASSERT_TRUE(top_base.ok());
  ASSERT_TRUE(top_shift.ok());
  for (size_t t = 0; t < 3; ++t) {
    EXPECT_NEAR(top_shift.value().values[t],
                top_base.value().values[t] + 3.5, 1e-6);
  }
}

TEST(LanczosTest, FullDimensionKrylov) {
  Rng rng(9);
  Matrix a = RandomPsd(12, &rng);
  DenseOperator op(&a);
  LanczosOptions opts;
  opts.krylov_dim = 12;
  auto lanczos = LanczosEigen(op, 12, opts);
  ASSERT_TRUE(lanczos.ok());
  auto full = JacobiEigen(a);
  ASSERT_TRUE(full.ok());
  for (size_t t = 0; t < 12; ++t) {
    EXPECT_NEAR(lanczos.value().values[t], full.value().values[t], 1e-6);
  }
}

TEST(LanczosTest, RejectsBadRank) {
  Rng rng(11);
  Matrix a = RandomPsd(5, &rng);
  DenseOperator op(&a);
  EXPECT_FALSE(LanczosEigen(op, 0).ok());
  EXPECT_FALSE(LanczosEigen(op, 6).ok());
}

TEST(LanczosTest, HandlesLowRankOperator) {
  // Rank-2 PSD matrix: Lanczos hits an invariant subspace early and must
  // recover via restart.
  Rng rng(13);
  Matrix b = Matrix::GaussianRandom(20, 2, &rng);
  Matrix a = MatMulT(b, b);
  DenseOperator op(&a);
  auto lanczos = LanczosEigen(op, 4);
  ASSERT_TRUE(lanczos.ok());
  EXPECT_GT(lanczos.value().values[0], 0.0);
  EXPECT_GT(lanczos.value().values[1], 0.0);
  EXPECT_NEAR(lanczos.value().values[2], 0.0, 1e-8);
  EXPECT_NEAR(lanczos.value().values[3], 0.0, 1e-8);
}

}  // namespace
}  // namespace tcss
