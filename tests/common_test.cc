#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/strings.h"

namespace tcss {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad rank");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad rank");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad rank");
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::NotConverged("x").code(), StatusCode::kNotConverged);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveValueTransfersOwnership) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = r.MoveValue();
  EXPECT_EQ(v.size(), 3u);
}

Status Helper(bool fail) {
  TCSS_RETURN_IF_ERROR(fail ? Status::Internal("inner") : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(Helper(false).ok());
  EXPECT_EQ(Helper(true).code(), StatusCode::kInternal);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  double mean = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    mean += u;
  }
  mean /= 10000.0;
  EXPECT_NEAR(mean, 0.5, 0.02);
}

TEST(RngTest, UniformIntIsInRangeAndRoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = rng.UniformInt(10);
    ASSERT_LT(v, 10u);
    ++counts[v];
  }
  for (int c : counts) EXPECT_NEAR(c, 1000, 150);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double mean = 0.0, var = 0.0;
  const int n = 20000;
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.Gaussian();
  for (double x : xs) mean += x;
  mean /= n;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= n;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(19);
  std::vector<double> w = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 10000; ++i) ++counts[rng.Categorical(w)];
  EXPECT_NEAR(counts[0] / 10000.0, 0.1, 0.02);
  EXPECT_NEAR(counts[1] / 10000.0, 0.3, 0.03);
  EXPECT_NEAR(counts[2] / 10000.0, 0.6, 0.03);
}

TEST(RngTest, CategoricalZeroWeightsReturnsZero) {
  Rng rng(23);
  EXPECT_EQ(rng.Categorical({0.0, 0.0}), 0u);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(29);
  for (size_t k : {0u, 1u, 5u, 50u, 100u}) {
    auto s = rng.SampleWithoutReplacement(100, k);
    EXPECT_EQ(s.size(), k);
    std::set<size_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), k);
    for (size_t v : s) EXPECT_LT(v, 100u);
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, TrimWhitespace) {
  EXPECT_EQ(Trim("  x y \t\n"), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringsTest, ParseDouble) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("3.25", &v));
  EXPECT_DOUBLE_EQ(v, 3.25);
  EXPECT_TRUE(ParseDouble(" -1e-3 ", &v));
  EXPECT_DOUBLE_EQ(v, -1e-3);
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));
  EXPECT_FALSE(ParseDouble("", &v));
}

TEST(StringsTest, ParseIndex) {
  size_t v = 0;
  EXPECT_TRUE(ParseIndex("042", &v));
  EXPECT_EQ(v, 42u);
  EXPECT_FALSE(ParseIndex("-3", &v));
  EXPECT_FALSE(ParseIndex("3.5", &v));
  EXPECT_FALSE(ParseIndex("", &v));
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.2345), "1.23");
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch sw;
  volatile double sink = 0.0;
  for (int i = 0; i < 2000000; ++i) {
    sink = sink + std::sqrt(double(i));
  }
  EXPECT_GT(sw.ElapsedSeconds(), 0.0);
  const double a = sw.ElapsedMillis();
  const double b = sw.ElapsedMillis();
  EXPECT_LE(a, b);  // monotone
  double t1 = sw.ElapsedSeconds();
  sw.Restart();
  EXPECT_LE(sw.ElapsedSeconds(), t1 + 1.0);
}

}  // namespace
}  // namespace tcss
