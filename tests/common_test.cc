#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <set>

#include "common/crc32.h"
#include "common/env.h"
#include "common/fault_env.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/text_io.h"

namespace tcss {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad rank");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad rank");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad rank");
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::NotConverged("x").code(), StatusCode::kNotConverged);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveValueTransfersOwnership) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = r.MoveValue();
  EXPECT_EQ(v.size(), 3u);
}

Status Helper(bool fail) {
  TCSS_RETURN_IF_ERROR(fail ? Status::Internal("inner") : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(Helper(false).ok());
  EXPECT_EQ(Helper(true).code(), StatusCode::kInternal);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  double mean = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    mean += u;
  }
  mean /= 10000.0;
  EXPECT_NEAR(mean, 0.5, 0.02);
}

TEST(RngTest, UniformIntIsInRangeAndRoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = rng.UniformInt(10);
    ASSERT_LT(v, 10u);
    ++counts[v];
  }
  for (int c : counts) EXPECT_NEAR(c, 1000, 150);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double mean = 0.0, var = 0.0;
  const int n = 20000;
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.Gaussian();
  for (double x : xs) mean += x;
  mean /= n;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= n;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(19);
  std::vector<double> w = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 10000; ++i) ++counts[rng.Categorical(w)];
  EXPECT_NEAR(counts[0] / 10000.0, 0.1, 0.02);
  EXPECT_NEAR(counts[1] / 10000.0, 0.3, 0.03);
  EXPECT_NEAR(counts[2] / 10000.0, 0.6, 0.03);
}

TEST(RngTest, CategoricalZeroWeightsReturnsZero) {
  Rng rng(23);
  EXPECT_EQ(rng.Categorical({0.0, 0.0}), 0u);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(29);
  for (size_t k : {0u, 1u, 5u, 50u, 100u}) {
    auto s = rng.SampleWithoutReplacement(100, k);
    EXPECT_EQ(s.size(), k);
    std::set<size_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), k);
    for (size_t v : s) EXPECT_LT(v, 100u);
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, TrimWhitespace) {
  EXPECT_EQ(Trim("  x y \t\n"), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringsTest, ParseDouble) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("3.25", &v));
  EXPECT_DOUBLE_EQ(v, 3.25);
  EXPECT_TRUE(ParseDouble(" -1e-3 ", &v));
  EXPECT_DOUBLE_EQ(v, -1e-3);
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));
  EXPECT_FALSE(ParseDouble("", &v));
}

TEST(StringsTest, ParseIndex) {
  size_t v = 0;
  EXPECT_TRUE(ParseIndex("042", &v));
  EXPECT_EQ(v, 42u);
  EXPECT_FALSE(ParseIndex("-3", &v));
  EXPECT_FALSE(ParseIndex("3.5", &v));
  EXPECT_FALSE(ParseIndex("", &v));
}

TEST(StringsTest, ParseInt64AcceptsFullRange) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("0", &v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(ParseInt64("-0", &v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(ParseInt64("1300000000", &v));
  EXPECT_EQ(v, 1300000000);
  EXPECT_TRUE(ParseInt64("-62135596800", &v));
  EXPECT_EQ(v, -62135596800);
  EXPECT_TRUE(ParseInt64("9223372036854775807", &v));
  EXPECT_EQ(v, INT64_MAX);
  EXPECT_TRUE(ParseInt64("-9223372036854775808", &v));
  EXPECT_EQ(v, INT64_MIN);
}

TEST(StringsTest, ParseInt64RejectsNonIntegersAndOverflow) {
  int64_t v = 0;
  // Floats must be rejected, not truncated: a "1.5e9" timestamp silently
  // becoming 1 would corrupt every time bin derived from it.
  EXPECT_FALSE(ParseInt64("1.5e9", &v));
  EXPECT_FALSE(ParseInt64("3.0", &v));
  EXPECT_FALSE(ParseInt64("1e3", &v));
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("-", &v));
  EXPECT_FALSE(ParseInt64("+5", &v));
  EXPECT_FALSE(ParseInt64("12x", &v));
  EXPECT_FALSE(ParseInt64("nan", &v));
  // Surrounding whitespace is trimmed, like ParseDouble.
  EXPECT_TRUE(ParseInt64(" 12 ", &v));
  EXPECT_EQ(v, 12);
  // One past each end of the int64 range.
  EXPECT_FALSE(ParseInt64("9223372036854775808", &v));
  EXPECT_FALSE(ParseInt64("-9223372036854775809", &v));
  EXPECT_FALSE(ParseInt64("99999999999999999999999999", &v));
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.2345), "1.23");
}

TEST(Crc32Test, MatchesKnownAnswer) {
  // The classic CRC-32 check value: crc32("123456789") == 0xCBF43926.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

TEST(Crc32Test, IsIncremental) {
  const std::string s = "the quick brown fox";
  const uint32_t whole = Crc32(s);
  uint32_t inc = Crc32(s.substr(0, 7));
  inc = Crc32(s.substr(7), inc);
  EXPECT_EQ(inc, whole);
}

TEST(Crc32Test, FooterRoundTrips) {
  std::string buf = "payload line 1\npayload line 2\n";
  const std::string original = buf;
  AppendCrcFooter(&buf);
  std::string_view payload;
  ASSERT_TRUE(ValidateCrcFooter(buf, &payload).ok());
  EXPECT_EQ(payload, original);
}

TEST(Crc32Test, FooterCatchesCorruptionAndTruncation) {
  std::string buf = "some payload\n";
  AppendCrcFooter(&buf);
  std::string_view payload;
  // Flip a payload bit.
  std::string bad = buf;
  bad[2] ^= 0x01;
  EXPECT_FALSE(ValidateCrcFooter(bad, &payload).ok());
  // Flip a footer digit.
  bad = buf;
  bad[bad.size() - 2] = bad[bad.size() - 2] == '0' ? '1' : '0';
  EXPECT_FALSE(ValidateCrcFooter(bad, &payload).ok());
  // Every strict prefix fails — except dropping only the final newline,
  // which leaves the checksum and payload complete (harmless).
  for (size_t n = 0; n + 1 < buf.size(); ++n) {
    EXPECT_FALSE(ValidateCrcFooter(buf.substr(0, n), &payload).ok())
        << "prefix of " << n << " bytes validated";
  }
  // No footer at all.
  EXPECT_FALSE(ValidateCrcFooter("no footer here\n", &payload).ok());
}

TEST(TextScannerTest, TokenizesAndParses) {
  TextScanner s("hdr 12 -7 0x1.8p+1 deadbeef  \n");
  EXPECT_TRUE(s.Expect("hdr"));
  size_t n = 0;
  EXPECT_TRUE(s.NextSize(&n));
  EXPECT_EQ(n, 12u);
  int64_t i = 0;
  EXPECT_TRUE(s.NextInt64(&i));
  EXPECT_EQ(i, -7);
  double d = 0;
  EXPECT_TRUE(s.NextDouble(&d));
  EXPECT_DOUBLE_EQ(d, 3.0);
  uint32_t h = 0;
  EXPECT_TRUE(s.NextHex32(&h));
  EXPECT_EQ(h, 0xDEADBEEFu);
  EXPECT_TRUE(s.AtEnd());
}

TEST(TextScannerTest, RejectsMalformedTokens) {
  {
    TextScanner s("xyz");
    size_t n;
    EXPECT_FALSE(s.NextSize(&n));
  }
  {
    TextScanner s("-3");
    size_t n;
    EXPECT_FALSE(s.NextSize(&n));
  }
  {
    TextScanner s("1.5oops");
    double d;
    EXPECT_FALSE(s.NextDouble(&d));
  }
  {
    TextScanner s("DEADBEEF");  // uppercase: not what the writer emits
    uint32_t h;
    EXPECT_FALSE(s.NextHex32(&h));
  }
  {
    TextScanner s("abc");  // too short for hex32
    uint32_t h;
    EXPECT_FALSE(s.NextHex32(&h));
  }
  {
    TextScanner s("");
    EXPECT_TRUE(s.AtEnd());
    EXPECT_FALSE(s.Expect("x"));
  }
}

TEST(TextScannerTest, ParsesNonFiniteDoubles) {
  // The scanner accepts them; format loaders reject them afterwards.
  TextScanner s("nan inf -inf");
  double d = 0;
  EXPECT_TRUE(s.NextDouble(&d));
  EXPECT_TRUE(std::isnan(d));
  EXPECT_TRUE(s.NextDouble(&d));
  EXPECT_TRUE(std::isinf(d));
  EXPECT_TRUE(s.NextDouble(&d));
  EXPECT_TRUE(std::isinf(d));
}

TEST(EnvTest, WriteListReadDelete) {
  Env* env = Env::Default();
  const std::string dir = ::testing::TempDir() + "/tcss_env_test";
  ASSERT_TRUE(env->CreateDirs(dir).ok());
  const std::string path = dir + "/file.txt";
  {
    auto f = env->NewWritableFile(path);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE(f.value()->Append("hello ").ok());
    ASSERT_TRUE(f.value()->Append("world").ok());
    ASSERT_TRUE(f.value()->Flush().ok());
    ASSERT_TRUE(f.value()->Close().ok());
  }
  EXPECT_TRUE(env->FileExists(path));
  auto contents = env->ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "hello world");
  auto names = env->ListDir(dir);
  ASSERT_TRUE(names.ok());
  EXPECT_NE(std::find(names.value().begin(), names.value().end(),
                      "file.txt"),
            names.value().end());
  EXPECT_TRUE(env->DeleteFile(path).ok());
  EXPECT_FALSE(env->FileExists(path));
  EXPECT_FALSE(env->ReadFileToString(path).ok());
}

TEST(EnvTest, AtomicWriteFileReplacesAndSurvives) {
  Env* env = Env::Default();
  const std::string path = ::testing::TempDir() + "/tcss_atomic.txt";
  ASSERT_TRUE(AtomicWriteFile(env, path, "first").ok());
  ASSERT_TRUE(AtomicWriteFile(env, path, "second").ok());
  auto contents = env->ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "second");
  EXPECT_FALSE(env->FileExists(path + ".tmp"));  // tmp cleaned by rename
}

TEST(FaultEnvTest, CountdownFailsKthAndLaterOps) {
  const std::string path = ::testing::TempDir() + "/tcss_fault.txt";
  FaultInjectionEnv env(Env::Default());
  env.set_fail_after(1);  // op 0 succeeds, op 1+ fail
  auto f = env.NewWritableFile(path);  // op 0
  ASSERT_TRUE(f.ok());
  EXPECT_FALSE(f.value()->Append("boom").ok());   // op 1: fails
  EXPECT_FALSE(f.value()->Flush().ok());          // op 2: still failing
  EXPECT_EQ(env.ops_attempted(), 3);
  EXPECT_EQ(env.ops_failed(), 2);
}

TEST(FaultEnvTest, DisabledInjectionPassesThrough) {
  const std::string path = ::testing::TempDir() + "/tcss_nofault.txt";
  FaultInjectionEnv env(Env::Default());
  ASSERT_TRUE(AtomicWriteFile(&env, path, "fine").ok());
  auto contents = env.ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents.value(), "fine");
  EXPECT_GT(env.ops_attempted(), 0);
  EXPECT_EQ(env.ops_failed(), 0);
}

TEST(FaultEnvTest, TruncateOnFailureTearsTheWrite) {
  const std::string path = ::testing::TempDir() + "/tcss_torn.txt";
  FaultInjectionEnv env(Env::Default());
  env.set_fail_after(1);
  env.set_truncate_on_failure(true);
  auto f = env.NewWritableFile(path);  // op 0
  ASSERT_TRUE(f.ok());
  EXPECT_FALSE(f.value()->Append("0123456789").ok());  // op 1: torn
  // A restarted process sees a prefix of the payload, not all of it.
  auto contents = Env::Default()->ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_LT(contents.value().size(), 10u);
  EXPECT_EQ(contents.value(), std::string("0123456789")
                                  .substr(0, contents.value().size()));
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch sw;
  volatile double sink = 0.0;
  for (int i = 0; i < 2000000; ++i) {
    sink = sink + std::sqrt(double(i));
  }
  EXPECT_GT(sw.ElapsedSeconds(), 0.0);
  const double a = sw.ElapsedMillis();
  const double b = sw.ElapsedMillis();
  EXPECT_LE(a, b);  // monotone
  double t1 = sw.ElapsedSeconds();
  sw.Restart();
  EXPECT_LE(sw.ElapsedSeconds(), t1 + 1.0);
}

TEST(LoggingTest, ParseLogLevelAcceptsKnownNamesCaseInsensitively) {
  LogLevel level = LogLevel::kInfo;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("INFO", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(ParseLogLevel("Warning", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("warn", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("ERROR", &level));
  EXPECT_EQ(level, LogLevel::kError);
}

TEST(LoggingTest, ParseLogLevelRejectsUnknownNames) {
  LogLevel level = LogLevel::kInfo;
  EXPECT_FALSE(ParseLogLevel("", &level));
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
  EXPECT_FALSE(ParseLogLevel("warned", &level));   // prefix + extra
  EXPECT_FALSE(ParseLogLevel("deb", &level));      // strict prefix
  EXPECT_EQ(level, LogLevel::kInfo);               // output untouched
}

TEST(LoggingTest, InitLogLevelFromEnvAppliesAndKeepsDefaultOnUnknown) {
  const LogLevel original = GetLogLevel();
  setenv("TCSS_LOG_LEVEL", "error", 1);
  InitLogLevelFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Unknown values warn on stderr and keep the current level.
  setenv("TCSS_LOG_LEVEL", "shout", 1);
  InitLogLevelFromEnv();
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  unsetenv("TCSS_LOG_LEVEL");
  SetLogLevel(original);
}

}  // namespace
}  // namespace tcss
