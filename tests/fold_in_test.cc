// Tests for the fold-in API (new-user embedding), the extra ranking
// metrics (NDCG@K, Precision@K), and the serving layer's generation-keyed
// fold-in cache contract.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "common/rng.h"
#include "core/fold_in.h"
#include "core/incremental_fold_in.h"
#include "core/model_io.h"
#include "core/tcss_model.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "data/tensor_builder.h"
#include "eval/ranking_protocol.h"
#include "serve/model_watcher.h"
#include "serve/recommend_service.h"

namespace tcss {
namespace {

TEST(MetricsExtraTest, NdcgAndPrecisionValues) {
  EXPECT_DOUBLE_EQ(NdcgAtK(1.0, 10), 1.0);
  EXPECT_NEAR(NdcgAtK(3.0, 10), 1.0 / std::log2(4.0), 1e-12);
  EXPECT_DOUBLE_EQ(NdcgAtK(11.0, 10), 0.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK(1.0, 10), 0.1);
  EXPECT_DOUBLE_EQ(PrecisionAtK(10.0, 10), 0.1);
  EXPECT_DOUBLE_EQ(PrecisionAtK(10.5, 10), 0.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK(1.0, 0), 0.0);
}

TEST(MetricsExtraTest, ProtocolReportsNdcg) {
  // Oracle scorer -> every rank is 1 -> NDCG 1, Precision 1/K.
  std::vector<TensorCell> cells = {{0, 5, 0}, {1, 7, 3}};
  auto score = [&cells](uint32_t i, uint32_t j, uint32_t k) {
    for (const auto& c : cells) {
      if (c.i == i && c.j == j && c.k == k) return 1.0;
    }
    return 0.0;
  };
  RankingProtocolOptions opts;
  RankingMetrics m = EvaluateRanking(score, 500, cells, opts);
  EXPECT_NEAR(m.ndcg_at_k, 1.0, 1e-9);
  EXPECT_NEAR(m.precision_at_k, 0.1, 1e-9);
}

struct Trained {
  Dataset data;
  SparseTensor train;
  FactorModel model;
};

Trained TrainSmall() {
  auto data = GenerateSyntheticLbsn(
      PresetConfig(SyntheticPreset::kGowallaLike, 0.25));
  EXPECT_TRUE(data.ok());
  TrainTestSplit split = SplitCheckins(data.value(), 0.8, 11);
  auto train = BuildCheckinTensor(data.value(), split.train,
                                  TimeGranularity::kMonthOfYear);
  EXPECT_TRUE(train.ok());
  TcssConfig cfg;
  cfg.epochs = 150;
  TcssModel model(cfg);
  EXPECT_TRUE(model
                  .Fit({&data.value(), &train.value(),
                        TimeGranularity::kMonthOfYear, 1})
                  .ok());
  return {data.MoveValue(), train.MoveValue(), model.factors()};
}

TEST(FoldInTest, RecoversExistingUserBehaviour) {
  // Fold in an *existing* user from their own observed cells; the folded
  // embedding must score that user's held-in cells far above random ones.
  Trained t = TrainSmall();
  // Pick the most active user in the train tensor.
  std::vector<size_t> count(t.train.dim_i(), 0);
  for (const auto& e : t.train.entries()) ++count[e.i];
  uint32_t user = 0;
  for (uint32_t i = 0; i < count.size(); ++i) {
    if (count[i] > count[user]) user = i;
  }
  std::vector<TensorCell> obs;
  for (const auto& e : t.train.entries()) {
    if (e.i == user) obs.push_back({e.i, e.j, e.k});
  }
  ASSERT_GE(obs.size(), 5u);

  auto folded = FoldInUser(t.model, obs);
  ASSERT_TRUE(folded.ok()) << folded.status().ToString();
  const auto& u = folded.value();
  ASSERT_EQ(u.size(), t.model.rank());

  double pos = 0.0;
  for (const auto& c : obs) pos += FoldInScore(t.model, u, c.j, c.k);
  pos /= static_cast<double>(obs.size());

  Rng rng(3);
  double neg = 0.0;
  size_t n = 0;
  while (n < obs.size()) {
    const uint32_t j = static_cast<uint32_t>(rng.UniformInt(t.train.dim_j()));
    const uint32_t k = static_cast<uint32_t>(rng.UniformInt(t.train.dim_k()));
    if (t.train.Contains(user, j, k)) continue;
    neg += FoldInScore(t.model, u, j, k);
    ++n;
  }
  neg /= static_cast<double>(n);
  EXPECT_GT(pos, neg + 0.2);
}

TEST(FoldInTest, FoldedEmbeddingApproximatesTrainedEmbedding) {
  Trained t = TrainSmall();
  // For an active user, the folded embedding's predictions should
  // correlate strongly with the fully trained embedding's predictions.
  std::vector<size_t> count(t.train.dim_i(), 0);
  for (const auto& e : t.train.entries()) ++count[e.i];
  uint32_t user = 0;
  for (uint32_t i = 0; i < count.size(); ++i) {
    if (count[i] > count[user]) user = i;
  }
  std::vector<TensorCell> obs;
  for (const auto& e : t.train.entries()) {
    if (e.i == user) obs.push_back({e.i, e.j, e.k});
  }
  auto folded = FoldInUser(t.model, obs);
  ASSERT_TRUE(folded.ok());
  // Pearson correlation over a sample of cells.
  Rng rng(7);
  std::vector<double> a, b;
  for (int s = 0; s < 500; ++s) {
    const uint32_t j = static_cast<uint32_t>(rng.UniformInt(t.train.dim_j()));
    const uint32_t k = static_cast<uint32_t>(rng.UniformInt(t.train.dim_k()));
    a.push_back(FoldInScore(t.model, folded.value(), j, k));
    b.push_back(t.model.Predict(user, j, k));
  }
  double ma = 0, mb = 0;
  for (size_t s = 0; s < a.size(); ++s) {
    ma += a[s];
    mb += b[s];
  }
  ma /= a.size();
  mb /= b.size();
  double cov = 0, va = 0, vb = 0;
  for (size_t s = 0; s < a.size(); ++s) {
    cov += (a[s] - ma) * (b[s] - mb);
    va += (a[s] - ma) * (a[s] - ma);
    vb += (b[s] - mb) * (b[s] - mb);
  }
  const double corr = cov / std::sqrt(va * vb + 1e-30);
  EXPECT_GT(corr, 0.6);
}

// Regression for the generation-cache staleness bug class: a fold-in
// embedding solved against model generation N must never be served after
// a hot reload to generation N+1 — the cache (classic map or incremental
// solver) has to re-solve against the new factors. Asserted end to end
// through RecommendService: fill the cache on model A, swap the watched
// file to a different model B, poll, and require the served scores to
// match the batch fold-in oracle evaluated on B (a stale cache would
// reproduce A's scores instead).
void CheckFoldInCacheInvalidatesOnReload(bool incremental) {
  Trained t = TrainSmall();
  // Most active user with index >= 1, so a u1 prefix of `user` rows puts
  // that user on the fold-in tier while staying a valid model shape.
  std::vector<size_t> count(t.train.dim_i(), 0);
  for (const auto& e : t.train.entries()) ++count[e.i];
  uint32_t user = 1;
  for (uint32_t i = 1; i < count.size(); ++i) {
    if (count[i] > count[user]) user = i;
  }
  ASSERT_GE(count[user], 3u);

  const size_t r = t.model.rank();
  FactorModel a = t.model;
  Matrix prefix(user, r);
  for (size_t i = 0; i < user; ++i) {
    for (size_t c = 0; c < r; ++c) prefix(i, c) = t.model.u1(i, c);
  }
  a.u1 = prefix;
  // Model B: same shape, visibly different POI factors (and therefore a
  // different fold-in system and different scores).
  FactorModel b = a;
  for (size_t j = 0; j < b.u2.rows(); ++j) {
    for (size_t c = 0; c < r; ++c) {
      b.u2(j, c) = 0.7 * b.u2(j, c) + 0.05 * static_cast<double>((j + c) % 3);
    }
  }

  const std::string path = ::testing::TempDir() + "/" +
                           (incremental ? "gen_stale_inc.model"
                                        : "gen_stale_classic.model");
  ASSERT_TRUE(SaveFactorModel(a, path).ok());

  ModelWatcher::Options wopts;
  wopts.num_users = t.data.num_users();
  wopts.num_pois = t.data.num_pois();
  wopts.num_bins = NumBins(TimeGranularity::kMonthOfYear);
  ModelWatcher watcher(path, wopts);

  IncrementalFoldIn inc;
  RecommendService::Options sopts;
  if (incremental) sopts.incremental = &inc;
  RecommendService svc(&t.data, TimeGranularity::kMonthOfYear, &watcher,
                       sopts);
  ASSERT_TRUE(svc.Init().ok());
  ASSERT_NE(watcher.current(), nullptr);

  ServeRequest req;
  req.user = user;
  req.time_bin = 0;
  req.k = 5;
  auto r1 = svc.TopK(req);
  ASSERT_EQ(r1.tier, ServeTier::kFoldIn);
  ASSERT_FALSE(r1.recs.empty());
  EXPECT_EQ(svc.Stats().fold_in_cache_misses, 1u);
  // Second query: served from the cache, no re-solve.
  auto r1b = svc.TopK(req);
  EXPECT_EQ(svc.Stats().fold_in_cache_hits, 1u);
  ASSERT_EQ(r1b.recs.size(), r1.recs.size());
  for (size_t s = 0; s < r1.recs.size(); ++s) {
    EXPECT_EQ(r1.recs[s].poi, r1b.recs[s].poi);
    EXPECT_DOUBLE_EQ(r1.recs[s].score, r1b.recs[s].score);
  }

  // Hot-swap to model B (generation N+1) and query again.
  ASSERT_TRUE(SaveFactorModel(b, path).ok());
  svc.PollModel();
  auto r2 = svc.TopK(req);
  ASSERT_EQ(r2.tier, ServeTier::kFoldIn);
  ASSERT_FALSE(r2.recs.empty());
  EXPECT_EQ(svc.Stats().fold_in_cache_misses, 2u)
      << "reload to a new generation must force a fold-in re-solve";

  // Oracle: the batch fold-in against B over the same observation list
  // the service uses — the FULL-dataset tensor's cells for this user, in
  // tensor-entry order (exactly what Init built/seeded).
  auto full = BuildCheckinTensor(t.data, TimeGranularity::kMonthOfYear);
  ASSERT_TRUE(full.ok());
  std::vector<TensorCell> obs;
  for (const auto& e : full.value().entries()) {
    if (e.i == user) obs.push_back({e.i, e.j, e.k});
  }
  auto emb = FoldInUser(b, obs);
  ASSERT_TRUE(emb.ok()) << emb.status().ToString();
  for (const auto& rec : r2.recs) {
    EXPECT_NEAR(rec.score,
                FoldInScore(b, emb.value(), rec.poi, req.time_bin), 1e-9)
        << "served score at poi " << rec.poi
        << " does not match the new generation's fold-in";
  }
}

TEST(FoldInTest, CacheInvalidatesOnReloadClassic) {
  CheckFoldInCacheInvalidatesOnReload(/*incremental=*/false);
}

TEST(FoldInTest, CacheInvalidatesOnReloadIncremental) {
  CheckFoldInCacheInvalidatesOnReload(/*incremental=*/true);
}

TEST(FoldInTest, RejectsBadInput) {
  Trained t = TrainSmall();
  FactorModel empty;
  EXPECT_FALSE(FoldInUser(empty, {}).ok());
  // Out-of-range POI index.
  EXPECT_FALSE(
      FoldInUser(t.model,
                 {{0, static_cast<uint32_t>(t.train.dim_j()), 0}})
          .ok());
  // No observations: the ridge system still solves to ~zero vector.
  auto zero = FoldInUser(t.model, {});
  ASSERT_TRUE(zero.ok());
  for (double v : zero.value()) EXPECT_NEAR(v, 0.0, 1e-9);
}

}  // namespace
}  // namespace tcss
