// Tests for the fold-in API (new-user embedding) and the extra ranking
// metrics (NDCG@K, Precision@K).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/fold_in.h"
#include "core/tcss_model.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "data/tensor_builder.h"
#include "eval/ranking_protocol.h"

namespace tcss {
namespace {

TEST(MetricsExtraTest, NdcgAndPrecisionValues) {
  EXPECT_DOUBLE_EQ(NdcgAtK(1.0, 10), 1.0);
  EXPECT_NEAR(NdcgAtK(3.0, 10), 1.0 / std::log2(4.0), 1e-12);
  EXPECT_DOUBLE_EQ(NdcgAtK(11.0, 10), 0.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK(1.0, 10), 0.1);
  EXPECT_DOUBLE_EQ(PrecisionAtK(10.0, 10), 0.1);
  EXPECT_DOUBLE_EQ(PrecisionAtK(10.5, 10), 0.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK(1.0, 0), 0.0);
}

TEST(MetricsExtraTest, ProtocolReportsNdcg) {
  // Oracle scorer -> every rank is 1 -> NDCG 1, Precision 1/K.
  std::vector<TensorCell> cells = {{0, 5, 0}, {1, 7, 3}};
  auto score = [&cells](uint32_t i, uint32_t j, uint32_t k) {
    for (const auto& c : cells) {
      if (c.i == i && c.j == j && c.k == k) return 1.0;
    }
    return 0.0;
  };
  RankingProtocolOptions opts;
  RankingMetrics m = EvaluateRanking(score, 500, cells, opts);
  EXPECT_NEAR(m.ndcg_at_k, 1.0, 1e-9);
  EXPECT_NEAR(m.precision_at_k, 0.1, 1e-9);
}

struct Trained {
  Dataset data;
  SparseTensor train;
  FactorModel model;
};

Trained TrainSmall() {
  auto data = GenerateSyntheticLbsn(
      PresetConfig(SyntheticPreset::kGowallaLike, 0.25));
  EXPECT_TRUE(data.ok());
  TrainTestSplit split = SplitCheckins(data.value(), 0.8, 11);
  auto train = BuildCheckinTensor(data.value(), split.train,
                                  TimeGranularity::kMonthOfYear);
  EXPECT_TRUE(train.ok());
  TcssConfig cfg;
  cfg.epochs = 150;
  TcssModel model(cfg);
  EXPECT_TRUE(model
                  .Fit({&data.value(), &train.value(),
                        TimeGranularity::kMonthOfYear, 1})
                  .ok());
  return {data.MoveValue(), train.MoveValue(), model.factors()};
}

TEST(FoldInTest, RecoversExistingUserBehaviour) {
  // Fold in an *existing* user from their own observed cells; the folded
  // embedding must score that user's held-in cells far above random ones.
  Trained t = TrainSmall();
  // Pick the most active user in the train tensor.
  std::vector<size_t> count(t.train.dim_i(), 0);
  for (const auto& e : t.train.entries()) ++count[e.i];
  uint32_t user = 0;
  for (uint32_t i = 0; i < count.size(); ++i) {
    if (count[i] > count[user]) user = i;
  }
  std::vector<TensorCell> obs;
  for (const auto& e : t.train.entries()) {
    if (e.i == user) obs.push_back({e.i, e.j, e.k});
  }
  ASSERT_GE(obs.size(), 5u);

  auto folded = FoldInUser(t.model, obs);
  ASSERT_TRUE(folded.ok()) << folded.status().ToString();
  const auto& u = folded.value();
  ASSERT_EQ(u.size(), t.model.rank());

  double pos = 0.0;
  for (const auto& c : obs) pos += FoldInScore(t.model, u, c.j, c.k);
  pos /= static_cast<double>(obs.size());

  Rng rng(3);
  double neg = 0.0;
  size_t n = 0;
  while (n < obs.size()) {
    const uint32_t j = static_cast<uint32_t>(rng.UniformInt(t.train.dim_j()));
    const uint32_t k = static_cast<uint32_t>(rng.UniformInt(t.train.dim_k()));
    if (t.train.Contains(user, j, k)) continue;
    neg += FoldInScore(t.model, u, j, k);
    ++n;
  }
  neg /= static_cast<double>(n);
  EXPECT_GT(pos, neg + 0.2);
}

TEST(FoldInTest, FoldedEmbeddingApproximatesTrainedEmbedding) {
  Trained t = TrainSmall();
  // For an active user, the folded embedding's predictions should
  // correlate strongly with the fully trained embedding's predictions.
  std::vector<size_t> count(t.train.dim_i(), 0);
  for (const auto& e : t.train.entries()) ++count[e.i];
  uint32_t user = 0;
  for (uint32_t i = 0; i < count.size(); ++i) {
    if (count[i] > count[user]) user = i;
  }
  std::vector<TensorCell> obs;
  for (const auto& e : t.train.entries()) {
    if (e.i == user) obs.push_back({e.i, e.j, e.k});
  }
  auto folded = FoldInUser(t.model, obs);
  ASSERT_TRUE(folded.ok());
  // Pearson correlation over a sample of cells.
  Rng rng(7);
  std::vector<double> a, b;
  for (int s = 0; s < 500; ++s) {
    const uint32_t j = static_cast<uint32_t>(rng.UniformInt(t.train.dim_j()));
    const uint32_t k = static_cast<uint32_t>(rng.UniformInt(t.train.dim_k()));
    a.push_back(FoldInScore(t.model, folded.value(), j, k));
    b.push_back(t.model.Predict(user, j, k));
  }
  double ma = 0, mb = 0;
  for (size_t s = 0; s < a.size(); ++s) {
    ma += a[s];
    mb += b[s];
  }
  ma /= a.size();
  mb /= b.size();
  double cov = 0, va = 0, vb = 0;
  for (size_t s = 0; s < a.size(); ++s) {
    cov += (a[s] - ma) * (b[s] - mb);
    va += (a[s] - ma) * (a[s] - ma);
    vb += (b[s] - mb) * (b[s] - mb);
  }
  const double corr = cov / std::sqrt(va * vb + 1e-30);
  EXPECT_GT(corr, 0.6);
}

TEST(FoldInTest, RejectsBadInput) {
  Trained t = TrainSmall();
  FactorModel empty;
  EXPECT_FALSE(FoldInUser(empty, {}).ok());
  // Out-of-range POI index.
  EXPECT_FALSE(
      FoldInUser(t.model,
                 {{0, static_cast<uint32_t>(t.train.dim_j()), 0}})
          .ok());
  // No observations: the ridge system still solves to ~zero vector.
  auto zero = FoldInUser(t.model, {});
  ASSERT_TRUE(zero.ok());
  for (double v : zero.value()) EXPECT_NEAR(v, 0.0, 1e-9);
}

}  // namespace
}  // namespace tcss
