#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.h"
#include "geo/geo_point.h"
#include "geo/haversine.h"
#include "geo/location_entropy.h"
#include "geo/spatial_grid.h"

namespace tcss {
namespace {

// Reference city coordinates.
const GeoPoint kNewYork{40.7128, -74.0060};
const GeoPoint kLosAngeles{34.0522, -118.2437};
const GeoPoint kLondon{51.5074, -0.1278};

TEST(GeoPointTest, Validity) {
  EXPECT_TRUE(IsValid({0, 0}));
  EXPECT_TRUE(IsValid({-90, 180}));
  EXPECT_FALSE(IsValid({90.1, 0}));
  EXPECT_FALSE(IsValid({0, -180.1}));
}

TEST(GeoPointTest, BoundsExtendAndContain) {
  GeoBounds b;
  b.Extend({10, 20});
  b.Extend({-5, 40});
  EXPECT_TRUE(b.Contains({0, 30}));
  EXPECT_FALSE(b.Contains({11, 30}));
  GeoPoint c = b.Center();
  EXPECT_DOUBLE_EQ(c.lat, 2.5);
  EXPECT_DOUBLE_EQ(c.lon, 30.0);
}

TEST(HaversineTest, KnownCityDistances) {
  // NYC-LA great-circle distance is ~3936 km; NYC-London ~5570 km.
  EXPECT_NEAR(HaversineKm(kNewYork, kLosAngeles), 3936.0, 40.0);
  EXPECT_NEAR(HaversineKm(kNewYork, kLondon), 5570.0, 50.0);
}

TEST(HaversineTest, IdentityAndSymmetry) {
  EXPECT_DOUBLE_EQ(HaversineKm(kNewYork, kNewYork), 0.0);
  EXPECT_DOUBLE_EQ(HaversineKm(kNewYork, kLondon),
                   HaversineKm(kLondon, kNewYork));
}

TEST(HaversineTest, AntipodalIsHalfCircumference) {
  GeoPoint a{0, 0}, b{0, 180};
  EXPECT_NEAR(HaversineKm(a, b), M_PI * kEarthRadiusKm, 1.0);
}

TEST(HaversineTest, OneDegreeLatitudeIsAbout111Km) {
  EXPECT_NEAR(HaversineKm({10, 50}, {11, 50}), 111.2, 1.0);
}

class HaversineTriangleTest : public ::testing::TestWithParam<int> {};

TEST_P(HaversineTriangleTest, TriangleInequality) {
  Rng rng(GetParam());
  for (int t = 0; t < 50; ++t) {
    GeoPoint a{rng.Uniform(-80, 80), rng.Uniform(-179, 179)};
    GeoPoint b{rng.Uniform(-80, 80), rng.Uniform(-179, 179)};
    GeoPoint c{rng.Uniform(-80, 80), rng.Uniform(-179, 179)};
    EXPECT_LE(HaversineKm(a, c),
              HaversineKm(a, b) + HaversineKm(b, c) + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HaversineTriangleTest,
                         ::testing::Range(0, 5));

TEST(MaxPairwiseDistanceTest, ExactSmallSet) {
  std::vector<GeoPoint> pts = {kNewYork, kLosAngeles, kLondon};
  EXPECT_NEAR(MaxPairwiseDistanceKm(pts),
              HaversineKm(kLosAngeles, kLondon), 1e-9);
}

TEST(MaxPairwiseDistanceTest, DegenerateCases) {
  EXPECT_DOUBLE_EQ(MaxPairwiseDistanceKm({}), 0.0);
  EXPECT_DOUBLE_EQ(MaxPairwiseDistanceKm({kNewYork}), 0.0);
}

TEST(MaxPairwiseDistanceTest, ApproximationUpperBoundsExact) {
  Rng rng(3);
  std::vector<GeoPoint> pts;
  for (int i = 0; i < 300; ++i) {
    pts.push_back({rng.Uniform(30, 45), rng.Uniform(-120, -80)});
  }
  const double exact = MaxPairwiseDistanceKm(pts, /*exact_threshold=*/1000);
  const double approx = MaxPairwiseDistanceKm(pts, /*exact_threshold=*/10);
  EXPECT_GE(approx, exact - 1e-6);
  EXPECT_LE(approx, exact * 1.25);
}

TEST(LocationEntropyTest, HandComputedValues) {
  // POI 0: two users with 1 visit each -> entropy log(2).
  // POI 1: single user -> entropy 0. POI 2: unvisited -> 0.
  SparseTensor t(3, 3, 2);
  ASSERT_TRUE(t.Add(0, 0, 0).ok());
  ASSERT_TRUE(t.Add(1, 0, 1).ok());
  ASSERT_TRUE(t.Add(2, 1, 0).ok());
  ASSERT_TRUE(t.Finalize().ok());
  auto e = ComputeLocationEntropy(t);
  ASSERT_EQ(e.size(), 3u);
  EXPECT_NEAR(e[0], std::log(2.0), 1e-12);
  EXPECT_NEAR(e[1], 0.0, 1e-12);
  EXPECT_NEAR(e[2], 0.0, 1e-12);
}

TEST(LocationEntropyTest, SkewedVisitsLowerEntropy) {
  // POI 0: balanced 1/1. POI 1: skewed 9/1 over the value dimension.
  std::vector<std::vector<std::pair<uint32_t, double>>> counts = {
      {{0, 1.0}, {1, 1.0}},
      {{0, 9.0}, {1, 1.0}},
  };
  auto e = ComputeLocationEntropyFromCounts(counts);
  EXPECT_GT(e[0], e[1]);
  EXPECT_NEAR(e[0], std::log(2.0), 1e-12);
}

TEST(LocationEntropyTest, WeightsAreExpNegEntropy) {
  auto w = EntropyWeights({0.0, std::log(2.0), 2.0});
  EXPECT_DOUBLE_EQ(w[0], 1.0);
  EXPECT_NEAR(w[1], 0.5, 1e-12);
  EXPECT_NEAR(w[2], std::exp(-2.0), 1e-12);
}

TEST(SpatialGridTest, NearestMatchesBruteForce) {
  Rng rng(5);
  std::vector<GeoPoint> pts;
  for (int i = 0; i < 400; ++i) {
    pts.push_back({rng.Uniform(35, 40), rng.Uniform(-100, -90)});
  }
  SpatialGrid grid(pts);
  for (int t = 0; t < 100; ++t) {
    GeoPoint q{rng.Uniform(35, 40), rng.Uniform(-100, -90)};
    int64_t got = grid.Nearest(q);
    ASSERT_GE(got, 0);
    double best = std::numeric_limits<double>::infinity();
    for (const auto& p : pts) best = std::min(best, HaversineKm(q, p));
    // The ring search is approximate only in degenerate cell layouts; the
    // returned distance must still be within a small factor of optimal.
    EXPECT_LE(HaversineKm(q, pts[got]), best * 1.5 + 1e-9);
  }
}

TEST(SpatialGridTest, ExcludeSkipsSelf) {
  std::vector<GeoPoint> pts = {{10, 10}, {10.001, 10.001}, {20, 20}};
  SpatialGrid grid(pts);
  EXPECT_EQ(grid.Nearest(pts[0]), 0);
  EXPECT_EQ(grid.Nearest(pts[0], /*exclude=*/0), 1);
}

TEST(SpatialGridTest, WithinRadiusMatchesBruteForce) {
  Rng rng(6);
  std::vector<GeoPoint> pts;
  for (int i = 0; i < 300; ++i) {
    pts.push_back({rng.Uniform(35, 38), rng.Uniform(-100, -96)});
  }
  SpatialGrid grid(pts);
  for (int t = 0; t < 20; ++t) {
    GeoPoint q{rng.Uniform(35, 38), rng.Uniform(-100, -96)};
    const double radius = rng.Uniform(5, 80);
    auto got = grid.WithinRadius(q, radius);
    std::vector<uint32_t> expect;
    for (uint32_t i = 0; i < pts.size(); ++i) {
      if (HaversineKm(q, pts[i]) <= radius) expect.push_back(i);
    }
    EXPECT_EQ(got, expect) << "radius " << radius;
  }
}

// The adversarial radius-query property: points clustered across the
// antimeridian and next to both poles (where a fixed-width longitude
// window and a query-latitude cosine both go wrong) plus a global
// scatter, queries drawn from the same clusters, radii from metres to
// quarter-circumference. WithinRadius must equal brute-force haversine
// exactly — it verifies every candidate, so the only way to fail is an
// under-sized search window.
TEST(SpatialGridTest, WithinRadiusMatchesBruteForceAtEdgesOfTheGlobe) {
  Rng rng(77);
  std::vector<GeoPoint> pts;
  auto cluster = [&](double lat, double lon, double spread, int n) {
    for (int i = 0; i < n; ++i) {
      double plat = lat + rng.Uniform(-spread, spread);
      double plon = lon + rng.Uniform(-spread, spread);
      plat = std::max(-90.0, std::min(90.0, plat));
      if (plon > 180.0) plon -= 360.0;
      if (plon < -180.0) plon += 360.0;
      pts.push_back({plat, plon});
    }
  };
  cluster(10.0, 179.8, 0.5, 60);    // straddles the antimeridian (east)
  cluster(10.0, -179.8, 0.5, 60);   // straddles it (west)
  cluster(89.5, 45.0, 0.6, 60);     // pole-adjacent north
  cluster(-89.5, -120.0, 0.6, 60);  // pole-adjacent south
  for (int i = 0; i < 120; ++i) {   // global scatter
    pts.push_back({rng.Uniform(-90, 90), rng.Uniform(-180, 180)});
  }
  SpatialGrid grid(pts);

  std::vector<GeoPoint> centers = {
      {10.0, 179.95},  {10.0, -179.95}, {89.9, 0.0},   {-89.9, 170.0},
      {90.0, -45.0},   {-90.0, 0.0},    {0.0, 0.0},    {45.0, -180.0},
  };
  for (int t = 0; t < 40; ++t) {
    centers.push_back({rng.Uniform(-90, 90), rng.Uniform(-180, 180)});
  }
  int checked = 0;
  for (const auto& q : centers) {
    // Log-uniform radii: 100 m up to a quarter of the circumference.
    for (int s = 0; s < 6; ++s) {
      const double radius = 0.1 * std::pow(10.0, rng.Uniform(0.0, 5.0));
      auto got = grid.WithinRadius(q, radius);
      std::vector<uint32_t> expect;
      for (uint32_t i = 0; i < pts.size(); ++i) {
        if (HaversineKm(q, pts[i]) <= radius) expect.push_back(i);
      }
      ASSERT_EQ(got, expect)
          << "center (" << q.lat << ", " << q.lon << ") radius " << radius;
      ++checked;
    }
  }
  EXPECT_GE(checked, 280);
}

TEST(SpatialGridTest, EmptyGrid) {
  std::vector<GeoPoint> pts;
  SpatialGrid grid(pts);
  EXPECT_EQ(grid.Nearest({0, 0}), -1);
  EXPECT_TRUE(std::isinf(grid.NearestDistanceKm({0, 0})));
  EXPECT_TRUE(grid.WithinRadius({0, 0}, 100).empty());
}

}  // namespace
}  // namespace tcss
