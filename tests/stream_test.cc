// Streaming-ingestion suite (ctest label `stream`, DESIGN.md §14).
//
// What it locks in:
//   * the incremental fold-in differential gate: after ANY interleaving
//     of appends, invalidations, slice retirements and generation
//     rebinds, the incremental solver's embedding equals a full batch
//     re-solve (FoldInUser over the same cells) to <= 1e-12 — at 1, 2
//     and 8 global threads;
//   * slice rollover is bit-identical at every thread count (serialized
//     model bytes compared across 1/2/8 threads);
//   * refiner kill-and-resume: a refinement stopped after one epoch and
//     resumed from its checkpoint lands on byte-identical factors to an
//     uninterrupted run;
//   * ingest-during-reload-storm: a server answering mixed topk/ingest
//     traffic while the model file is swapped underneath it (including
//     torn writes) keeps the response ledger balanced and acknowledges
//     exactly the check-ins the engine accepted (tools/check.sh replays
//     this under TSan with TCSS_SERVER_SOAK=10000);
//   * chronological evaluation: on a drifting stream, prequential
//     streaming fold-in strictly beats both the frozen trained model and
//     frozen fold-in on post-cutoff hit@10 and MRR.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "core/checkpoint.h"
#include "core/fold_in.h"
#include "core/incremental_fold_in.h"
#include "core/model_io.h"
#include "core/trainer.h"
#include "data/csv_io.h"
#include "data/synthetic.h"
#include "data/tensor_builder.h"
#include "data/time_binning.h"
#include "eval/chronological.h"
#include "serve/frontend.h"
#include "serve/model_watcher.h"
#include "serve/recommend_service.h"
#include "serve/server.h"
#include "stream/delta_buffer.h"
#include "stream/refiner.h"
#include "stream/slice_roller.h"
#include "stream/streaming_engine.h"

namespace tcss {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// Fresh (empty) per-test scratch directory under the gtest temp dir.
std::string ScratchDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/tcss_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// Deterministic random model. u1 may be a prefix of the users (the
/// fold-in tier serves the rest); fold-in itself only reads u2/u3/h.
FactorModel RandomModel(size_t I, size_t J, size_t K, size_t r,
                        uint64_t seed) {
  Rng rng(seed);
  FactorModel m;
  m.u1 = Matrix(I, r);
  m.u2 = Matrix(J, r);
  m.u3 = Matrix(K, r);
  for (size_t i = 0; i < I; ++i) {
    for (size_t t = 0; t < r; ++t) m.u1(i, t) = rng.Uniform();
  }
  for (size_t j = 0; j < J; ++j) {
    for (size_t t = 0; t < r; ++t) m.u2(j, t) = rng.Uniform();
  }
  for (size_t k = 0; k < K; ++k) {
    for (size_t t = 0; t < r; ++t) m.u3(k, t) = rng.Uniform();
  }
  m.h.assign(r, 0.0);
  for (size_t t = 0; t < r; ++t) m.h[t] = 0.5 + rng.Uniform();
  return m;
}

/// Restores the global pool when a multi-thread scenario ends.
struct ThreadGuard {
  ~ThreadGuard() { SetGlobalThreads(1); }
};

double MaxAbsDiff(const std::vector<double>& a, const std::vector<double>& b) {
  EXPECT_EQ(a.size(), b.size());
  double m = 0.0;
  for (size_t t = 0; t < a.size() && t < b.size(); ++t) {
    m = std::max(m, std::abs(a[t] - b[t]));
  }
  return m;
}

// --- the incremental-vs-batch differential gate --------------------------

TEST(StreamDifferentialTest, IncrementalMatchesBatchAfterAnyInterleaving) {
  ThreadGuard guard;
  const size_t J = 40, K = 12, r = 6;
  for (int threads : {1, 2, 8}) {
    SetGlobalThreads(threads);
    auto model =
        std::make_shared<const FactorModel>(RandomModel(8, J, K, r, 99));
    auto model2 =
        std::make_shared<const FactorModel>(RandomModel(8, J, K, r, 100));
    IncrementalFoldIn inc;
    inc.BindModel(model, 1);
    std::shared_ptr<const FactorModel> bound = model;
    uint64_t gen = 1;
    Rng rng(4242);
    size_t queries = 0;
    for (int op = 0; op < 600; ++op) {
      const double dice = rng.Uniform();
      const uint32_t user = static_cast<uint32_t>(rng.UniformInt(6));
      if (dice < 0.50) {
        inc.Append(user, static_cast<uint32_t>(rng.UniformInt(J)),
                   static_cast<uint32_t>(rng.UniformInt(K)));
      } else if (dice < 0.56) {
        inc.Invalidate(user);
      } else if (dice < 0.62) {
        // Hot reload: a different model object at a new generation.
        bound = (bound == model) ? model2 : model;
        inc.BindModel(bound, ++gen);
      } else if (dice < 0.68) {
        // Slice retirement of a random bin, across all users.
        inc.RetireBin(static_cast<uint32_t>(rng.UniformInt(K)));
      } else {
        const std::vector<double>* emb = inc.Embedding(user);
        std::vector<TensorCell> obs = inc.Observations(user);
        if (obs.empty()) {
          EXPECT_EQ(emb, nullptr);
          continue;
        }
        ASSERT_NE(emb, nullptr) << "solve failed at op " << op;
        auto oracle = FoldInUser(*bound, obs);
        ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
        EXPECT_LE(MaxAbsDiff(*emb, oracle.value()), 1e-12)
            << "op " << op << " user " << user << " threads " << threads;
        ++queries;
      }
    }
    EXPECT_GT(queries, 50u);
    EXPECT_GT(inc.stats().rank_one_updates, 0u);
  }
}

TEST(StreamDifferentialTest, AppendIsRankOneNotReplay) {
  // After a solve, appending one cell and re-querying costs exactly one
  // rank-1 update and one solve — the observation history is never
  // re-scanned within a generation. That O(r^2) bound is the whole point
  // of the incremental tier.
  auto model =
      std::make_shared<const FactorModel>(RandomModel(4, 30, 12, 5, 7));
  IncrementalFoldIn inc;
  inc.BindModel(model, 1);
  for (uint32_t c = 0; c < 20; ++c) {
    inc.Append(0, c % 30, c % 12);
  }
  ASSERT_NE(inc.Embedding(0), nullptr);
  const uint64_t updates = inc.stats().rank_one_updates;
  const uint64_t solves = inc.stats().solves;
  ASSERT_TRUE(inc.Append(0, 29, 11));
  ASSERT_NE(inc.Embedding(0), nullptr);
  EXPECT_EQ(inc.stats().rank_one_updates, updates + 1);
  EXPECT_EQ(inc.stats().solves, solves + 1);
  // Unchanged user: served from the cache, no further solve.
  ASSERT_NE(inc.Embedding(0), nullptr);
  EXPECT_EQ(inc.stats().solves, solves + 1);
  EXPECT_GT(inc.stats().cache_hits, 0u);
  // Duplicate cells are ignored (the check-in tensor is binary).
  EXPECT_FALSE(inc.Append(0, 29, 11));
  EXPECT_EQ(inc.stats().rank_one_updates, updates + 1);
}

// --- rollover ------------------------------------------------------------

TEST(StreamRolloverTest, RollIsBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  const FactorModel base = RandomModel(50, 40, 12, 6, 17);
  std::string reference;
  for (int threads : {1, 2, 8}) {
    SetGlobalThreads(threads);
    SliceRoller roller(12);
    FactorModel m = base;
    for (int roll = 0; roll < 3; ++roll) {
      SliceRoller::Rolled rolled = roller.Roll(m);
      EXPECT_EQ(rolled.retired_bin, static_cast<uint32_t>(roll));
      m = rolled.model;
    }
    const std::string bytes = SerializeFactorModel(m);
    if (reference.empty()) {
      reference = bytes;
    } else {
      EXPECT_EQ(bytes, reference)
          << "rollover diverged at " << threads << " threads";
    }
  }
  ASSERT_FALSE(reference.empty());
}

TEST(StreamRolloverTest, RetiredRowIsMeanOfCyclicNeighbours) {
  const FactorModel base = RandomModel(10, 8, 12, 4, 23);
  SliceRoller roller(12);
  SliceRoller::Rolled rolled = roller.Roll(base);
  ASSERT_EQ(rolled.retired_bin, 0u);
  for (size_t t = 0; t < 4; ++t) {
    EXPECT_DOUBLE_EQ(rolled.model.u3(0, t),
                     0.5 * (base.u3(11, t) + base.u3(1, t)));
  }
  // Every other U3 row — and the other factors — stay untouched.
  for (size_t k = 1; k < 12; ++k) {
    for (size_t t = 0; t < 4; ++t) {
      EXPECT_DOUBLE_EQ(rolled.model.u3(k, t), base.u3(k, t));
    }
  }
  for (size_t i = 0; i < 10; ++i) {
    for (size_t t = 0; t < 4; ++t) {
      EXPECT_DOUBLE_EQ(rolled.model.u1(i, t), base.u1(i, t));
    }
  }
  EXPECT_EQ(roller.next_retired(), 1u);
  EXPECT_EQ(roller.rollovers(), 1u);
}

TEST(StreamRolloverTest, RetireBinDropsCellsAndKeepsDifferential) {
  auto model =
      std::make_shared<const FactorModel>(RandomModel(4, 30, 12, 5, 31));
  IncrementalFoldIn inc;
  inc.BindModel(model, 1);
  for (uint32_t c = 0; c < 24; ++c) {
    inc.Append(1, c % 30, c % 12);
  }
  ASSERT_NE(inc.Embedding(1), nullptr);
  const size_t before = inc.Observations(1).size();
  const size_t dropped = inc.RetireBin(3);
  EXPECT_GT(dropped, 0u);
  std::vector<TensorCell> obs = inc.Observations(1);
  EXPECT_EQ(obs.size(), before - dropped);
  for (const auto& c : obs) EXPECT_NE(c.k, 3u);
  // The post-retirement embedding replays the survivors and still matches
  // the batch oracle.
  const std::vector<double>* emb = inc.Embedding(1);
  ASSERT_NE(emb, nullptr);
  auto oracle = FoldInUser(*model, obs);
  ASSERT_TRUE(oracle.ok());
  EXPECT_LE(MaxAbsDiff(*emb, oracle.value()), 1e-12);
  // A retired cell may be re-appended afterwards (the bin is refilling).
  EXPECT_TRUE(inc.Append(1, 3, 3));
}

TEST(StreamRolloverTest, DeltaBufferValidatesAndDropsBins) {
  DeltaBuffer delta(10, 10);
  const int64_t jan = 1577836800, feb = 1580515200, mar = 1583020800;
  ASSERT_TRUE(delta.Append(1, 1, jan).ok());
  ASSERT_TRUE(delta.Append(2, 2, feb).ok());
  ASSERT_TRUE(delta.Append(3, 3, mar).ok());
  EXPECT_FALSE(delta.Append(10, 1, jan).ok());  // user out of range
  EXPECT_FALSE(delta.Append(1, 10, jan).ok());  // poi out of range
  EXPECT_FALSE(delta.Append(1, 1, kMaxCheckinTimestamp + 1).ok());
  EXPECT_EQ(delta.accepted(), 3u);
  EXPECT_EQ(delta.rejected(), 3u);
  EXPECT_EQ(delta.size(), 3u);
  EXPECT_EQ(delta.DropBin(1, TimeGranularity::kMonthOfYear), 1u);  // feb
  std::vector<CheckInEvent> events = delta.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].timestamp, jan);
  EXPECT_EQ(events[1].timestamp, mar);
  // Sequence numbers stay monotone across the drop.
  auto seq = delta.Append(4, 4, mar);
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(seq.value(), 4u);
}

// --- refiner kill-and-resume ---------------------------------------------

Dataset SmallStreamDataset() {
  DriftStreamConfig cfg;
  cfg.seed = 5;
  cfg.num_users = 30;
  cfg.num_pois = 20;
  cfg.num_events = 600;
  auto data = GenerateDriftStream(cfg);
  EXPECT_TRUE(data.ok());
  return data.MoveValue();
}

TEST(StreamRefinerTest, KillAndResumeIsBitIdentical) {
  Dataset data = SmallStreamDataset();
  auto tensor = BuildCheckinTensor(data, TimeGranularity::kMonthOfYear);
  ASSERT_TRUE(tensor.ok());

  TcssConfig cfg;
  cfg.rank = 4;
  cfg.epochs = 6;

  // Uninterrupted run.
  RefinerOptions a;
  a.config = cfg;
  BackgroundRefiner ref_a(a);
  auto x = ref_a.Refine(data, tensor.value(), nullptr);
  ASSERT_TRUE(x.ok()) << x.status().ToString();
  EXPECT_EQ(ref_a.refinements(), 1u);

  // Killed run: the stop flag is armed up front, so the trainer stops
  // after epoch 1 and persists a checkpoint...
  CheckpointOptions copts;
  copts.dir = ScratchDir("stream_refine_ck");
  copts.every = 1;
  copts.retain = 8;
  CheckpointManager ckpt(copts);
  ASSERT_TRUE(ckpt.Init().ok());
  std::atomic<bool> stop{true};
  RefinerOptions b;
  b.config = cfg;
  b.checkpoints = &ckpt;
  b.stop = &stop;
  BackgroundRefiner ref_killed(b);
  ASSERT_TRUE(ref_killed.Refine(data, tensor.value(), nullptr).ok());

  // ...and the resumed run replays the remaining epochs to the exact
  // bytes of the uninterrupted one.
  RefinerOptions c;
  c.config = cfg;
  c.checkpoints = &ckpt;
  c.resume = true;
  BackgroundRefiner ref_resumed(c);
  auto y = ref_resumed.Refine(data, tensor.value(), nullptr);
  ASSERT_TRUE(y.ok()) << y.status().ToString();
  EXPECT_EQ(SerializeFactorModel(x.value()), SerializeFactorModel(y.value()))
      << "kill-and-resume diverged from the uninterrupted refinement";
}

TEST(StreamRefinerTest, MismatchedWarmModelFallsBackToColdStart) {
  // A warm model of the wrong shape (e.g. after the catalogue grew) must
  // not fail the refinement — the refiner cold-starts instead.
  Dataset data = SmallStreamDataset();
  auto tensor = BuildCheckinTensor(data, TimeGranularity::kMonthOfYear);
  ASSERT_TRUE(tensor.ok());
  TcssConfig cfg;
  cfg.rank = 4;
  cfg.epochs = 2;
  RefinerOptions opts;
  opts.config = cfg;
  BackgroundRefiner refiner(opts);
  const FactorModel wrong = RandomModel(3, 4, 5, 2, 1);
  auto out = refiner.Refine(data, tensor.value(), &wrong);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out.value().u1.rows(), data.num_users());
  EXPECT_EQ(out.value().rank(), 4u);
}

// --- streaming engine ----------------------------------------------------

TEST(StreamEngineTest, IngestFoldsRollsAndTracksDrift) {
  Dataset data = SmallStreamDataset();
  const std::string path = TempPath("stream_engine.model");
  FactorModel model = RandomModel(data.num_users(), data.num_pois(), 12, 4, 77);
  ASSERT_TRUE(SaveFactorModel(model, path).ok());
  ModelWatcher::Options wopts;
  wopts.num_users = data.num_users();
  wopts.num_pois = data.num_pois();
  wopts.num_bins = 12;
  ModelWatcher watcher(path, wopts);
  ASSERT_EQ(watcher.Poll(), ModelWatcher::PollResult::kReloaded);

  obs::MetricRegistry metrics;
  StreamingEngine::Options eopts;
  eopts.model_path = path;
  eopts.rollover_every = 5;
  eopts.metrics = &metrics;
  StreamingEngine engine(data, &watcher, eopts);

  ServeRequest req;
  req.verb = ServeVerb::kIngest;
  const int64_t jan = 1577836800;
  Rng rng(3);
  for (int e = 0; e < 12; ++e) {
    req.user = static_cast<uint32_t>(rng.UniformInt(data.num_users()));
    req.poi = static_cast<uint32_t>(rng.UniformInt(data.num_pois()));
    req.timestamp = jan + e * 86400;
    auto seq = engine.Ingest(req);
    ASSERT_TRUE(seq.ok()) << seq.status().ToString();
    EXPECT_EQ(seq.value(), static_cast<uint64_t>(e + 1));
  }
  // Out-of-range events are rejected, counted, and never buffered.
  req.user = static_cast<uint32_t>(data.num_users());
  EXPECT_FALSE(engine.Ingest(req).ok());

  StreamingEngine::Stats stats = engine.stats();
  EXPECT_EQ(stats.accepted, 12u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_GT(stats.folded, 0u);
  EXPECT_EQ(stats.rollovers, 2u);  // every 5 accepted ingests
  // Rollovers published through the hot-swap path: the watcher swapped.
  EXPECT_GE(watcher.reload_successes(), 3u);  // initial load + 2 rollovers
  const double drift = engine.DriftScore();
  EXPECT_GE(drift, 0.0);
  EXPECT_LE(drift, 1.0);
  // Engine counters flow to the registry.
  bool saw_ingested = false;
  for (const auto& c : metrics.Snapshot().counters) {
    if (c.name == "stream.ingested") {
      saw_ingested = true;
      EXPECT_EQ(c.value, 12u);
    }
  }
  EXPECT_TRUE(saw_ingested);
}

TEST(StreamEngineTest, RefinePublishesThroughTheWatcher) {
  Dataset data = SmallStreamDataset();
  const std::string path = TempPath("stream_refine_pub.model");
  FactorModel model = RandomModel(data.num_users(), data.num_pois(), 12, 4, 78);
  ASSERT_TRUE(SaveFactorModel(model, path).ok());
  ModelWatcher::Options wopts;
  wopts.num_users = data.num_users();
  wopts.num_pois = data.num_pois();
  wopts.num_bins = 12;
  ModelWatcher watcher(path, wopts);
  ASSERT_EQ(watcher.Poll(), ModelWatcher::PollResult::kReloaded);
  const uint64_t gen_before = watcher.generation();

  obs::MetricRegistry metrics;
  StreamingEngine::Options eopts;
  eopts.model_path = path;
  eopts.metrics = &metrics;
  eopts.refiner.config.rank = 4;
  eopts.refiner.config.epochs = 2;  // the --refine-budget
  StreamingEngine engine(data, &watcher, eopts);

  ServeRequest req;
  req.verb = ServeVerb::kIngest;
  req.user = 0;
  req.poi = 1;
  req.timestamp = 1577836800;
  ASSERT_TRUE(engine.Ingest(req).ok());
  ASSERT_TRUE(engine.Refine().ok());
  EXPECT_GT(watcher.generation(), gen_before);
  EXPECT_EQ(engine.stats().refinements, 1u);
  auto live = watcher.current();
  ASSERT_NE(live, nullptr);
  EXPECT_EQ(live->rank(), 4u);
}

// --- ingest during a reload storm (server soak) --------------------------

Dataset TinyServeDataset() {
  std::vector<Poi> pois(5);
  for (int j = 0; j < 5; ++j) {
    pois[j] = {{30.0 + j, -80.0 + j}, PoiCategory::kFood};
  }
  SocialGraph social(4);
  EXPECT_TRUE(social.AddEdge(0, 1).ok());
  EXPECT_TRUE(social.Finalize().ok());
  Dataset data(4, std::move(pois), std::move(social));
  const int64_t jan = 1577836800;
  const int64_t feb = 1580515200;
  EXPECT_TRUE(data.AddCheckIn(0, 0, jan).ok());
  EXPECT_TRUE(data.AddCheckIn(0, 1, feb).ok());
  EXPECT_TRUE(data.AddCheckIn(1, 2, jan).ok());
  EXPECT_TRUE(data.AddCheckIn(2, 3, jan).ok());
  EXPECT_TRUE(data.AddCheckIn(3, 1, jan).ok());
  return data;
}

struct ClientOutcome {
  std::map<uint64_t, WireResponse> responses;
  Status transport = Status::OK();
};

/// Pipelined client: writes every frame, reads until all ids answered.
ClientOutcome RunClient(Env* env, const std::string& path,
                        const std::vector<Frame>& requests) {
  ClientOutcome out;
  auto conn = env->Connect(path);
  if (!conn.ok()) {
    out.transport = conn.status();
    return out;
  }
  Conn* c = conn.value().get();
  std::atomic<bool> done{false};
  std::atomic<bool> give_up{false};
  std::thread watchdog([&] {
    Stopwatch clock;
    while (!done.load() && clock.ElapsedSeconds() < 120.0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    give_up.store(true);
  });
  std::thread reader([&] {
    FrameReader fr;
    while (out.responses.size() < requests.size()) {
      Frame f;
      auto ev = fr.Next(c, kResponseMagic, &f, &give_up, 50);
      if (!ev.ok()) {
        out.transport = ev.status();
        break;
      }
      if (ev.value() != FrameReader::Event::kFrame) {
        if (out.transport.ok()) {
          out.transport = Status::IOError("connection ended early");
        }
        break;
      }
      auto parsed = ParseResponsePayload(f.payload);
      if (parsed.ok()) out.responses[f.id] = parsed.value();
    }
    done.store(true);
  });
  Status write_err;
  for (const Frame& f : requests) {
    if (done.load()) break;
    write_err = c->Write(EncodeRequestFrame(f), /*timeout_ms=*/5000);
    if (!write_err.ok()) break;
  }
  reader.join();
  watchdog.join();
  c->Close();
  if (!write_err.ok() && out.transport.ok()) out.transport = write_err;
  return out;
}

TEST(StreamServerTest, IngestDuringReloadStormReconcilesLedger) {
  Dataset data = TinyServeDataset();
  const std::string model_path = TempPath("stream_storm.model");
  const std::string socket_path = TempPath("stream_storm.sock");
  // u1 covers 3 of 4 users: user 3's queries ride the fold-in tier, so the
  // storm also exercises the incremental tier's generation invalidation.
  const FactorModel model_a = RandomModel(3, 5, 12, 3, 41);
  const FactorModel model_b = RandomModel(3, 5, 12, 3, 42);
  ASSERT_TRUE(SaveFactorModel(model_a, model_path).ok());

  ModelWatcher::Options wopts;
  wopts.num_users = 4;
  wopts.num_pois = 5;
  wopts.num_bins = 12;
  ModelWatcher watcher(model_path, wopts);

  StreamingEngine::Options eopts;
  eopts.model_path = model_path;  // no auto-publish: rollover/refine off
  StreamingEngine engine(data, &watcher, eopts);

  RecommendService::Options sopts;
  sopts.incremental = engine.fold_in();
  RecommendService service(&data, TimeGranularity::kMonthOfYear, &watcher,
                           sopts);
  ASSERT_TRUE(service.Init().ok());

  ServerOptions opts;
  opts.poll_every_batches = 1;  // re-poll the model between every batch
  opts.ingest_handler = [&engine](const ServeRequest& req) {
    return engine.Ingest(req);
  };
  Server server(&service, socket_path, opts);
  ASSERT_TRUE(server.Start().ok());

  // Reload storm: alternate two valid models with the occasional torn
  // write the watcher must reject without unserving.
  std::atomic<bool> storm_stop{false};
  std::thread storm([&] {
    int turn = 0;
    while (!storm_stop.load()) {
      if (turn % 5 == 4) {
        std::ofstream torn(model_path, std::ios::trunc);
        torn << "TCSSv2\n3 5 12 3\ntruncated";
      } else {
        const FactorModel& m = (turn % 2 == 0) ? model_b : model_a;
        EXPECT_TRUE(SaveFactorModel(m, model_path).ok());
      }
      ++turn;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    // Leave a valid model behind.
    EXPECT_TRUE(SaveFactorModel(model_a, model_path).ok());
  });

  const char* soak_env = std::getenv("TCSS_SERVER_SOAK");
  const int n =
      soak_env != nullptr ? std::max(100, std::atoi(soak_env)) : 600;
  const int64_t jan = 1577836800;
  std::vector<Frame> requests;
  std::set<uint64_t> bad_ingest_ids;
  Rng rng(11);
  for (int i = 0; i < n; ++i) {
    const uint64_t id = static_cast<uint64_t>(i + 1);
    const double dice = rng.Uniform();
    if (dice < 0.45) {
      requests.push_back(
          {id, StrFormat("topk %u %u k=3",
                         static_cast<uint32_t>(rng.UniformInt(4)),
                         static_cast<uint32_t>(rng.UniformInt(12)))});
    } else if (dice < 0.9) {
      requests.push_back(
          {id, StrFormat("ingest %u %u %lld",
                         static_cast<uint32_t>(rng.UniformInt(4)),
                         static_cast<uint32_t>(rng.UniformInt(5)),
                         static_cast<long long>(
                             jan + rng.UniformInt(300) * 86400))});
    } else {
      // Forged check-in: a user id outside the serving dataset. It must
      // be answered (error or shed) and never reach the delta buffer.
      bad_ingest_ids.insert(id);
      requests.push_back(
          {id, StrFormat("ingest 99 %u %lld",
                         static_cast<uint32_t>(rng.UniformInt(5)),
                         static_cast<long long>(jan))});
    }
  }
  ClientOutcome out = RunClient(Env::Default(), socket_path, requests);
  storm_stop.store(true);
  storm.join();
  ASSERT_TRUE(out.transport.ok()) << out.transport.ToString();
  ASSERT_EQ(out.responses.size(), requests.size());
  ASSERT_TRUE(server.Stop().ok());

  // Server-side ledger: every accepted frame answered exactly once.
  // (kOverloaded sheds answer connections, not frames, hence the
  // subtraction — same reconciliation as the chaos harness.)
  const ServerStats s = server.stats();
  EXPECT_EQ(s.frames_received,
            s.responses_ok + s.responses_ingested + s.responses_error +
                s.shed_total() -
                s.sheds[static_cast<int>(ShedReason::kOverloaded)])
      << s.ToString();

  // Client/engine reconciliation: the `ingested seq=` acks are exactly
  // the engine's accepted events, with distinct sequence numbers ending
  // at the accept counter; every forged ingest got an error (or an
  // explicit shed) and never reached the delta buffer.
  std::set<uint64_t> seqs;
  size_t acked = 0, bad_errors = 0, bad_sheds = 0;
  for (const auto& [id, resp] : out.responses) {
    if (resp.kind == WireResponse::Kind::kIngested) {
      EXPECT_FALSE(bad_ingest_ids.count(id))
          << "forged check-in " << id << " was acknowledged";
      EXPECT_TRUE(seqs.insert(resp.seq).second) << "duplicate seq";
      ++acked;
    } else if (bad_ingest_ids.count(id) > 0) {
      if (resp.kind == WireResponse::Kind::kError) ++bad_errors;
      if (resp.kind == WireResponse::Kind::kShed) ++bad_sheds;
    }
  }
  const StreamingEngine::Stats es = engine.stats();
  EXPECT_EQ(acked, es.accepted);
  EXPECT_EQ(s.responses_ingested, es.accepted);
  EXPECT_EQ(bad_errors + bad_sheds, bad_ingest_ids.size());
  EXPECT_EQ(es.rejected, bad_errors);  // sheds never reached the handler
  if (!seqs.empty()) {
    EXPECT_EQ(*seqs.rbegin(), es.accepted);
  }
  EXPECT_EQ(engine.delta()->size(), es.accepted);
  // The storm actually exercised the swap path.
  EXPECT_GT(watcher.reload_successes() + watcher.reload_rejects(), 0u);
}

// --- chronological evaluation: streaming beats static ---------------------

struct RankSums {
  double hits = 0.0;
  double mrr = 0.0;
  size_t n = 0;
  double HitAt10() const { return n > 0 ? hits / static_cast<double>(n) : 0; }
  double Mrr() const { return n > 0 ? mrr / static_cast<double>(n) : 0; }
};

void RecordRank(const FactorModel& model, const std::vector<double>& emb,
                uint32_t poi, uint32_t bin, size_t num_pois, RankSums* sums) {
  const double target = FoldInScore(model, emb, poi, bin);
  size_t above = 0;
  for (uint32_t j = 0; j < num_pois; ++j) {
    if (j != poi && FoldInScore(model, emb, j, bin) > target) ++above;
  }
  const double rank = static_cast<double>(above + 1);
  if (rank <= 10.0) sums->hits += 1.0;
  sums->mrr += 1.0 / rank;
  ++sums->n;
}

TEST(StreamChronoTest, StreamingBeatsFrozenStaticPostCutoff) {
  DriftStreamConfig cfg;
  cfg.num_users = 150;
  cfg.num_pois = 120;
  cfg.num_events = 9000;
  auto gen = GenerateDriftStream(cfg);
  ASSERT_TRUE(gen.ok());
  const Dataset& data = gen.value();
  ChronoSplit split = ChronologicalSplit(data.checkins(), 0.7);
  ASSERT_GT(split.before.size(), 0u);
  ASSERT_GT(split.after.size(), 1000u);
  for (size_t e = 1; e < split.after.size(); ++e) {
    ASSERT_GE(split.after[e].timestamp, split.after[e - 1].timestamp);
  }

  // Train the static model on everything before the cutoff.
  auto before_tensor =
      BuildCheckinTensor(data, split.before, TimeGranularity::kHourOfDay);
  ASSERT_TRUE(before_tensor.ok());
  TcssConfig tcfg;
  tcfg.rank = 8;
  tcfg.epochs = 80;
  TcssTrainer trainer(data, before_tensor.value(), tcfg);
  auto trained = trainer.Train();
  ASSERT_TRUE(trained.ok()) << trained.status().ToString();
  auto model = std::make_shared<const FactorModel>(trained.MoveValue());

  // Both fold-in scorers start from the same pre-cutoff history; only the
  // streaming one ingests post-cutoff check-ins, prequentially — each
  // event is predicted BEFORE it is appended, so the streaming side never
  // sees its own answer.
  std::vector<TensorCell> before_cells =
      EventsToCells(split.before, TimeGranularity::kHourOfDay);
  std::map<uint32_t, std::vector<TensorCell>> by_user;
  for (const auto& c : before_cells) by_user[c.i].push_back(c);
  IncrementalFoldIn frozen, streaming;
  frozen.BindModel(model, 1);
  streaming.BindModel(model, 1);
  for (const auto& [user, cells] : by_user) {
    frozen.Seed(user, cells);
    streaming.Seed(user, cells);
  }

  RankSums static_model, static_fold, stream_fold;
  for (const CheckInEvent& e : split.after) {
    const uint32_t bin = TimeBin(e.timestamp, TimeGranularity::kHourOfDay);
    // Frozen trained factors (the u1 row is the embedding).
    if (e.user < model->u1.rows()) {
      std::vector<double> row(model->u1.row(e.user),
                              model->u1.row(e.user) + model->rank());
      RecordRank(*model, row, e.poi, bin, data.num_pois(), &static_model);
    }
    const std::vector<double>* femb = frozen.Embedding(e.user);
    const std::vector<double>* semb = streaming.Embedding(e.user);
    if (femb != nullptr && semb != nullptr) {
      RecordRank(*model, *femb, e.poi, bin, data.num_pois(), &static_fold);
      RecordRank(*model, *semb, e.poi, bin, data.num_pois(), &stream_fold);
    }
    streaming.Append(e.user, e.poi, bin);
  }
  ASSERT_GT(stream_fold.n, 1000u);
  ::testing::Test::RecordProperty("static_model_hit10",
                                  StrFormat("%.4f", static_model.HitAt10()));
  ::testing::Test::RecordProperty("static_fold_hit10",
                                  StrFormat("%.4f", static_fold.HitAt10()));
  ::testing::Test::RecordProperty("stream_fold_hit10",
                                  StrFormat("%.4f", stream_fold.HitAt10()));

  // The acceptance gate: a model frozen at the cutoff — whether the
  // trained factors or frozen fold-in — loses to prequential streaming
  // fold-in on drifting traffic, strictly, on both metrics.
  EXPECT_GT(stream_fold.HitAt10(), static_fold.HitAt10());
  EXPECT_GT(stream_fold.Mrr(), static_fold.Mrr());
  EXPECT_GT(stream_fold.HitAt10(), static_model.HitAt10());
  EXPECT_GT(stream_fold.Mrr(), static_model.Mrr());
}

}  // namespace
}  // namespace tcss
