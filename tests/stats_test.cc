#include <gtest/gtest.h>

#include <cmath>

#include "data/stats.h"
#include "data/synthetic.h"
#include "data/time_binning.h"

namespace tcss {
namespace {

TEST(SummarizeTest, HandComputedMoments) {
  DistributionStats s = Summarize({4, 1, 3, 2, 5});
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 5);
  EXPECT_DOUBLE_EQ(s.mean, 3);
  EXPECT_DOUBLE_EQ(s.median, 3);
  // sorted: 1 2 3 4 5; p90 index = 0.9*4 = 3 (floor) -> value 4.
  EXPECT_DOUBLE_EQ(s.p90, 4);
}

TEST(SummarizeTest, GiniOfUniformIsZero) {
  DistributionStats s = Summarize({2, 2, 2, 2});
  EXPECT_NEAR(s.gini, 0.0, 1e-12);
}

TEST(SummarizeTest, GiniOfConcentratedIsHigh) {
  DistributionStats even = Summarize({1, 1, 1, 1, 1, 1, 1, 1});
  DistributionStats skew = Summarize({0, 0, 0, 0, 0, 0, 0, 8});
  EXPECT_GT(skew.gini, 0.8);
  EXPECT_LT(even.gini, 0.01);
}

TEST(SummarizeTest, EmptyInput) {
  DistributionStats s = Summarize({});
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.gini, 0.0);
}

Dataset TinyDataset() {
  SocialGraph social(2);
  EXPECT_TRUE(social.AddEdge(0, 1).ok());
  EXPECT_TRUE(social.Finalize().ok());
  std::vector<Poi> pois = {{{40.0, -74.0}, PoiCategory::kFood},
                           {{40.5, -74.5}, PoiCategory::kOutdoor}};
  Dataset d(2, pois, std::move(social));
  // User 0: visits POI 0 twice (one revisit) and POI 1 once.
  EXPECT_TRUE(d.AddCheckIn(0, 0, FromCivil(2011, 1, 5)).ok());
  EXPECT_TRUE(d.AddCheckIn(0, 0, FromCivil(2011, 2, 5)).ok());
  EXPECT_TRUE(d.AddCheckIn(0, 1, FromCivil(2011, 7, 5)).ok());
  // User 1: one visit.
  EXPECT_TRUE(d.AddCheckIn(1, 1, FromCivil(2011, 7, 9)).ok());
  return d;
}

TEST(ProfileTest, CountsAndRevisitRatio) {
  DatasetProfile p = ProfileDataset(TinyDataset());
  EXPECT_EQ(p.num_users, 2u);
  EXPECT_EQ(p.num_pois, 2u);
  EXPECT_EQ(p.num_checkins, 4u);
  EXPECT_DOUBLE_EQ(p.avg_friends, 1.0);
  // 1 revisit out of 4 events.
  EXPECT_NEAR(p.revisit_ratio, 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(p.checkins_per_user.max, 3);
  EXPECT_DOUBLE_EQ(p.distinct_pois_per_user.max, 2);
  EXPECT_DOUBLE_EQ(p.visitors_per_poi.max, 2);  // POI 1 seen by both
  // Monthly histogram: food in Jan + Feb, outdoor twice in Jul.
  EXPECT_EQ(p.monthly_by_category[static_cast<int>(PoiCategory::kFood)][0],
            1u);
  EXPECT_EQ(p.monthly_by_category[static_cast<int>(PoiCategory::kFood)][1],
            1u);
  EXPECT_EQ(
      p.monthly_by_category[static_cast<int>(PoiCategory::kOutdoor)][6], 2u);
  // 4 distinct (i,j,month) cells over 2*2*12 = 48.
  EXPECT_NEAR(p.tensor_density, 4.0 / 48.0, 1e-12);
  EXPECT_GT(p.mean_radius_of_gyration_km, 0.0);
  EXPECT_FALSE(p.ToString().empty());
}

TEST(ProfileTest, SyntheticPresetIsPlausible) {
  auto data = GenerateSyntheticLbsn(
      PresetConfig(SyntheticPreset::kGowallaLike, 0.3));
  ASSERT_TRUE(data.ok());
  DatasetProfile p = ProfileDataset(data.value());
  EXPECT_EQ(p.num_checkins, data.value().num_checkins());
  // Paper-style filters hold: at least 15 check-ins per user.
  EXPECT_GE(p.checkins_per_user.min, 15.0);
  // Popularity is skewed (Zipf) but users are more evenly active.
  EXPECT_GT(p.visitors_per_poi.gini, p.checkins_per_user.gini * 0.5);
  // Users mostly stay near home: radius of gyration far below the
  // continental scale of the map (thousands of km).
  EXPECT_LT(p.mean_radius_of_gyration_km, 1500.0);
  EXPECT_GT(p.revisit_ratio, 0.3);  // revisit-heavy LBSN behaviour
}

}  // namespace
}  // namespace tcss
