#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "linalg/matrix.h"
#include "linalg/vector_ops.h"

namespace tcss {
namespace {

TEST(MatrixTest, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(MatrixTest, FromRowsAndIdentity) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  EXPECT_DOUBLE_EQ(m(0, 0), 1);
  EXPECT_DOUBLE_EQ(m(1, 1), 4);
  Matrix id = Matrix::Identity(3);
  for (size_t i = 0; i < 3; ++i)
    for (size_t j = 0; j < 3; ++j)
      EXPECT_DOUBLE_EQ(id(i, j), i == j ? 1.0 : 0.0);
}

TEST(MatrixTest, MatMulAgainstHandComputed) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  Matrix c = MatMul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(MatrixTest, MatMulIdentityIsNoop) {
  Rng rng(1);
  Matrix a = Matrix::GaussianRandom(4, 4, &rng);
  EXPECT_LT(MaxAbsDiff(MatMul(a, Matrix::Identity(4)), a), 1e-14);
  EXPECT_LT(MaxAbsDiff(MatMul(Matrix::Identity(4), a), a), 1e-14);
}

TEST(MatrixTest, TransposedVariantsAgree) {
  Rng rng(2);
  Matrix a = Matrix::GaussianRandom(5, 3, &rng);
  Matrix b = Matrix::GaussianRandom(5, 4, &rng);
  // a^T b via MatTMul == explicit transpose then MatMul.
  EXPECT_LT(MaxAbsDiff(MatTMul(a, b), MatMul(a.Transposed(), b)), 1e-12);
  Matrix c = Matrix::GaussianRandom(6, 3, &rng);
  EXPECT_LT(MaxAbsDiff(MatMulT(a, c), MatMul(a, c.Transposed())), 1e-12);
}

TEST(MatrixTest, GramIsSymmetricPsd) {
  Rng rng(3);
  Matrix a = Matrix::GaussianRandom(10, 4, &rng);
  Matrix g = Gram(a);
  ASSERT_EQ(g.rows(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_GE(g(i, i), 0.0);
    for (size_t j = 0; j < 4; ++j) EXPECT_NEAR(g(i, j), g(j, i), 1e-12);
  }
}

TEST(MatrixTest, MatVecAndTranspose) {
  Matrix a = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  auto y = MatVec(a, {1, 1, 1});
  EXPECT_DOUBLE_EQ(y[0], 6);
  EXPECT_DOUBLE_EQ(y[1], 15);
  auto z = MatTVec(a, {1, 1});
  EXPECT_DOUBLE_EQ(z[0], 5);
  EXPECT_DOUBLE_EQ(z[1], 7);
  EXPECT_DOUBLE_EQ(z[2], 9);
}

TEST(MatrixTest, HadamardAndScaleAdd) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{2, 2}, {2, 2}});
  Matrix h = Hadamard(a, b);
  EXPECT_DOUBLE_EQ(h(1, 1), 8);
  a.Add(b, 0.5);
  EXPECT_DOUBLE_EQ(a(0, 0), 2.0);
  a.Scale(2.0);
  EXPECT_DOUBLE_EQ(a(0, 0), 4.0);
}

TEST(MatrixTest, Norms) {
  Matrix a = Matrix::FromRows({{3, 4}});
  EXPECT_DOUBLE_EQ(a.FrobeniusNorm(), 5.0);
  EXPECT_DOUBLE_EQ(a.MaxAbs(), 4.0);
}

TEST(MatrixTest, ColumnRoundTrip) {
  Rng rng(4);
  Matrix a = Matrix::GaussianRandom(6, 3, &rng);
  auto col = a.Column(1);
  Matrix b(6, 3);
  b.SetColumn(1, col);
  for (size_t i = 0; i < 6; ++i) EXPECT_DOUBLE_EQ(b(i, 1), a(i, 1));
}

TEST(VectorOpsTest, DotNormAxpy) {
  std::vector<double> a = {1, 2, 3};
  std::vector<double> b = {4, 5, 6};
  EXPECT_DOUBLE_EQ(Dot(a, b), 32);
  EXPECT_DOUBLE_EQ(Norm2({3, 4}), 5);
  Axpy(2.0, a, &b);
  EXPECT_DOUBLE_EQ(b[2], 12);
}

TEST(VectorOpsTest, NormalizeAndCosine) {
  std::vector<double> v = {3, 4};
  EXPECT_DOUBLE_EQ(Normalize(&v), 5.0);
  EXPECT_NEAR(Norm2(v), 1.0, 1e-15);
  std::vector<double> zero = {0, 0};
  EXPECT_DOUBLE_EQ(Normalize(&zero), 0.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity({1, 0}, {0, 1}), 0.0);
  EXPECT_NEAR(CosineSimilarity({1, 2}, {2, 4}), 1.0, 1e-12);
  EXPECT_NEAR(CosineSimilarity({1, 2}, {-1, -2}), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(CosineSimilarity({0, 0}, {1, 2}), 0.0);
}

// Property sweep: (A B) C == A (B C) across shapes.
class MatMulAssocTest : public ::testing::TestWithParam<int> {};

TEST_P(MatMulAssocTest, Associativity) {
  Rng rng(GetParam());
  const size_t m = 1 + rng.UniformInt(8);
  const size_t n = 1 + rng.UniformInt(8);
  const size_t p = 1 + rng.UniformInt(8);
  const size_t q = 1 + rng.UniformInt(8);
  Matrix a = Matrix::GaussianRandom(m, n, &rng);
  Matrix b = Matrix::GaussianRandom(n, p, &rng);
  Matrix c = Matrix::GaussianRandom(p, q, &rng);
  EXPECT_LT(MaxAbsDiff(MatMul(MatMul(a, b), c), MatMul(a, MatMul(b, c))),
            1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatMulAssocTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace tcss
