// Corruption and crash-safety coverage for the TCSSv1 model format:
// truncation, bad magic, implausible dims, non-finite payloads, trailing
// garbage, and fault-injected saves must all surface as a non-OK Status
// (never a crash) and must never leave a torn file behind.
#include <gtest/gtest.h>

#include <string>

#include "common/env.h"
#include "common/fault_env.h"
#include "common/rng.h"
#include "core/model_io.h"

namespace tcss {
namespace {

FactorModel RandomModel(size_t I, size_t J, size_t K, size_t r,
                        uint64_t seed) {
  Rng rng(seed);
  FactorModel m;
  m.u1 = Matrix::GaussianRandom(I, r, &rng, 0.5);
  m.u2 = Matrix::GaussianRandom(J, r, &rng, 0.5);
  m.u3 = Matrix::GaussianRandom(K, r, &rng, 0.5);
  m.h.resize(r);
  for (auto& h : m.h) h = rng.Gaussian();
  return m;
}

bool SameModel(const FactorModel& a, const FactorModel& b) {
  if (a.rank() != b.rank()) return false;
  for (size_t t = 0; t < a.rank(); ++t) {
    if (a.h[t] != b.h[t]) return false;
  }
  return MaxAbsDiff(a.u1, b.u1) == 0.0 && MaxAbsDiff(a.u2, b.u2) == 0.0 &&
         MaxAbsDiff(a.u3, b.u3) == 0.0;
}

Status WriteRaw(const std::string& path, const std::string& contents) {
  auto f = Env::Default()->NewWritableFile(path);
  if (!f.ok()) return f.status();
  TCSS_RETURN_IF_ERROR(f.value()->Append(contents));
  return f.value()->Close();
}

TEST(ModelIoCorruptionTest, TruncatedAtEveryPrefixIsRejected) {
  const FactorModel m = RandomModel(4, 3, 5, 2, 9);
  const std::string path = ::testing::TempDir() + "/trunc_model.txt";
  ASSERT_TRUE(SaveFactorModel(m, path).ok());
  auto contents = Env::Default()->ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  const std::string& full = contents.value();
  // The mandatory CRC footer of the saved format catches *every* strict
  // prefix — even one that cuts a hex-float token at a place that still
  // parses. (Cutting only the final newline leaves the payload complete,
  // hence the size()-1 bound.)
  for (size_t n = 0; n + 1 < full.size(); ++n) {
    ASSERT_TRUE(WriteRaw(path, full.substr(0, n)).ok());
    auto loaded = LoadFactorModel(path);
    EXPECT_FALSE(loaded.ok()) << "prefix of " << n << " bytes parsed";
  }
  ASSERT_TRUE(WriteRaw(path, full).ok());
  EXPECT_TRUE(LoadFactorModel(path).ok());
}

TEST(ModelIoCorruptionTest, SingleFlippedBitIsRejected) {
  const FactorModel m = RandomModel(3, 3, 3, 2, 11);
  const std::string path = ::testing::TempDir() + "/bitflip_model.txt";
  ASSERT_TRUE(SaveFactorModel(m, path).ok());
  auto contents = Env::Default()->ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  std::string flipped = contents.value();
  flipped[flipped.size() / 2] ^= 0x01;
  ASSERT_TRUE(WriteRaw(path, flipped).ok());
  EXPECT_FALSE(LoadFactorModel(path).ok());
}

TEST(ModelIoCorruptionTest, RejectsBadMagic) {
  const std::string path = ::testing::TempDir() + "/bad_magic.txt";
  ASSERT_TRUE(WriteRaw(path, "TCSSv9\n1 1 1 1\n0x1p+0\n").ok());
  auto loaded = LoadFactorModel(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("magic"), std::string::npos);
}

TEST(ModelIoCorruptionTest, RejectsImplausibleDims) {
  const std::string path = ::testing::TempDir() + "/bad_dims.txt";
  // A corrupt header must not trigger a huge allocation: dims far beyond
  // kMaxModelDim / kMaxModelRank are rejected before any resize.
  const char* cases[] = {
      "TCSSv1\n99999999999999 3 3 2\n",  // I overflow-scale
      "TCSSv1\n3 99999999 3 2\n",        // J > kMaxModelDim
      "TCSSv1\n3 3 3 5000\n",            // r > kMaxModelRank
      "TCSSv1\n0 3 3 2\n",               // zero dim
      "TCSSv1\n3 3 3 0\n",               // zero rank
  };
  for (const char* c : cases) {
    ASSERT_TRUE(WriteRaw(path, c).ok());
    auto loaded = LoadFactorModel(path);
    ASSERT_FALSE(loaded.ok()) << c;
    EXPECT_NE(loaded.status().message().find("implausible"),
              std::string::npos)
        << c;
  }
}

TEST(ModelIoCorruptionTest, RejectsNonFinitePayload) {
  const std::string path = ::testing::TempDir() + "/nan_model.txt";
  // NaN in h.
  ASSERT_TRUE(
      WriteRaw(path, "TCSSv1\n1 1 1 1\nnan\n0x1p+0\n0x1p+0\n0x1p+0\n").ok());
  EXPECT_FALSE(LoadFactorModel(path).ok());
  // Inf in a factor matrix.
  ASSERT_TRUE(
      WriteRaw(path, "TCSSv1\n1 1 1 1\n0x1p+0\ninf\n0x1p+0\n0x1p+0\n").ok());
  EXPECT_FALSE(LoadFactorModel(path).ok());
}

TEST(ModelIoCorruptionTest, RejectsTrailingGarbage) {
  const FactorModel m = RandomModel(2, 2, 2, 2, 3);
  const std::string path = ::testing::TempDir() + "/trailing_model.txt";
  ASSERT_TRUE(WriteRaw(path, SerializeFactorModel(m) + "0x1p+0\n").ok());
  auto loaded = LoadFactorModel(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("trailing"), std::string::npos);
}

TEST(ModelIoCorruptionTest, RejectsMalformedTokens) {
  const std::string path = ::testing::TempDir() + "/malformed_model.txt";
  ASSERT_TRUE(
      WriteRaw(path, "TCSSv1\n1 1 1 1\nhello\n0x1p+0\n0x1p+0\n0x1p+0\n")
          .ok());
  EXPECT_FALSE(LoadFactorModel(path).ok());
}

TEST(ModelIoFaultInjectionTest, SaveIsAtomicUnderEveryFailurePoint) {
  const FactorModel old_model = RandomModel(4, 3, 5, 2, 1);
  const FactorModel new_model = RandomModel(4, 3, 5, 2, 2);
  const std::string path = ::testing::TempDir() + "/atomic_model.txt";

  // Learn the op count of a clean save.
  FaultInjectionEnv probe(Env::Default());
  ASSERT_TRUE(SaveFactorModel(new_model, path, &probe).ok());
  const int total_ops = probe.ops_attempted();
  ASSERT_GT(total_ops, 2);

  for (int k = 0; k <= total_ops; ++k) {
    // Start each round from a valid old file.
    ASSERT_TRUE(SaveFactorModel(old_model, path).ok());
    FaultInjectionEnv env(Env::Default());
    env.set_fail_after(k);
    env.set_truncate_on_failure(true);
    const Status st = SaveFactorModel(new_model, path, &env);
    auto loaded = LoadFactorModel(path);
    ASSERT_TRUE(loaded.ok())
        << "crash at op " << k << " tore the file: "
        << loaded.status().ToString();
    const bool is_old = SameModel(loaded.value(), old_model);
    const bool is_new = SameModel(loaded.value(), new_model);
    EXPECT_TRUE(is_old || is_new) << "crash at op " << k;
    if (st.ok()) {
      EXPECT_TRUE(is_new) << "successful save at op " << k
                          << " must yield the new model";
    } else {
      EXPECT_TRUE(is_old) << "failed save at op " << k
                          << " must leave the old model";
    }
  }
}

}  // namespace
}  // namespace tcss
