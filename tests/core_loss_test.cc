#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/spectral_init.h"
#include "core/whole_data_loss.h"

namespace tcss {
namespace {

SparseTensor RandomTensor(size_t I, size_t J, size_t K, size_t nnz,
                          uint64_t seed) {
  SparseTensor t(I, J, K);
  Rng rng(seed);
  for (size_t n = 0; n < nnz; ++n) {
    EXPECT_TRUE(
        t.Add(rng.UniformInt(I), rng.UniformInt(J), rng.UniformInt(K)).ok());
  }
  EXPECT_TRUE(t.Finalize().ok());
  return t;
}

FactorModel RandomModel(size_t I, size_t J, size_t K, size_t r,
                        uint64_t seed) {
  Rng rng(seed);
  FactorModel m;
  m.u1 = Matrix::GaussianRandom(I, r, &rng, 0.3);
  m.u2 = Matrix::GaussianRandom(J, r, &rng, 0.3);
  m.u3 = Matrix::GaussianRandom(K, r, &rng, 0.3);
  m.h.resize(r);
  for (auto& h : m.h) h = rng.Gaussian(1.0, 0.2);
  return m;
}

TEST(FactorModelTest, PredictMatchesHandComputation) {
  FactorModel m;
  m.u1 = Matrix::FromRows({{1, 2}});
  m.u2 = Matrix::FromRows({{3, 4}});
  m.u3 = Matrix::FromRows({{5, 6}});
  m.h = {0.5, 2.0};
  // 0.5*1*3*5 + 2*2*4*6 = 7.5 + 96 = 103.5
  EXPECT_DOUBLE_EQ(m.Predict(0, 0, 0), 103.5);
}

TEST(FactorModelTest, CpIsSpecialCaseWithUnitH) {
  // With h = 1, Eq 6 reduces to the CP model of Eq 1.
  FactorModel m = RandomModel(3, 4, 5, 2, 1);
  m.h = {1.0, 1.0};
  double cp = 0.0;
  for (size_t t = 0; t < 2; ++t) {
    cp += m.u1(1, t) * m.u2(2, t) * m.u3(3, t);
  }
  EXPECT_NEAR(m.Predict(1, 2, 3), cp, 1e-12);
}

// --- The paper's Remark 1: Eq 15 == Eq 14 --------------------------------

class RewrittenEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(RewrittenEquivalenceTest, LossValuesIdentical) {
  Rng rng(100 + GetParam());
  const size_t I = 4 + rng.UniformInt(6);
  const size_t J = 4 + rng.UniformInt(6);
  const size_t K = 3 + rng.UniformInt(5);
  SparseTensor x = RandomTensor(I, J, K, I * J, 200 + GetParam());
  FactorModel m = RandomModel(I, J, K, 3, 300 + GetParam());
  const double wp = 0.99, wn = 0.01;
  NaiveLoss naive(wp, wn);
  RewrittenLoss rewritten(wp, wn);
  const double a = naive.Compute(m, x);
  const double b = rewritten.Compute(m, x);
  EXPECT_NEAR(a, b, 1e-9 * std::max(1.0, std::fabs(a)));
}

TEST_P(RewrittenEquivalenceTest, GradientsIdentical) {
  Rng rng(400 + GetParam());
  const size_t I = 5, J = 6, K = 4;
  SparseTensor x = RandomTensor(I, J, K, 25, 500 + GetParam());
  FactorModel m = RandomModel(I, J, K, 3, 600 + GetParam());
  NaiveLoss naive(0.95, 0.05);
  RewrittenLoss rewritten(0.95, 0.05);
  FactorGrads ga(m), gb(m);
  ga.Zero();
  gb.Zero();
  (void)naive.ComputeWithGrads(m, x, &ga);
  (void)rewritten.ComputeWithGrads(m, x, &gb);
  EXPECT_LT(MaxAbsDiff(ga.u1, gb.u1), 1e-9);
  EXPECT_LT(MaxAbsDiff(ga.u2, gb.u2), 1e-9);
  EXPECT_LT(MaxAbsDiff(ga.u3, gb.u3), 1e-9);
  for (size_t t = 0; t < m.h.size(); ++t) {
    EXPECT_NEAR(ga.h[t], gb.h[t], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RewrittenEquivalenceTest,
                         ::testing::Range(0, 8));

TEST(RewrittenLossTest, GradientMatchesNumerical) {
  SparseTensor x = RandomTensor(4, 5, 3, 15, 1);
  FactorModel m = RandomModel(4, 5, 3, 2, 2);
  RewrittenLoss loss(0.9, 0.1);
  FactorGrads g(m);
  g.Zero();
  (void)loss.ComputeWithGrads(m, x, &g);

  const double eps = 1e-6;
  auto check = [&](double* param, double analytic) {
    const double orig = *param;
    *param = orig + eps;
    const double up = loss.Compute(m, x);
    *param = orig - eps;
    const double down = loss.Compute(m, x);
    *param = orig;
    EXPECT_NEAR(analytic, (up - down) / (2 * eps),
                1e-4 * std::max(1.0, std::fabs(analytic)));
  };
  for (size_t i = 0; i < m.u1.size(); ++i) check(m.u1.data() + i, g.u1.data()[i]);
  for (size_t i = 0; i < m.u2.size(); ++i) check(m.u2.data() + i, g.u2.data()[i]);
  for (size_t i = 0; i < m.u3.size(); ++i) check(m.u3.data() + i, g.u3.data()[i]);
  for (size_t t = 0; t < m.h.size(); ++t) check(&m.h[t], g.h[t]);
}

TEST(WholeDataLossTest, ZeroModelLossEqualsWeightedPositives) {
  SparseTensor x = RandomTensor(6, 6, 4, 20, 3);
  FactorModel m;
  m.u1 = Matrix(6, 2);
  m.u2 = Matrix(6, 2);
  m.u3 = Matrix(4, 2);
  m.h = {1.0, 1.0};
  RewrittenLoss loss(0.99, 0.01);
  // All predictions are 0, so L2 = sum over positives of w+ * 1.
  EXPECT_NEAR(loss.Compute(m, x), 0.99 * static_cast<double>(x.nnz()),
              1e-12);
}

TEST(NegativeSamplingLossTest, SamplesChangeAcrossCalls) {
  SparseTensor x = RandomTensor(8, 8, 4, 30, 4);
  FactorModel m = RandomModel(8, 8, 4, 2, 5);
  NegativeSamplingLoss loss(0.99, 0.01, 7);
  const double a = loss.Compute(m, x);
  const double b = loss.Compute(m, x);
  // Different sampled negatives give (almost surely) different values.
  EXPECT_NE(a, b);
}

TEST(NegativeSamplingLossTest, PositivePartMatchesNaivePositivePart) {
  SparseTensor x = RandomTensor(6, 6, 3, 18, 6);
  // Model predicting exactly 0 -> sampled negatives contribute 0 and the
  // loss reduces to w+ * nnz (same positive part as the whole-data loss).
  FactorModel m;
  m.u1 = Matrix(6, 2);
  m.u2 = Matrix(6, 2);
  m.u3 = Matrix(3, 2);
  m.h = {1.0, 1.0};
  NegativeSamplingLoss loss(0.95, 0.05, 8);
  EXPECT_NEAR(loss.Compute(m, x), 0.95 * static_cast<double>(x.nnz()),
              1e-12);
}

// --- Under-draw rescaling regressions (PR 5) -----------------------------
//
// A near-dense tensor exhausts the rejection guard before the sampler
// collects its full quota of negatives; the implementation then rescales
// the w- term by want/drawn to keep it an unbiased estimate. Pin that
// behavior with a tensor holding exactly ONE unobserved cell: every drawn
// negative is that cell, so the rescaled term must equal
// want * w_neg * y*^2 no matter how many draws actually landed.
TEST(NegativeSamplingLossTest, UnderDrawRescalesToFullQuota) {
  const size_t I = 5, J = 5, K = 4;
  SparseTensor x(I, J, K);
  for (uint32_t i = 0; i < I; ++i) {
    for (uint32_t j = 0; j < J; ++j) {
      for (uint32_t k = 0; k < K; ++k) {
        if (i == 2 && j == 3 && k == 1) continue;  // the one unobserved cell
        ASSERT_TRUE(x.Add(i, j, k).ok());
      }
    }
  }
  ASSERT_TRUE(x.Finalize().ok());
  FactorModel m = RandomModel(I, J, K, 2, 42);
  const double w_neg = 0.25;
  const double y_star = m.Predict(2, 3, 1);
  const size_t want = x.nnz();  // 99 positives -> 99-negative quota

  // w_pos = 0 isolates the w- term.
  NegativeSamplingLoss loss(/*w_pos=*/0.0, w_neg, /*seed=*/9);
  ::testing::internal::CaptureStderr();
  FactorGrads grads(m);
  const double value = loss.ComputeWithGrads(m, x, &grads);
  const std::string log = ::testing::internal::GetCapturedStderr();

  // The guard must actually have been exhausted (1 unobserved cell in 100
  // vs a 50x-quota guard), otherwise this test is not exercising the
  // rescale path at all.
  ASSERT_NE(log.find("under-drew"), std::string::npos) << log;
  const double want_loss =
      static_cast<double>(want) * w_neg * y_star * y_star;
  EXPECT_NEAR(value, want_loss, 1e-12 * std::abs(want_loss));

  // Gradient of the isolated w- term wrt h_t at the single negative cell:
  // want * 2 * w_neg * y* * (u1 u2 u3)_t.
  for (size_t t = 0; t < m.rank(); ++t) {
    const double expect = static_cast<double>(want) * 2.0 * w_neg * y_star *
                          m.u1(2, t) * m.u2(3, t) * m.u3(1, t);
    EXPECT_NEAR(grads.h[t], expect, 1e-12 * std::abs(expect));
  }
}

TEST(NegativeSamplingLossTest, FullyObservedTensorTerminatesWithZeroDraws) {
  // Zero unobserved cells: the rejection loop cannot draw anything; it
  // must hit the guard, leave the w- term at zero (no 0/0 rescale), and
  // return just the positive part.
  SparseTensor x(2, 2, 2);
  for (uint32_t i = 0; i < 2; ++i) {
    for (uint32_t j = 0; j < 2; ++j) {
      for (uint32_t k = 0; k < 2; ++k) ASSERT_TRUE(x.Add(i, j, k).ok());
    }
  }
  ASSERT_TRUE(x.Finalize().ok());
  FactorModel m = RandomModel(2, 2, 2, 2, 7);
  NegativeSamplingLoss sampled(0.5, 0.25, /*seed=*/3);
  NaiveLoss positives_only(0.5, /*w_neg=*/0.0);
  ::testing::internal::CaptureStderr();
  const double value = sampled.Compute(m, x);
  ::testing::internal::GetCapturedStderr();  // swallow the warning
  EXPECT_DOUBLE_EQ(value, positives_only.Compute(m, x));
}

TEST(NegativeSamplingLossTest, SamplerStateReplayIsExact) {
  // Pinning sampler_state replays the identical negative set: same loss
  // and same gradients, bit for bit — across calls and across instances.
  SparseTensor x = RandomTensor(6, 7, 5, 30, 17);
  FactorModel m = RandomModel(6, 7, 5, 3, 18);
  NegativeSamplingLoss a(0.9, 0.1, /*seed=*/5);
  a.set_sampler_state(11);
  FactorGrads ga(m);
  const double va = a.ComputeWithGrads(m, x, &ga);
  EXPECT_EQ(a.sampler_state(), 12u);  // the call advanced the counter

  NegativeSamplingLoss b(0.9, 0.1, /*seed=*/5);
  b.set_sampler_state(11);
  FactorGrads gb(m);
  const double vb = b.ComputeWithGrads(m, x, &gb);
  EXPECT_EQ(va, vb);
  EXPECT_EQ(MaxAbsDiff(ga.u1, gb.u1), 0.0);
  EXPECT_EQ(MaxAbsDiff(ga.u2, gb.u2), 0.0);
  EXPECT_EQ(MaxAbsDiff(ga.u3, gb.u3), 0.0);
  for (size_t t = 0; t < m.rank(); ++t) EXPECT_EQ(ga.h[t], gb.h[t]);

  // A different state draws a different set.
  NegativeSamplingLoss c(0.9, 0.1, /*seed=*/5);
  c.set_sampler_state(12);
  EXPECT_NE(c.Compute(m, x), va);
}

TEST(WholeDataLossTest, FactoryRespectsConfig) {
  TcssConfig cfg;
  cfg.loss_mode = LossMode::kRewritten;
  EXPECT_STREQ(WholeDataLoss::Create(cfg)->name(), "rewritten");
  cfg.loss_mode = LossMode::kNaive;
  EXPECT_STREQ(WholeDataLoss::Create(cfg)->name(), "naive");
  cfg.loss_mode = LossMode::kNegativeSampling;
  EXPECT_STREQ(WholeDataLoss::Create(cfg)->name(), "negative-sampling");
}

TEST(AccumulateEntryGradTest, MatchesNumericalDerivativeOfPredict) {
  FactorModel m = RandomModel(3, 3, 3, 2, 9);
  FactorGrads g(m);
  g.Zero();
  // d(Predict)/d(params), i.e. upstream gradient 1.0.
  AccumulateEntryGrad(m, 1, 2, 0, 1.0, &g);
  const double eps = 1e-7;
  auto numeric = [&](double* p) {
    const double orig = *p;
    *p = orig + eps;
    const double up = m.Predict(1, 2, 0);
    *p = orig - eps;
    const double down = m.Predict(1, 2, 0);
    *p = orig;
    return (up - down) / (2 * eps);
  };
  for (size_t t = 0; t < 2; ++t) {
    EXPECT_NEAR(g.u1(1, t), numeric(&m.u1(1, t)), 1e-6);
    EXPECT_NEAR(g.u2(2, t), numeric(&m.u2(2, t)), 1e-6);
    EXPECT_NEAR(g.u3(0, t), numeric(&m.u3(0, t)), 1e-6);
    EXPECT_NEAR(g.h[t], numeric(&m.h[t]), 1e-6);
  }
  // Untouched rows get no gradient.
  EXPECT_DOUBLE_EQ(g.u1(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(g.u2(0, 0), 0.0);
}

// --- Spectral initialization ----------------------------------------------

TEST(SpectralInitTest, ShapesAndMeanScaling) {
  SparseTensor x = RandomTensor(12, 10, 6, 60, 10);
  TcssConfig cfg;
  cfg.rank = 4;
  cfg.init = InitMethod::kSpectral;
  auto init = InitializeFactors(x, cfg);
  ASSERT_TRUE(init.ok()) << init.status().ToString();
  const FactorModel& m = init.value();
  EXPECT_EQ(m.u1.rows(), 12u);
  EXPECT_EQ(m.u2.rows(), 10u);
  EXPECT_EQ(m.u3.rows(), 6u);
  EXPECT_EQ(m.rank(), 4u);
  for (double h : m.h) EXPECT_DOUBLE_EQ(h, 1.0);
  // Sign alignment makes the mean prediction over observed entries
  // positive (the factors keep the eigenvector scale; no rescaling).
  double mean = 0.0;
  for (const auto& e : x.entries()) mean += m.Predict(e.i, e.j, e.k);
  mean /= static_cast<double>(x.nnz());
  EXPECT_GT(mean, 0.0);
}

TEST(SpectralInitTest, RankLargerThanModeDimIsPadded) {
  SparseTensor x = RandomTensor(10, 9, 3, 40, 11);  // K=3 < rank
  TcssConfig cfg;
  cfg.rank = 5;
  auto init = InitializeFactors(x, cfg);
  ASSERT_TRUE(init.ok());
  EXPECT_EQ(init.value().u3.cols(), 5u);
}

TEST(SpectralInitTest, RandomAndOneHotVariants) {
  SparseTensor x = RandomTensor(8, 8, 4, 30, 12);
  for (InitMethod method : {InitMethod::kRandom, InitMethod::kOneHot}) {
    TcssConfig cfg;
    cfg.rank = 3;
    cfg.init = method;
    auto init = InitializeFactors(x, cfg);
    ASSERT_TRUE(init.ok());
    EXPECT_GT(init.value().u1.FrobeniusNorm(), 0.0);
  }
}

TEST(SpectralInitTest, DeterministicForSeed) {
  SparseTensor x = RandomTensor(10, 10, 5, 50, 13);
  TcssConfig cfg;
  cfg.rank = 3;
  auto a = InitializeFactors(x, cfg);
  auto b = InitializeFactors(x, cfg);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LT(MaxAbsDiff(a.value().u1, b.value().u1), 1e-15);
}

TEST(SpectralInitTest, RequiresFinalizedTensor) {
  SparseTensor x(4, 4, 4);
  TcssConfig cfg;
  EXPECT_FALSE(InitializeFactors(x, cfg).ok());
}

}  // namespace
}  // namespace tcss
