#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/tcss_model.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "data/tensor_builder.h"
#include "eval/ranking_protocol.h"

namespace tcss {
namespace {

struct SmallWorld {
  Dataset data;
  SparseTensor train;
  std::vector<TensorCell> test_cells;
};

SmallWorld MakeWorld(double scale = 0.22, uint64_t seed = 42) {
  auto data =
      GenerateSyntheticLbsn(PresetConfig(SyntheticPreset::kGowallaLike, scale));
  EXPECT_TRUE(data.ok());
  TrainTestSplit split = SplitCheckins(data.value(), 0.8, seed);
  auto train = BuildCheckinTensor(data.value(), split.train,
                                  TimeGranularity::kMonthOfYear);
  EXPECT_TRUE(train.ok());
  return {data.MoveValue(), train.MoveValue(),
          EventsToCells(split.test, TimeGranularity::kMonthOfYear)};
}

TcssConfig FastConfig() {
  TcssConfig cfg;
  cfg.epochs = 120;
  cfg.hausdorff_pool = 64;
  cfg.max_friend_pois = 32;
  cfg.hausdorff_users_per_epoch = 32;
  return cfg;
}

TEST(TcssConfigTest, ValidateCatchesBadValues) {
  TcssConfig cfg;
  EXPECT_TRUE(cfg.Validate().empty());
  cfg.rank = 0;
  EXPECT_FALSE(cfg.Validate().empty());
  cfg = TcssConfig();
  cfg.alpha = 0.5;
  EXPECT_FALSE(cfg.Validate().empty());
  cfg = TcssConfig();
  cfg.w_pos = 0.01;
  cfg.w_neg = 0.5;
  EXPECT_FALSE(cfg.Validate().empty());
  cfg = TcssConfig();
  EXPECT_NE(cfg.Summary().find("TCSS"), std::string::npos);
}

TEST(TcssModelTest, FitRejectsNullContextAndDoubleFit) {
  TcssModel model(FastConfig());
  EXPECT_FALSE(model.Fit({nullptr, nullptr}).ok());
  SmallWorld w = MakeWorld();
  TcssConfig cfg = FastConfig();
  cfg.epochs = 2;
  TcssModel m2(cfg);
  ASSERT_TRUE(
      m2.Fit({&w.data, &w.train, TimeGranularity::kMonthOfYear, 1}).ok());
  EXPECT_FALSE(
      m2.Fit({&w.data, &w.train, TimeGranularity::kMonthOfYear, 1}).ok());
}

TEST(TcssModelTest, TrainingReducesLoss) {
  SmallWorld w = MakeWorld();
  std::vector<double> l2;
  TcssModel model(FastConfig());
  ASSERT_TRUE(model
                  .FitWithCallback(
                      {&w.data, &w.train, TimeGranularity::kMonthOfYear, 1},
                      [&l2](const EpochStats& s, const FactorModel&) {
                        l2.push_back(s.loss_l2);
                      })
                  .ok());
  ASSERT_EQ(l2.size(), 120u);
  EXPECT_LT(l2.back(), 0.7 * l2.front());
}

TEST(TcssModelTest, BeatsChanceByALargeMargin) {
  SmallWorld w = MakeWorld();
  TcssModel model(FastConfig());
  ASSERT_TRUE(
      model.Fit({&w.data, &w.train, TimeGranularity::kMonthOfYear, 1}).ok());
  RankingMetrics m = EvaluateRanking(model, w.data.num_pois(), w.test_cells,
                                     RankingProtocolOptions{});
  EXPECT_GT(m.hit_at_k, 0.35);  // chance is ~0.10
  EXPECT_GT(m.mrr, 0.12);       // chance is ~0.05
}

TEST(TcssModelTest, ScoresObservedAboveUnobserved) {
  SmallWorld w = MakeWorld();
  TcssModel model(FastConfig());
  ASSERT_TRUE(
      model.Fit({&w.data, &w.train, TimeGranularity::kMonthOfYear, 1}).ok());
  double pos = 0.0;
  size_t n = 0;
  for (const auto& e : w.train.entries()) {
    pos += model.Score(e.i, e.j, e.k);
    ++n;
  }
  pos /= static_cast<double>(n);
  Rng rng(5);
  double neg = 0.0;
  size_t m = 0;
  while (m < n) {
    uint32_t i = static_cast<uint32_t>(rng.UniformInt(w.train.dim_i()));
    uint32_t j = static_cast<uint32_t>(rng.UniformInt(w.train.dim_j()));
    uint32_t k = static_cast<uint32_t>(rng.UniformInt(w.train.dim_k()));
    if (w.train.Contains(i, j, k)) continue;
    neg += model.Score(i, j, k);
    ++m;
  }
  neg /= static_cast<double>(m);
  EXPECT_GT(pos, neg + 0.3);
}

TEST(TcssModelTest, DeterministicForSeedAndConfig) {
  SmallWorld w = MakeWorld();
  TcssConfig cfg = FastConfig();
  cfg.epochs = 20;
  TcssModel a(cfg), b(cfg);
  ASSERT_TRUE(a.Fit({&w.data, &w.train, TimeGranularity::kMonthOfYear, 1}).ok());
  ASSERT_TRUE(b.Fit({&w.data, &w.train, TimeGranularity::kMonthOfYear, 1}).ok());
  EXPECT_DOUBLE_EQ(a.Score(0, 1, 2), b.Score(0, 1, 2));
  EXPECT_DOUBLE_EQ(a.Score(3, 4, 5), b.Score(3, 4, 5));
}

TEST(TcssModelTest, ZeroOutMasksFarPois) {
  SmallWorld w = MakeWorld();
  TcssConfig cfg = FastConfig();
  cfg.epochs = 10;
  cfg.hausdorff = HausdorffMode::kZeroOut;
  TcssModel model(cfg);
  ASSERT_TRUE(
      model.Fit({&w.data, &w.train, TimeGranularity::kMonthOfYear, 1}).ok());
  // Some scores must be masked (-1e9) and some not.
  size_t masked = 0, open = 0;
  for (uint32_t j = 0; j < w.data.num_pois(); ++j) {
    if (model.Score(0, j, 0) <= -1e8) {
      ++masked;
    } else {
      ++open;
    }
  }
  EXPECT_GT(masked, 0u);
  EXPECT_GT(open, 0u);
}

TEST(TcssModelTest, NameReflectsAblations) {
  TcssConfig cfg;
  EXPECT_EQ(TcssModel(cfg).name(), "TCSS");
  cfg.hausdorff = HausdorffMode::kSelf;
  EXPECT_NE(TcssModel(cfg).name().find("self"), std::string::npos);
  cfg = TcssConfig();
  cfg.init = InitMethod::kRandom;
  EXPECT_NE(TcssModel(cfg).name().find("rand"), std::string::npos);
  cfg = TcssConfig();
  cfg.loss_mode = LossMode::kNegativeSampling;
  EXPECT_NE(TcssModel(cfg).name().find("neg"), std::string::npos);
}

TEST(TcssModelTest, TimeFactorSimilarityIsValidCosineMatrix) {
  SmallWorld w = MakeWorld();
  TcssConfig cfg = FastConfig();
  cfg.epochs = 40;
  TcssModel model(cfg);
  ASSERT_TRUE(
      model.Fit({&w.data, &w.train, TimeGranularity::kMonthOfYear, 1}).ok());
  Matrix sim = model.TimeFactorSimilarity();
  ASSERT_EQ(sim.rows(), 12u);
  ASSERT_EQ(sim.cols(), 12u);
  for (size_t a = 0; a < 12; ++a) {
    EXPECT_NEAR(sim(a, a), 1.0, 1e-9);
    for (size_t b = 0; b < 12; ++b) {
      EXPECT_LE(std::fabs(sim(a, b)), 1.0 + 1e-9);
      EXPECT_NEAR(sim(a, b), sim(b, a), 1e-12);
    }
  }
}

TEST(TrainerTest, TimeOneLossEpochOrdersAsExpected) {
  SmallWorld w = MakeWorld(0.22);
  TcssConfig cfg = FastConfig();
  TcssTrainer trainer(w.data, w.train, cfg);
  auto naive = trainer.TimeOneLossEpoch(LossMode::kNaive);
  auto sampling = trainer.TimeOneLossEpoch(LossMode::kNegativeSampling);
  auto rewritten = trainer.TimeOneLossEpoch(LossMode::kRewritten);
  ASSERT_TRUE(naive.ok());
  ASSERT_TRUE(sampling.ok());
  ASSERT_TRUE(rewritten.ok());
  // The rewritten loss (Eq 15) must beat the naive full loss (Eq 14) by a
  // wide margin; sampling sits in between (Table IV's shape).
  EXPECT_LT(rewritten.value(), naive.value());
  EXPECT_LT(rewritten.value() * 2, naive.value());
}

TEST(TrainerTest, EpochStatsArePopulated) {
  SmallWorld w = MakeWorld();
  TcssConfig cfg = FastConfig();
  cfg.epochs = 3;
  TcssTrainer trainer(w.data, w.train, cfg);
  int count = 0;
  auto trained = trainer.Train([&count](const EpochStats& s,
                                        const FactorModel& m) {
    ++count;
    EXPECT_EQ(s.epoch, count);
    EXPECT_GT(s.loss_l2, 0.0);
    EXPECT_GT(s.loss_l1, 0.0);
    EXPECT_GE(s.seconds, 0.0);
    EXPECT_EQ(m.rank(), 10u);
  });
  ASSERT_TRUE(trained.ok());
  EXPECT_EQ(count, 3);
}

TEST(TrainerTest, InvalidConfigFailsFast) {
  SmallWorld w = MakeWorld();
  TcssConfig cfg;
  cfg.rank = 0;
  TcssTrainer trainer(w.data, w.train, cfg);
  EXPECT_FALSE(trainer.Train().ok());
}

}  // namespace
}  // namespace tcss
