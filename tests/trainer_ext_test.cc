// Tests of the trainer extensions: temporal smoothness regularization,
// the learning-rate step schedule, and the lambda-scaling contract
// between the Hausdorff loss value and its gradients.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>

#include "common/rng.h"
#include "core/spectral_init.h"
#include "core/trainer.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "data/tensor_builder.h"
#include "linalg/vector_ops.h"

namespace tcss {
namespace {

struct World {
  Dataset data;
  SparseTensor train;
};

World MakeWorld() {
  auto data = GenerateSyntheticLbsn(
      PresetConfig(SyntheticPreset::kGowallaLike, 0.2));
  EXPECT_TRUE(data.ok());
  TrainTestSplit split = SplitCheckins(data.value(), 0.8, 3);
  auto train = BuildCheckinTensor(data.value(), split.train,
                                  TimeGranularity::kMonthOfYear);
  EXPECT_TRUE(train.ok());
  return {data.MoveValue(), train.MoveValue()};
}

// Mean cyclic roughness of the time factors: sum_k ||u3_k - u3_{k+1}||^2.
double TimeRoughness(const FactorModel& m) {
  double s = 0.0;
  const size_t K = m.u3.rows();
  for (size_t k = 0; k < K; ++k) {
    for (size_t t = 0; t < m.rank(); ++t) {
      const double d = m.u3(k, t) - m.u3((k + 1) % K, t);
      s += d * d;
    }
  }
  return s;
}

TEST(TemporalSmoothnessTest, ReducesTimeFactorRoughness) {
  World w = MakeWorld();
  TcssConfig base;
  base.epochs = 120;
  base.hausdorff = HausdorffMode::kNone;
  base.lambda = 0.0;

  TcssConfig smooth = base;
  smooth.temporal_smoothness = 5.0;

  TcssTrainer rough_trainer(w.data, w.train, base);
  TcssTrainer smooth_trainer(w.data, w.train, smooth);
  auto rough = rough_trainer.Train();
  auto smoothed = smooth_trainer.Train();
  ASSERT_TRUE(rough.ok());
  ASSERT_TRUE(smoothed.ok());
  EXPECT_LT(TimeRoughness(smoothed.value()),
            0.8 * TimeRoughness(rough.value()));
}

TEST(TemporalSmoothnessTest, PenaltyValueIsReportedInEpochStats) {
  // Train() must surface the temporal-smoothness penalty it adds to the
  // gradient as stats.loss_ts (it was silently discarded once).
  World w = MakeWorld();
  TcssConfig cfg;
  cfg.epochs = 3;
  cfg.hausdorff = HausdorffMode::kNone;
  cfg.lambda = 0.0;
  cfg.temporal_smoothness = 5.0;

  TcssTrainer trainer(w.data, w.train, cfg);
  double reported = -1.0;
  FactorModel before;
  bool captured = false;
  auto result = trainer.Train(
      [&](const EpochStats& s, const FactorModel& m) {
        if (s.epoch == 1) {
          reported = s.loss_ts;
          before = m;  // post-step model; stats refer to the pre-step one
          captured = true;
        }
        EXPECT_GT(s.loss_ts, 0.0) << "epoch " << s.epoch;
        EXPECT_TRUE(std::isfinite(s.TotalLoss()));
      });
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(captured);
  EXPECT_GT(reported, 0.0);

  // Cross-check the epoch-2 value exactly: recompute the penalty on the
  // model the callback saw after epoch 1.
  double recomputed = 0.0;
  {
    FactorGrads scratch(before);
    scratch.Zero();
    recomputed =
        trainer.AddTemporalSmoothness(before, cfg.temporal_smoothness,
                                      &scratch);
  }
  double epoch2 = -1.0;
  TcssTrainer trainer2(w.data, w.train, cfg);
  auto result2 = trainer2.Train(
      [&epoch2](const EpochStats& s, const FactorModel&) {
        if (s.epoch == 2) epoch2 = s.loss_ts;
      });
  ASSERT_TRUE(result2.ok());
  EXPECT_DOUBLE_EQ(epoch2, recomputed);
}

TEST(TemporalSmoothnessTest, GradientMatchesNumerical) {
  // Directly validate AddTemporalSmoothness's analytic gradient against a
  // numerical derivative of the penalty.
  World w = MakeWorld();
  TcssConfig cfg;
  cfg.temporal_smoothness = 2.0;
  TcssTrainer trainer(w.data, w.train, cfg);

  Rng rng(5);
  FactorModel m;
  m.u1 = Matrix::GaussianRandom(w.train.dim_i(), 3, &rng, 0.3);
  m.u2 = Matrix::GaussianRandom(w.train.dim_j(), 3, &rng, 0.3);
  m.u3 = Matrix::GaussianRandom(w.train.dim_k(), 3, &rng, 0.3);
  m.h = {1.0, 1.0, 1.0};

  FactorGrads g(m);
  g.Zero();
  const double base_loss = trainer.AddTemporalSmoothness(m, 2.0, &g);
  EXPECT_GT(base_loss, 0.0);
  const double eps = 1e-6;
  for (size_t k = 0; k < m.u3.rows(); ++k) {
    for (size_t t = 0; t < 3; ++t) {
      const double orig = m.u3(k, t);
      FactorGrads dummy(m);
      m.u3(k, t) = orig + eps;
      const double up = trainer.AddTemporalSmoothness(m, 2.0, &dummy);
      m.u3(k, t) = orig - eps;
      const double down =
          trainer.AddTemporalSmoothness(m, 2.0, &dummy);
      m.u3(k, t) = orig;
      EXPECT_NEAR(g.u3(k, t), (up - down) / (2 * eps), 1e-5);
    }
  }
  // The penalty never touches the other factors.
  EXPECT_DOUBLE_EQ(g.u1.MaxAbs(), 0.0);
  EXPECT_DOUBLE_EQ(g.u2.MaxAbs(), 0.0);
}

TEST(LambdaScalingTest, AppliedExactlyOnceInTotalLoss) {
  // Regression: ComputeWithGrads returns the raw extrapolated Hausdorff
  // value and bakes lambda only into the gradients; the trainer must
  // multiply the value by lambda exactly once when reporting loss_l1.
  // (It used to report the raw value, so TotalLoss disagreed with the
  // gradients by a factor of 1/lambda on the L1 head.)
  World w = MakeWorld();
  TcssConfig cfg;
  cfg.epochs = 1;
  cfg.hausdorff_pool = 48;
  cfg.max_friend_pois = 24;
  cfg.hausdorff_users_per_epoch = 0;  // full batch: rotation-invariant

  double reported = -1.0;
  TcssTrainer trainer(w.data, w.train, cfg);
  auto result = trainer.Train(
      [&reported](const EpochStats& s, const FactorModel&) {
        if (s.epoch == 1) reported = s.loss_l1;
      });
  ASSERT_TRUE(result.ok());
  ASSERT_GT(reported, 0.0);

  // Recompute epoch 1's L1 head independently: same init model, a fresh
  // loss object at rotation 0.
  auto init = InitializeFactors(w.train, cfg);
  ASSERT_TRUE(init.ok());
  SocialHausdorffLoss loss(w.data, w.train, cfg);
  const double raw =
      loss.ComputeWithGrads(init.value(), cfg.lambda, nullptr);
  EXPECT_DOUBLE_EQ(reported, cfg.lambda * raw);
}

TEST(LambdaScalingTest, HausdorffGradientMatchesNumerical) {
  // The loss the trainer monitors is lambda * ComputeWithGrads(...); the
  // accumulated gradients must be the derivative of exactly that — a
  // doubled lambda (or a second lambda application anywhere) would show
  // up as a 2x mismatch here.
  World w = MakeWorld();
  TcssConfig cfg;
  cfg.hausdorff_pool = 32;
  cfg.max_friend_pois = 16;
  cfg.hausdorff_users_per_epoch = 0;  // full batch: rotation-invariant
  SocialHausdorffLoss loss(w.data, w.train, cfg);
  ASSERT_GT(loss.num_eligible_users(), 0u);

  Rng rng(17);
  FactorModel m;
  m.u1 = Matrix::GaussianRandom(w.train.dim_i(), 3, &rng, 0.3);
  m.u2 = Matrix::GaussianRandom(w.train.dim_j(), 3, &rng, 0.3);
  m.u3 = Matrix::GaussianRandom(w.train.dim_k(), 3, &rng, 0.3);
  m.h = {1.0, 1.0, 1.0};

  const double lambda = cfg.lambda;
  FactorGrads g(m);
  g.Zero();
  const double raw = loss.ComputeWithGrads(m, lambda, &g);
  ASSERT_GT(raw, 0.0);

  // Doubling lambda leaves the returned value unchanged and scales the
  // gradients exactly twofold.
  FactorGrads g2(m);
  g2.Zero();
  EXPECT_DOUBLE_EQ(loss.ComputeWithGrads(m, 2.0 * lambda, &g2), raw);
  for (size_t j = 0; j < m.u2.rows(); ++j) {
    for (size_t t = 0; t < 3; ++t) {
      EXPECT_DOUBLE_EQ(g2.u2(j, t), 2.0 * g.u2(j, t));
    }
  }

  // Central differences of f(m) = lambda * ComputeWithGrads(m) over the
  // POI factors (the head the Hausdorff distance acts on).
  const double eps = 1e-6;
  for (size_t j = 0; j < std::min<size_t>(6, m.u2.rows()); ++j) {
    for (size_t t = 0; t < 3; ++t) {
      const double orig = m.u2(j, t);
      m.u2(j, t) = orig + eps;
      const double up = lambda * loss.ComputeWithGrads(m, lambda, nullptr);
      m.u2(j, t) = orig - eps;
      const double down =
          lambda * loss.ComputeWithGrads(m, lambda, nullptr);
      m.u2(j, t) = orig;
      EXPECT_NEAR(g.u2(j, t), (up - down) / (2 * eps), 1e-5)
          << "u2(" << j << "," << t << ")";
    }
  }
}

TEST(LrScheduleTest, StepFactorAppliesLateInTraining) {
  // Indirect but observable: with a brutal step factor the late epochs
  // barely change the model, so the final factors of a run with
  // lr_step_factor ~ 0 match the 60%-epoch snapshot closely.
  World w = MakeWorld();
  TcssConfig cfg;
  cfg.epochs = 50;
  cfg.hausdorff = HausdorffMode::kNone;
  cfg.lambda = 0.0;
  cfg.lr_step_factor = 1e-6;

  Matrix snapshot;
  TcssTrainer trainer(w.data, w.train, cfg);
  auto result = trainer.Train(
      [&snapshot, &cfg](const EpochStats& s, const FactorModel& m) {
        if (s.epoch == cfg.epochs * 3 / 5) snapshot = m.u1;
      });
  ASSERT_TRUE(result.ok());
  ASSERT_GT(snapshot.rows(), 0u);
  EXPECT_LT(MaxAbsDiff(result.value().u1, snapshot), 1e-3);
}

// --- Graceful-stop flag (TrainOptions::stop) ----------------------------

TEST(GracefulStopTest, StopFlagEndsTrainingCleanlyAtThatEpoch) {
  World w = MakeWorld();
  TcssConfig cfg;
  cfg.epochs = 200;
  cfg.hausdorff = HausdorffMode::kNone;
  cfg.lambda = 0.0;

  std::atomic<bool> stop{false};
  TrainOptions opts;
  opts.stop = &stop;
  int last_epoch = 0;
  TcssTrainer trainer(w.data, w.train, cfg);
  auto result =
      trainer.Train(opts, [&](const EpochStats& s, const FactorModel&) {
        last_epoch = s.epoch;
        if (s.epoch == 7) stop.store(true);  // "SIGINT" after epoch 7
      });
  // A stopped run is a *successful* shorter run: ok status, usable model.
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(last_epoch, 7);
  EXPECT_GT(result.value().rank(), 0u);
}

TEST(GracefulStopTest, StopWritesFinalCheckpointAndResumeContinues) {
  World w = MakeWorld();
  TcssConfig cfg;
  cfg.epochs = 30;
  cfg.hausdorff = HausdorffMode::kNone;
  cfg.lambda = 0.0;

  CheckpointOptions copts;
  copts.dir = ::testing::TempDir() + "/stop_ckpt";
  std::filesystem::remove_all(copts.dir);  // stale runs must not leak in
  copts.every = 1000;  // never periodic: only the stop path writes
  CheckpointManager ckpts(copts);
  ASSERT_TRUE(ckpts.Init().ok());

  std::atomic<bool> stop{false};
  TrainOptions opts;
  opts.checkpoints = &ckpts;
  opts.stop = &stop;
  TcssTrainer trainer(w.data, w.train, cfg);
  auto stopped =
      trainer.Train(opts, [&](const EpochStats& s, const FactorModel&) {
        if (s.epoch == 5) stop.store(true);
      });
  ASSERT_TRUE(stopped.ok());

  // The interruption point was persisted through the atomic path.
  auto ckpt = ckpts.LoadLatest();
  ASSERT_TRUE(ckpt.ok());
  EXPECT_EQ(ckpt.value().epoch, 5);

  // --resume picks up from epoch 5 and runs to completion, matching the
  // uninterrupted run bit-for-bit (the resume-determinism contract).
  TrainOptions resume_opts;
  resume_opts.checkpoints = &ckpts;
  resume_opts.resume = true;
  int first_resumed_epoch = 0;
  TcssTrainer resumed_trainer(w.data, w.train, cfg);
  auto resumed = resumed_trainer.Train(
      resume_opts, [&](const EpochStats& s, const FactorModel&) {
        if (first_resumed_epoch == 0) first_resumed_epoch = s.epoch;
      });
  ASSERT_TRUE(resumed.ok());
  EXPECT_EQ(first_resumed_epoch, 6);

  TcssTrainer straight_trainer(w.data, w.train, cfg);
  auto straight = straight_trainer.Train();
  ASSERT_TRUE(straight.ok());
  EXPECT_EQ(MaxAbsDiff(resumed.value().u1, straight.value().u1), 0.0);
  EXPECT_EQ(MaxAbsDiff(resumed.value().u2, straight.value().u2), 0.0);
  EXPECT_EQ(MaxAbsDiff(resumed.value().u3, straight.value().u3), 0.0);
}

// `tcss train --resume` sets require_checkpoint: a resume that finds no
// loadable checkpoint must fail loudly instead of silently cold-starting
// (the CLI turns this status into a nonzero exit + diagnostic).
TEST(RequireCheckpointTest, ResumeWithEmptyDirFailsPrecondition) {
  World w = MakeWorld();
  TcssConfig cfg;
  cfg.epochs = 2;
  cfg.hausdorff = HausdorffMode::kNone;
  cfg.lambda = 0.0;

  CheckpointOptions copts;
  copts.dir = ::testing::TempDir() + "/require_empty";
  std::filesystem::remove_all(copts.dir);
  std::filesystem::create_directories(copts.dir);
  CheckpointManager ckpts(copts);
  ASSERT_TRUE(ckpts.Init().ok());

  TrainOptions opts;
  opts.checkpoints = &ckpts;
  opts.resume = true;
  opts.require_checkpoint = true;
  TcssTrainer trainer(w.data, w.train, cfg);
  auto result = trainer.Train(opts, nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  // The diagnostic must name the directory the user pointed at.
  EXPECT_NE(result.status().message().find(copts.dir), std::string::npos)
      << result.status().ToString();
}

TEST(RequireCheckpointTest, ResumeWithOnlyCorruptCheckpointsFails) {
  World w = MakeWorld();
  TcssConfig cfg;
  cfg.epochs = 2;
  cfg.hausdorff = HausdorffMode::kNone;
  cfg.lambda = 0.0;

  CheckpointOptions copts;
  copts.dir = ::testing::TempDir() + "/require_corrupt";
  std::filesystem::remove_all(copts.dir);
  std::filesystem::create_directories(copts.dir);
  for (const char* name : {"ckpt-000003.tckp", "ckpt-000007.tckp"}) {
    std::ofstream f(copts.dir + "/" + name, std::ios::binary);
    f << "TCKPv1 garbage that fails the CRC footer\n";
  }
  CheckpointManager ckpts(copts);
  ASSERT_TRUE(ckpts.Init().ok());

  TrainOptions opts;
  opts.checkpoints = &ckpts;
  opts.resume = true;
  opts.require_checkpoint = true;
  TcssTrainer trainer(w.data, w.train, cfg);
  auto result = trainer.Train(opts, nullptr);
  ASSERT_FALSE(result.ok());
  // Damage is IOError (distinct from the FailedPrecondition of "nothing
  // there at all") and names the corruption, so the operator can tell a
  // wiped directory from a mangled one.
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
  EXPECT_NE(result.status().message().find("corrupt"), std::string::npos)
      << result.status().ToString();

  // Even without the strict flag a damaged directory must not silently
  // cold-start: corrupt-everywhere is an error on any resume.
  opts.require_checkpoint = false;
  TcssTrainer lenient(w.data, w.train, cfg);
  auto still_bad = lenient.Train(opts, nullptr);
  ASSERT_FALSE(still_bad.ok());
  EXPECT_EQ(still_bad.status().code(), StatusCode::kIOError);
}

TEST(GracefulStopTest, NullStopAndNeverTrippedFlagChangeNothing) {
  World w = MakeWorld();
  TcssConfig cfg;
  cfg.epochs = 10;
  cfg.hausdorff = HausdorffMode::kNone;
  cfg.lambda = 0.0;

  std::atomic<bool> never{false};
  TrainOptions with_flag;
  with_flag.stop = &never;
  TcssTrainer a(w.data, w.train, cfg);
  TcssTrainer b(w.data, w.train, cfg);
  auto with = a.Train(with_flag, nullptr);
  auto without = b.Train();
  ASSERT_TRUE(with.ok());
  ASSERT_TRUE(without.ok());
  EXPECT_EQ(MaxAbsDiff(with.value().u1, without.value().u1), 0.0);
}

}  // namespace
}  // namespace tcss
