// Determinism suite for the parallel training engine: the ThreadPool /
// ParallelFor primitives, exact serial-vs-parallel equality of the
// row-sharded kernels (MatMul, Gram, MTTKRP), bitwise equality of the
// per-shard-reduced losses across thread counts, byte-identical trained
// models at num_threads in {1, 2, 8}, and bit-identical kill-and-resume
// in kNegativeSampling mode (the counter-based sampler state).
//
// tools/check.sh runs this suite under ThreadSanitizer as well.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/checkpoint.h"
#include "obs/metrics.h"
#include "core/model_io.h"
#include "core/trainer.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "data/tensor_builder.h"
#include "tensor/mttkrp.h"

namespace tcss {
namespace {

struct World {
  Dataset data;
  SparseTensor train;
};

World MakeWorld() {
  auto data = GenerateSyntheticLbsn(
      PresetConfig(SyntheticPreset::kGowallaLike, 0.2));
  EXPECT_TRUE(data.ok());
  TrainTestSplit split = SplitCheckins(data.value(), 0.8, 3);
  auto train = BuildCheckinTensor(data.value(), split.train,
                                  TimeGranularity::kMonthOfYear);
  EXPECT_TRUE(train.ok());
  return {data.MoveValue(), train.MoveValue()};
}

bool BitIdentical(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a.data()[i] != b.data()[i]) return false;
  }
  return true;
}

bool BitIdentical(const FactorGrads& a, const FactorGrads& b) {
  return a.h == b.h && BitIdentical(a.u1, b.u1) && BitIdentical(a.u2, b.u2) &&
         BitIdentical(a.u3, b.u3);
}

/// RAII: restore the global pool to 1 thread when a test ends.
struct ThreadGuard {
  ~ThreadGuard() { SetGlobalThreads(1); }
};

// --------------------------------------------------------------------------
// ThreadPool / ParallelFor primitives
// --------------------------------------------------------------------------

TEST(ThreadPoolTest, RunExecutesEveryShardExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kShards = 257;
  std::vector<std::atomic<int>> hits(kShards);
  pool.Run(kShards, [&](size_t s) { hits[s].fetch_add(1); });
  for (size_t s = 0; s < kShards; ++s) {
    EXPECT_EQ(hits[s].load(), 1) << "shard " << s;
  }
}

TEST(ThreadPoolTest, PoolIsReusableAcrossJobs) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<size_t> sum{0};
    pool.Run(50, [&](size_t s) { sum.fetch_add(s); });
    EXPECT_EQ(sum.load(), 50u * 49u / 2u) << "round " << round;
  }
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  size_t count = 0;  // no atomics needed: everything runs on this thread
  pool.Run(10, [&](size_t) { ++count; });
  EXPECT_EQ(count, 10u);
}

TEST(ParallelForTest, CoversRangeExactlyOnceAtAnyThreadCount) {
  ThreadGuard guard;
  for (int threads : {1, 2, 8}) {
    SetGlobalThreads(threads);
    constexpr size_t kN = 1003;
    std::vector<std::atomic<int>> hits(kN);
    ParallelFor(kN, 64, [&](size_t begin, size_t end, size_t) {
      for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    for (size_t i = 0; i < kN; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "i=" << i << " threads=" << threads;
    }
  }
}

TEST(ParallelForTest, ShardDecompositionIgnoresThreadCount) {
  ThreadGuard guard;
  EXPECT_EQ(ParallelForShards(0, 64), 0u);
  EXPECT_EQ(ParallelForShards(1, 64), 1u);
  EXPECT_EQ(ParallelForShards(64, 64), 1u);
  EXPECT_EQ(ParallelForShards(65, 64), 2u);
  // The (begin, end, shard) triples ParallelFor produces must be the same
  // set regardless of the thread count.
  auto collect = [&](int threads) {
    SetGlobalThreads(threads);
    std::vector<std::vector<size_t>> triples(ParallelForShards(1000, 128));
    ParallelFor(1000, 128, [&](size_t begin, size_t end, size_t s) {
      triples[s] = {begin, end};
    });
    return triples;
  };
  EXPECT_EQ(collect(1), collect(8));
}

TEST(ParallelForTest, NestedCallsRunInlineWithoutDeadlock) {
  ThreadGuard guard;
  SetGlobalThreads(4);
  std::vector<std::atomic<int>> hits(16 * 16);
  ParallelFor(16, 1, [&](size_t ob, size_t, size_t) {
    ParallelFor(16, 4, [&](size_t begin, size_t end, size_t) {
      for (size_t i = begin; i < end; ++i) hits[ob * 16 + i].fetch_add(1);
    });
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "cell " << i;
  }
}

// --------------------------------------------------------------------------
// Kernels: parallel result == serial result, bit for bit
// --------------------------------------------------------------------------

TEST(KernelDeterminismTest, MatMulParallelMatchesSerialExactly) {
  ThreadGuard guard;
  Rng rng(7);
  const Matrix a = Matrix::GaussianRandom(150, 40, &rng);
  const Matrix b = Matrix::GaussianRandom(40, 60, &rng);
  SetGlobalThreads(1);
  const Matrix serial = MatMul(a, b);
  for (int threads : {2, 8}) {
    SetGlobalThreads(threads);
    EXPECT_TRUE(BitIdentical(serial, MatMul(a, b))) << threads << " threads";
  }
}

TEST(KernelDeterminismTest, GramParallelMatchesSerialExactly) {
  ThreadGuard guard;
  Rng rng(8);
  const Matrix a = Matrix::GaussianRandom(500, 32, &rng);
  SetGlobalThreads(1);
  const Matrix serial = Gram(a);
  for (int threads : {2, 8}) {
    SetGlobalThreads(threads);
    EXPECT_TRUE(BitIdentical(serial, Gram(a))) << threads << " threads";
  }
}

TEST(KernelDeterminismTest, MttkrpParallelMatchesSerialExactlyAllModes) {
  ThreadGuard guard;
  World w = MakeWorld();
  ASSERT_GT(w.train.nnz(), 1000u);  // large enough to cross the threshold
  const size_t r = 16;
  Rng rng(9);
  Matrix factors[3] = {
      Matrix::GaussianRandom(w.train.dim_i(), r, &rng),
      Matrix::GaussianRandom(w.train.dim_j(), r, &rng),
      Matrix::GaussianRandom(w.train.dim_k(), r, &rng)};
  for (int mode = 0; mode < 3; ++mode) {
    SetGlobalThreads(1);
    const Matrix serial = Mttkrp(w.train, factors, mode);
    for (int threads : {2, 8}) {
      SetGlobalThreads(threads);
      EXPECT_TRUE(BitIdentical(serial, Mttkrp(w.train, factors, mode)))
          << "mode " << mode << ", " << threads << " threads";
    }
  }
}

// --------------------------------------------------------------------------
// Losses: per-shard ordered reduction is thread-count invariant
// --------------------------------------------------------------------------

TEST(LossDeterminismTest, RewrittenLossBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  World w = MakeWorld();
  TcssConfig cfg;
  RewrittenLoss loss(cfg.w_pos, cfg.w_neg);
  Rng rng(11);
  FactorModel model;
  model.u1 = Matrix::GaussianRandom(w.train.dim_i(), cfg.rank, &rng, 0.1);
  model.u2 = Matrix::GaussianRandom(w.train.dim_j(), cfg.rank, &rng, 0.1);
  model.u3 = Matrix::GaussianRandom(w.train.dim_k(), cfg.rank, &rng, 0.1);
  model.h.assign(cfg.rank, 1.0);

  SetGlobalThreads(1);
  FactorGrads ref(model);
  const double ref_loss = loss.ComputeWithGrads(model, w.train, &ref);
  for (int threads : {2, 8}) {
    SetGlobalThreads(threads);
    FactorGrads got(model);
    const double got_loss = loss.ComputeWithGrads(model, w.train, &got);
    EXPECT_EQ(ref_loss, got_loss) << threads << " threads";
    EXPECT_TRUE(BitIdentical(ref, got)) << threads << " threads";
  }
}

TEST(LossDeterminismTest, NegativeSamplingBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  World w = MakeWorld();
  TcssConfig cfg;
  Rng rng(12);
  FactorModel model;
  model.u1 = Matrix::GaussianRandom(w.train.dim_i(), cfg.rank, &rng, 0.1);
  model.u2 = Matrix::GaussianRandom(w.train.dim_j(), cfg.rank, &rng, 0.1);
  model.u3 = Matrix::GaussianRandom(w.train.dim_k(), cfg.rank, &rng, 0.1);
  model.h.assign(cfg.rank, 1.0);

  SetGlobalThreads(1);
  NegativeSamplingLoss ref_loss(cfg.w_pos, cfg.w_neg, 99);
  FactorGrads ref(model);
  const double ref_val = ref_loss.ComputeWithGrads(model, w.train, &ref);
  for (int threads : {2, 8}) {
    SetGlobalThreads(threads);
    // Fresh loss object: same seed, same call counter (0) -> the sampled
    // negatives must be the same cells regardless of the thread count.
    NegativeSamplingLoss loss(cfg.w_pos, cfg.w_neg, 99);
    FactorGrads got(model);
    const double got_val = loss.ComputeWithGrads(model, w.train, &got);
    EXPECT_EQ(ref_val, got_val) << threads << " threads";
    EXPECT_TRUE(BitIdentical(ref, got)) << threads << " threads";
  }
}

TEST(LossDeterminismTest, HausdorffBatchGradsBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  World w = MakeWorld();
  TcssConfig cfg;
  cfg.hausdorff_pool = 64;
  cfg.max_friend_pois = 32;
  cfg.hausdorff_users_per_epoch = 48;
  SocialHausdorffLoss loss(w.data, w.train, cfg);
  ASSERT_GT(loss.num_eligible_users(), 0u);
  Rng rng(13);
  FactorModel model;
  model.u1 = Matrix::GaussianRandom(w.train.dim_i(), cfg.rank, &rng, 0.1);
  model.u2 = Matrix::GaussianRandom(w.train.dim_j(), cfg.rank, &rng, 0.1);
  model.u3 = Matrix::GaussianRandom(w.train.dim_k(), cfg.rank, &rng, 0.1);
  model.h.assign(cfg.rank, 1.0);

  SetGlobalThreads(1);
  loss.set_rotation(0);
  FactorGrads ref(model);
  const double ref_val = loss.ComputeWithGrads(model, cfg.lambda, &ref);
  for (int threads : {2, 8}) {
    SetGlobalThreads(threads);
    loss.set_rotation(0);  // replay the same minibatch
    FactorGrads got(model);
    const double got_val = loss.ComputeWithGrads(model, cfg.lambda, &got);
    EXPECT_EQ(ref_val, got_val) << threads << " threads";
    EXPECT_TRUE(BitIdentical(ref, got)) << threads << " threads";
  }
}

TEST(LossDeterminismTest, UnderDrawnNegativesAreRescaled) {
  ThreadGuard guard;
  SetGlobalThreads(2);
  // 8x8x8 tensor with every cell observed except (7,7,7): the rejection
  // sampler can only ever accept that one free cell, so it exhausts its
  // guard far short of the nnz=511 negatives it wants. The w- term must
  // be rescaled by want/drawn, keeping the loss at what a full draw of
  // 511 negatives would produce (every negative scores the same y here).
  SparseTensor dense(8, 8, 8);
  for (uint32_t i = 0; i < 8; ++i) {
    for (uint32_t j = 0; j < 8; ++j) {
      for (uint32_t k = 0; k < 8; ++k) {
        if (i == 7 && j == 7 && k == 7) continue;
        ASSERT_TRUE(dense.Add(i, j, k, 1.0).ok());
      }
    }
  }
  ASSERT_TRUE(dense.Finalize().ok());
  ASSERT_EQ(dense.nnz(), 511u);

  // Rank-1 all-ones model with h = c: Predict == c for every cell.
  const double c = 0.25;
  FactorModel model;
  model.u1.Resize(8, 1, 1.0);
  model.u2.Resize(8, 1, 1.0);
  model.u3.Resize(8, 1, 1.0);
  model.h = {c};

  const double w_pos = 0.95, w_neg = 0.05;
  NegativeSamplingLoss loss(w_pos, w_neg, 99);
  FactorGrads grads(model);
  const double value = loss.ComputeWithGrads(model, dense, &grads);

  const double pos_term =
      511.0 * (w_pos * (c - 1.0) * (c - 1.0));
  const double neg_term = 511.0 * w_neg * c * c;  // want * w- * y^2
  EXPECT_NEAR(value, pos_term + neg_term, 1e-9 * (pos_term + neg_term));
}

// --------------------------------------------------------------------------
// End-to-end: byte-identical models at any thread count
// --------------------------------------------------------------------------

std::string TrainToBytes(const World& w, TcssConfig cfg, int threads) {
  cfg.num_threads = threads;
  TcssTrainer trainer(w.data, w.train, cfg);
  auto result = trainer.Train();
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (!result.ok()) return "";
  return SerializeFactorModel(result.value());
}

TEST(TrainingDeterminismTest, RewrittenModeByteIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  World w = MakeWorld();
  TcssConfig cfg;
  cfg.epochs = 6;
  cfg.hausdorff_pool = 64;
  cfg.max_friend_pois = 32;
  cfg.hausdorff_users_per_epoch = 32;
  const std::string one = TrainToBytes(w, cfg, 1);
  ASSERT_FALSE(one.empty());
  EXPECT_EQ(one, TrainToBytes(w, cfg, 2));
  EXPECT_EQ(one, TrainToBytes(w, cfg, 8));
}

TEST(TrainingDeterminismTest,
     NegativeSamplingModeByteIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  World w = MakeWorld();
  TcssConfig cfg;
  cfg.epochs = 6;
  cfg.loss_mode = LossMode::kNegativeSampling;
  cfg.hausdorff = HausdorffMode::kNone;
  cfg.lambda = 0.0;
  const std::string one = TrainToBytes(w, cfg, 1);
  ASSERT_FALSE(one.empty());
  EXPECT_EQ(one, TrainToBytes(w, cfg, 2));
  EXPECT_EQ(one, TrainToBytes(w, cfg, 8));
}

// The observability contract: metrics only observe, they never feed back
// into computation. A run with telemetry fully disabled must produce the
// same model bytes as instrumented runs at every thread count.
TEST(TrainingDeterminismTest, MetricsDoNotPerturbTrainedBytes) {
  ThreadGuard guard;
  World w = MakeWorld();
  TcssConfig cfg;
  cfg.epochs = 6;
  cfg.hausdorff_pool = 64;
  cfg.max_friend_pois = 32;
  cfg.hausdorff_users_per_epoch = 32;

  obs::SetMetricsEnabled(false);
  const std::string metrics_off = TrainToBytes(w, cfg, 1);
  obs::SetMetricsEnabled(true);
  ASSERT_FALSE(metrics_off.empty());

  EXPECT_EQ(metrics_off, TrainToBytes(w, cfg, 1));
  EXPECT_EQ(metrics_off, TrainToBytes(w, cfg, 2));
  EXPECT_EQ(metrics_off, TrainToBytes(w, cfg, 8));
}

TEST(TrainingDeterminismTest, NegativeSamplingKillAndResumeIsBitIdentical) {
  ThreadGuard guard;
  World w = MakeWorld();
  TcssConfig cfg;
  cfg.epochs = 8;
  cfg.loss_mode = LossMode::kNegativeSampling;
  cfg.hausdorff = HausdorffMode::kNone;
  cfg.lambda = 0.0;

  // Reference: uninterrupted run.
  std::string reference;
  {
    TcssTrainer trainer(w.data, w.train, cfg);
    auto result = trainer.Train();
    ASSERT_TRUE(result.ok());
    reference = SerializeFactorModel(result.value());
  }

  // Interrupted run: train the full 8 epochs with snapshots, then delete
  // the final checkpoint to simulate a crash after epoch 4 (training to
  // epoch 4 with cfg.epochs=4 would change the LR schedule, which scales
  // with the total epoch count). Resuming in a fresh trainer must replay
  // epochs 5..8 bit-exactly; without the persisted sampler call counter
  // the resumed epochs would redraw epoch 1..4's negatives and diverge
  // from the reference bytes.
  const std::string dir =
      ::testing::TempDir() + "/tcss_neg_sampling_resume";
  std::filesystem::remove_all(dir);
  CheckpointOptions copts;
  copts.dir = dir;
  copts.every = 4;
  copts.retain = 10;
  CheckpointManager mgr(copts);
  ASSERT_TRUE(mgr.Init().ok());
  {
    TcssTrainer trainer(w.data, w.train, cfg);
    TrainOptions topts;
    topts.checkpoints = &mgr;
    ASSERT_TRUE(trainer.Train(topts, nullptr).ok());
  }
  ASSERT_TRUE(std::filesystem::remove(dir + "/ckpt-000008.tckp"));
  {
    TcssTrainer trainer(w.data, w.train, cfg);
    TrainOptions topts;
    topts.checkpoints = &mgr;
    topts.resume = true;
    int first_epoch = 0;
    auto result = trainer.Train(
        topts, [&first_epoch](const EpochStats& s, const FactorModel&) {
          if (first_epoch == 0) first_epoch = s.epoch;
        });
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(first_epoch, 5);
    EXPECT_EQ(reference, SerializeFactorModel(result.value()));
  }
}

}  // namespace
}  // namespace tcss
