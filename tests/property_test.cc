// Property-based differential-oracle suite (ctest label `proptest`,
// DESIGN.md §9): every optimized kernel and loss is checked against the
// naive reference implementations in src/proptest/oracles.* over seeded
// random inputs, plus metamorphic laws (permutation equivariance, scaling
// homogeneity, fold-in reproduction) and central-difference gradient
// checks. tools/check.sh runs this suite plain, under ASan/UBSan, and
// under TSan (the multi-threaded kernel-equality properties).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "core/fold_in.h"
#include "core/incremental_fold_in.h"
#include "core/model_io.h"
#include "data/synthetic.h"
#include "data/tensor_builder.h"
#include "data/time_binning.h"
#include "eval/chronological.h"
#include "stream/delta_buffer.h"
#include "stream/refiner.h"
#include "core/hausdorff_loss.h"
#include "core/recommend.h"
#include "core/whole_data_loss.h"
#include "linalg/matrix.h"
#include "proptest/generators.h"
#include "proptest/oracles.h"
#include "linalg/simd.h"
#include "proptest/prop.h"
#include "tensor/csf_tensor.h"
#include "tensor/mttkrp.h"
#include "tensor/sparse_kernels.h"

namespace tcss {
namespace {

using proptest::CentralDifferenceGrads;
using proptest::GenFactorModel;
using proptest::GenInteriorFactorModel;
using proptest::GenLbsnCase;
using proptest::GenRank;
using proptest::GenSparseTensor;
using proptest::GenTensorOptions;
using proptest::LbsnCase;
using proptest::OracleDenseLoss;
using proptest::OracleFoldIn;
using proptest::OracleGram;
using proptest::OracleHausdorffUser;
using proptest::OracleMatMul;
using proptest::OracleMatTMul;
using proptest::OracleMttkrp;
using proptest::OracleTopK;
using proptest::Prop;
using proptest::PropOptions;
using proptest::PropReport;
using proptest::RelDiff;
using proptest::RelMaxDiff;

/// Restores the single-threaded global pool however a predicate exits.
struct ThreadGuard {
  ~ThreadGuard() { SetGlobalThreads(1); }
};

// ---------------------------------------------------------------------------
// Framework self-tests
// ---------------------------------------------------------------------------

TEST(PropFramework, PassingPropertyRunsAllCases) {
  auto gen = [](uint64_t seed, uint32_t size) {
    Rng rng(seed);
    return rng.UniformInt(size + 1);
  };
  auto pred = [](const uint64_t& v, std::string*) { return v <= 1u << 20; };
  PropReport report = Prop::Check<uint64_t>("always-true", 64, gen, pred);
  EXPECT_TRUE(report.ok);
  EXPECT_EQ(report.cases_run, 64);
}

TEST(PropFramework, CaseSeedsAndSizesAreDeterministic) {
  const uint64_t s0 = proptest::DeriveCaseSeed(123, 0);
  EXPECT_EQ(s0, proptest::DeriveCaseSeed(123, 0));
  EXPECT_NE(s0, proptest::DeriveCaseSeed(123, 1));
  EXPECT_NE(s0, proptest::DeriveCaseSeed(124, 0));
  for (uint32_t max : {1u, 2u, 7u, 64u}) {
    const uint32_t size = proptest::SizeForSeed(s0, max);
    EXPECT_GE(size, 1u);
    EXPECT_LE(size, max);
    EXPECT_EQ(size, proptest::SizeForSeed(s0, max));
  }
}

// Acceptance property: a forced failure prints a TCSS_PROPTEST_SEED line
// that deterministically reproduces the same shrunk counterexample.
TEST(PropFramework, ForcedFailurePrintsSeedThatReplaysShrunkCase) {
  using Case = std::vector<uint64_t>;
  auto gen = [](uint64_t seed, uint32_t size) {
    Rng rng(seed);
    Case v(size);
    for (uint64_t& x : v) x = rng.UniformInt(1000);
    return v;
  };
  // Always-false predicate with an input-dependent message, so "the same
  // counterexample" is observable through the report.
  auto pred = [](const Case& v, std::string* msg) {
    *msg = StrFormat("len=%zu head=%llu", v.size(),
                     static_cast<unsigned long long>(v.empty() ? 0 : v[0]));
    return false;
  };

  ::testing::internal::CaptureStderr();
  PropReport report = Prop::Check<Case>("forced-failure", 50, gen, pred);
  const std::string log = ::testing::internal::GetCapturedStderr();

  ASSERT_FALSE(report.ok);
  EXPECT_EQ(report.shrunk_size, 1u);  // halving all the way down
  EXPECT_NE(log.find("FALSIFIED forced-failure"), std::string::npos) << log;
  const std::string repro_line =
      "TCSS_PROPTEST_SEED=" + std::to_string(report.fail_seed);
  EXPECT_NE(log.find(repro_line), std::string::npos) << log;

  // Replay through the environment variable: one case, same seed, same
  // initial size, identical shrunk counterexample.
  ASSERT_EQ(setenv("TCSS_PROPTEST_SEED",
                   std::to_string(report.fail_seed).c_str(), 1),
            0);
  ::testing::internal::CaptureStderr();
  PropReport replay = Prop::Check<Case>("forced-failure", 50, gen, pred);
  ::testing::internal::GetCapturedStderr();
  unsetenv("TCSS_PROPTEST_SEED");

  ASSERT_FALSE(replay.ok);
  EXPECT_EQ(replay.fail_seed, report.fail_seed);
  EXPECT_EQ(replay.fail_size, report.fail_size);
  EXPECT_EQ(replay.shrunk_size, report.shrunk_size);
  EXPECT_EQ(replay.message, report.message);
}

TEST(PropFramework, ShrinkingStopsAtSmallestFailingSize) {
  auto gen = [](uint64_t, uint32_t size) { return size; };
  // Fails for size >= 3: shrinking should land exactly on 3 (not below).
  auto pred = [](const uint32_t& size, std::string* msg) {
    if (size < 3) return true;
    *msg = StrFormat("size=%u", size);
    return false;
  };
  ::testing::internal::CaptureStderr();
  PropOptions opts;
  opts.max_size = 64;
  PropReport report = Prop::Check<uint32_t>("shrink-floor", 200, gen, pred,
                                            opts);
  ::testing::internal::GetCapturedStderr();
  ASSERT_FALSE(report.ok);
  EXPECT_GE(report.shrunk_size, 3u);
  EXPECT_LT(report.shrunk_size, 6u);  // halving cannot overshoot 2x
}

// ---------------------------------------------------------------------------
// Whole-data loss vs the dense Eq 14 oracle
// ---------------------------------------------------------------------------

struct LossCase {
  SparseTensor x;
  FactorModel model;
  double w_pos = 0.0, w_neg = 0.0;
  bool binary = true;
};

LossCase MakeLossCase(uint64_t seed, uint32_t size, bool force_real = false) {
  Rng rng(seed);
  LossCase c;
  c.binary = force_real ? false : rng.Bernoulli(0.6);
  GenTensorOptions topts;
  topts.binary = c.binary;
  c.x = GenSparseTensor(&rng, size, topts);
  const size_t rank = GenRank(&rng, size);
  c.model =
      GenFactorModel(&rng, c.x.dim_i(), c.x.dim_j(), c.x.dim_k(), rank);
  c.w_pos = rng.Uniform(0.5, 1.0);
  c.w_neg = rng.Uniform(0.001, 0.5);
  return c;
}

// Acceptance property: RewrittenLoss (Eq 15, Gram-rewritten whole-data
// term) equals the literal dense Eq 14 enumeration — value and every
// gradient entry — to <= 1e-10 relative error over >= 100 random configs.
TEST(DifferentialLoss, RewrittenMatchesDenseOracle) {
  auto gen = [](uint64_t seed, uint32_t size) {
    return MakeLossCase(seed, size);
  };
  auto pred = [](const LossCase& c, std::string* msg) {
    RewrittenLoss loss(c.w_pos, c.w_neg);
    FactorGrads got(c.model), want(c.model);
    const double got_loss = loss.ComputeWithGrads(c.model, c.x, &got);
    const double want_loss =
        OracleDenseLoss(c.model, c.x, c.w_pos, c.w_neg, &want);
    const double value_err = RelDiff(got_loss, want_loss);
    const double grad_err = RelMaxDiff(got, want);
    if (value_err > 1e-10 || grad_err > 1e-10) {
      *msg = StrFormat(
          "dims %zux%zux%zu r=%zu nnz=%zu: value err %.3e (rewritten "
          "%.17g vs dense %.17g), grad err %.3e",
          c.x.dim_i(), c.x.dim_j(), c.x.dim_k(), c.model.rank(), c.x.nnz(),
          value_err, got_loss, want_loss, grad_err);
      return false;
    }
    // The value-only entry point must agree with the gradient path.
    if (loss.Compute(c.model, c.x) != got_loss) {
      *msg = "Compute() != ComputeWithGrads() value";
      return false;
    }
    return true;
  };
  PropOptions opts;
  opts.max_size = 10;
  PropReport report =
      Prop::Check<LossCase>("rewritten-vs-dense-oracle", 120, gen, pred,
                            opts);
  EXPECT_TRUE(report.ok) << report.message;
  EXPECT_GE(report.cases_run, 100);
}

// NaiveLoss walks the same cells as the oracle in the same order, just
// with a sorted-cursor membership test instead of per-cell binary search —
// the two must agree bit for bit.
TEST(DifferentialLoss, NaiveMatchesDenseOracleExactly) {
  auto gen = [](uint64_t seed, uint32_t size) {
    return MakeLossCase(seed, size);
  };
  auto pred = [](const LossCase& c, std::string* msg) {
    NaiveLoss loss(c.w_pos, c.w_neg);
    FactorGrads got(c.model), want(c.model);
    const double got_loss = loss.ComputeWithGrads(c.model, c.x, &got);
    const double want_loss =
        OracleDenseLoss(c.model, c.x, c.w_pos, c.w_neg, &want);
    if (got_loss != want_loss || RelMaxDiff(got, want) != 0.0) {
      *msg = StrFormat("naive %.17g vs dense %.17g, grad err %.3e",
                       got_loss, want_loss, RelMaxDiff(got, want));
      return false;
    }
    return true;
  };
  PropOptions opts;
  opts.max_size = 8;
  PropReport report = Prop::Check<LossCase>("naive-vs-dense-oracle", 60,
                                            gen, pred, opts);
  EXPECT_TRUE(report.ok) << report.message;
}

// ---------------------------------------------------------------------------
// Dense kernels vs triple-loop oracles, at 1 / 2 / 8 threads
// ---------------------------------------------------------------------------

struct KernelCase {
  Matrix a, b;  // gemm inputs: a (m x p), b (p x n)
  Matrix c;     // MatTMul partner of a: (m x q), so a^T c is (p x q)
  SparseTensor x;
  Matrix factors[3];
};

KernelCase MakeKernelCase(uint64_t seed, uint32_t size) {
  Rng rng(seed);
  KernelCase c;
  const size_t m = 1 + rng.UniformInt(size);
  const size_t p = 1 + rng.UniformInt(size);
  const size_t n = 1 + rng.UniformInt(size);
  c.a = Matrix::GaussianRandom(m, p, &rng);
  c.b = Matrix::GaussianRandom(p, n, &rng);
  c.c = Matrix::GaussianRandom(m, 1 + rng.UniformInt(size), &rng);
  // Dense-ish tensor so nnz * r crosses the parallel-MTTKRP threshold at
  // full budget while small budgets still exercise the serial path.
  const size_t dim_i = 1 + rng.UniformInt(size);
  const size_t dim_j = 1 + rng.UniformInt(size);
  const size_t dim_k = 1 + rng.UniformInt(std::min<uint32_t>(size, 8));
  SparseTensor x(dim_i, dim_j, dim_k);
  const size_t target = rng.UniformInt(32 * size + 1);
  for (size_t e = 0; e < target; ++e) {
    (void)x.Add(static_cast<uint32_t>(rng.UniformInt(dim_i)),
                static_cast<uint32_t>(rng.UniformInt(dim_j)),
                static_cast<uint32_t>(rng.UniformInt(dim_k)),
                rng.Uniform(0.1, 2.0));
  }
  (void)x.Finalize(rng.Bernoulli(0.5));
  c.x = std::move(x);
  const size_t rank = 1 + rng.UniformInt(8);
  c.factors[0] = Matrix::GaussianRandom(dim_i, rank, &rng);
  c.factors[1] = Matrix::GaussianRandom(dim_j, rank, &rng);
  c.factors[2] = Matrix::GaussianRandom(dim_k, rank, &rng);
  return c;
}

// gemm / Gram accumulate every output element in ascending-k order on both
// the optimized (i-k-j, zero-skipping, row-sharded) and the oracle
// (i-j-k dot product) path, so they must match exactly — at any thread
// count. MTTKRP contracts in a different order (sparse entry loop vs dense
// grid), so it gets a tight tolerance against the oracle plus exact
// equality across thread counts.
TEST(DifferentialKernels, GemmGramMttkrpMatchOraclesAtManyThreads) {
  auto gen = [](uint64_t seed, uint32_t size) {
    return MakeKernelCase(seed, size);
  };
  auto pred = [](const KernelCase& c, std::string* msg) {
    ThreadGuard guard;
    const Matrix want_mm = OracleMatMul(c.a, c.b);
    const Matrix want_mtm = OracleMatTMul(c.a, c.c);
    const Matrix want_gram = OracleGram(c.a);
    Matrix want_mttkrp[3];
    for (int mode = 0; mode < 3; ++mode) {
      want_mttkrp[mode] = OracleMttkrp(c.x, c.factors, mode);
    }
    Matrix serial_mttkrp[3];
    for (int threads : {1, 2, 8}) {
      SetGlobalThreads(threads);
      if (MaxAbsDiff(MatMul(c.a, c.b), want_mm) != 0.0) {
        *msg = StrFormat("MatMul != oracle at %d threads", threads);
        return false;
      }
      if (MaxAbsDiff(MatTMul(c.a, c.c), want_mtm) != 0.0) {
        *msg = StrFormat("MatTMul != oracle at %d threads", threads);
        return false;
      }
      if (MaxAbsDiff(Gram(c.a), want_gram) != 0.0) {
        *msg = StrFormat("Gram != oracle at %d threads", threads);
        return false;
      }
      for (int mode = 0; mode < 3; ++mode) {
        const Matrix got = Mttkrp(c.x, c.factors, mode);
        const double err = RelMaxDiff(got, want_mttkrp[mode]);
        if (err > 1e-12) {
          *msg = StrFormat("Mttkrp mode %d vs oracle err %.3e at %d "
                           "threads (nnz=%zu)",
                           mode, err, threads, c.x.nnz());
          return false;
        }
        if (threads == 1) {
          serial_mttkrp[mode] = got;
        } else if (MaxAbsDiff(got, serial_mttkrp[mode]) != 0.0) {
          *msg = StrFormat(
              "Mttkrp mode %d not thread-count invariant at %d threads",
              mode, threads);
          return false;
        }
      }
    }
    return true;
  };
  PropOptions opts;
  opts.max_size = 64;
  PropReport report = Prop::Check<KernelCase>(
      "kernels-vs-triple-loop", 24, gen, pred, opts);
  EXPECT_TRUE(report.ok) << report.message;
}

// ---------------------------------------------------------------------------
// CSF tensor: structure invariants and per-mode MTTKRP differentials
// (DESIGN.md §12). GenSparseTensor is biased toward the adversarial
// shapes that matter here: empty tensors, empty modes, singleton
// dimensions, duplicate-heavy coordinates (coalesced into long fibers),
// single-slice tensors.
// ---------------------------------------------------------------------------

struct CsfCase {
  SparseTensor x;
  Matrix factors[3];
};

CsfCase MakeCsfCase(uint64_t seed, uint32_t size) {
  Rng rng(seed);
  CsfCase c;
  GenTensorOptions topts;
  topts.binary = rng.Bernoulli(0.5);
  c.x = GenSparseTensor(&rng, size, topts);
  const size_t rank = GenRank(&rng, size);
  c.factors[0] = Matrix::GaussianRandom(c.x.dim(0), rank, &rng);
  c.factors[1] = Matrix::GaussianRandom(c.x.dim(1), rank, &rng);
  c.factors[2] = Matrix::GaussianRandom(c.x.dim(2), rank, &rng);
  return c;
}

// Build-from-COO invariants: delimiter arrays are well-formed and the
// tree, walked in order, reproduces the sorted COO entry list exactly
// (which implies nnz conservation and per-level index ordering).
TEST(CsfProperties, StructureInvariantsHoldOnAdversarialTensors) {
  auto gen = [](uint64_t seed, uint32_t size) {
    Rng rng(seed);
    GenTensorOptions topts;
    topts.binary = rng.Bernoulli(0.5);
    return GenSparseTensor(&rng, size, topts);
  };
  auto pred = [](const SparseTensor& x, std::string* msg) {
    const CsfTensor csf(x);
    if (csf.nnz() != x.nnz()) {
      *msg = StrFormat("nnz %zu != COO nnz %zu", csf.nnz(), x.nnz());
      return false;
    }
    const auto& ss = csf.slice_starts();
    const auto& fs = csf.fiber_starts();
    if (ss.size() != csf.num_slices() + 1 || ss.front() != 0 ||
        ss.back() != csf.num_fibers()) {
      *msg = "slice_start delimiters malformed";
      return false;
    }
    if (fs.size() != csf.num_fibers() + 1 || fs.front() != 0 ||
        fs.back() != csf.nnz()) {
      *msg = "fiber_start delimiters malformed";
      return false;
    }
    // Every slice holds >= 1 fiber and every fiber >= 1 nonzero (empty
    // nodes would be dead weight the builder must not emit).
    for (size_t s = 0; s + 1 < ss.size(); ++s) {
      if (ss[s] >= ss[s + 1]) {
        *msg = StrFormat("empty slice %zu", s);
        return false;
      }
    }
    for (size_t f = 0; f + 1 < fs.size(); ++f) {
      if (fs[f] >= fs[f + 1]) {
        *msg = StrFormat("empty fiber %zu", f);
        return false;
      }
    }
    // Walking the tree in order must replay the finalized COO entry list
    // byte for byte: same (i, j, k) lexicographic order, same values.
    size_t e = 0;
    for (size_t s = 0; s < csf.num_slices(); ++s) {
      for (size_t f = ss[s]; f < ss[s + 1]; ++f) {
        for (size_t p = fs[f]; p < fs[f + 1]; ++p, ++e) {
          const TensorEntry& want = x.entries()[e];
          if (csf.slice_ids()[s] != want.i || csf.fiber_ids()[f] != want.j ||
              csf.kks()[p] != want.k || csf.vals()[p] != want.value) {
            *msg = StrFormat("tree walk diverges from COO at entry %zu", e);
            return false;
          }
        }
      }
    }
    return e == csf.nnz();
  };
  PropOptions opts;
  opts.max_size = 48;
  PropReport report = Prop::Check<SparseTensor>(
      "csf-structure-invariants", 80, gen, pred, opts);
  EXPECT_TRUE(report.ok) << report.message;
}

// All three CSF MTTKRP modes against both the COO entry loop and the
// dense triple-loop oracle, on the same adversarial tensor family.
TEST(CsfProperties, MttkrpAllModesMatchCooAndDenseOracle) {
  auto gen = [](uint64_t seed, uint32_t size) {
    return MakeCsfCase(seed, size);
  };
  auto pred = [](const CsfCase& c, std::string* msg) {
    const CsfTensor csf(c.x);
    for (int mode = 0; mode < 3; ++mode) {
      const Matrix got = SparseKernels::Mttkrp(csf, c.factors, mode);
      const Matrix coo = MttkrpCoo(c.x, c.factors, mode);
      const Matrix want = OracleMttkrp(c.x, c.factors, mode);
      const double err_coo = RelMaxDiff(got, coo);
      const double err_dense = RelMaxDiff(got, want);
      if (err_coo > 1e-12 || err_dense > 1e-12) {
        *msg = StrFormat(
            "CSF mode %d: vs COO %.3e, vs dense %.3e (nnz=%zu, %zux%zux%zu)",
            mode, err_coo, err_dense, c.x.nnz(), c.x.dim(0), c.x.dim(1),
            c.x.dim(2));
        return false;
      }
    }
    return true;
  };
  PropOptions opts;
  opts.max_size = 32;
  PropReport report = Prop::Check<CsfCase>(
      "csf-mttkrp-vs-coo-vs-dense", 48, gen, pred, opts);
  EXPECT_TRUE(report.ok) << report.message;
}

// The scalar and native kernel builds must return the same bytes for
// every dispatched kernel, at 1/2/8 threads (the vectorized build only
// vectorizes across independent output elements, never within a
// per-element reduction chain — DESIGN.md §12).
TEST(CsfProperties, SimdOffVsNativeBitIdenticalAtManyThreads) {
  struct SimdGuard {
    ~SimdGuard() {
      SetGlobalThreads(1);
      SetSimdMode(ResolveSimdMode(std::getenv("TCSS_SIMD")));
    }
  };
  auto gen = [](uint64_t seed, uint32_t size) {
    return MakeKernelCase(seed, size);
  };
  auto pred = [](const KernelCase& c, std::string* msg) {
    SimdGuard guard;
    const CsfTensor csf(c.x);
    for (int threads : {1, 2, 8}) {
      SetGlobalThreads(threads);
      SetSimdMode(SimdMode::kScalar);
      const Matrix mm = MatMul(c.a, c.b);
      const Matrix mtm = MatTMul(c.a, c.c);
      const Matrix gram = Gram(c.a);
      Matrix mttkrp[3];
      for (int mode = 0; mode < 3; ++mode) {
        mttkrp[mode] = SparseKernels::Mttkrp(csf, c.factors, mode);
      }
      SetSimdMode(SimdMode::kNative);
      if (MaxAbsDiff(MatMul(c.a, c.b), mm) != 0.0 ||
          MaxAbsDiff(MatTMul(c.a, c.c), mtm) != 0.0 ||
          MaxAbsDiff(Gram(c.a), gram) != 0.0) {
        *msg = StrFormat("dense kernel scalar != native at %d threads",
                         threads);
        return false;
      }
      for (int mode = 0; mode < 3; ++mode) {
        if (MaxAbsDiff(SparseKernels::Mttkrp(csf, c.factors, mode),
                       mttkrp[mode]) != 0.0) {
          *msg = StrFormat("CSF mode %d scalar != native at %d threads",
                           mode, threads);
          return false;
        }
      }
    }
    return true;
  };
  PropOptions opts;
  opts.max_size = 48;
  PropReport report = Prop::Check<KernelCase>(
      "simd-off-vs-native-bitwise", 24, gen, pred, opts);
  EXPECT_TRUE(report.ok) << report.message;
}

// ---------------------------------------------------------------------------
// Central-difference gradient checks for every registered loss term
// ---------------------------------------------------------------------------

double GradCheckTolerance() { return 2e-5; }

TEST(GradientCheck, RewrittenLoss) {
  auto gen = [](uint64_t seed, uint32_t size) {
    return MakeLossCase(seed, size);
  };
  auto pred = [](const LossCase& c, std::string* msg) {
    RewrittenLoss loss(c.w_pos, c.w_neg);
    FactorGrads analytic(c.model);
    loss.ComputeWithGrads(c.model, c.x, &analytic);
    FactorGrads fd = CentralDifferenceGrads(
        [&](const FactorModel& m) {
          RewrittenLoss f(c.w_pos, c.w_neg);
          return f.Compute(m, c.x);
        },
        c.model, 1e-5);
    const double err = RelMaxDiff(analytic, fd);
    if (err > GradCheckTolerance()) {
      *msg = StrFormat("rewritten grad vs FD err %.3e", err);
      return false;
    }
    return true;
  };
  PropOptions opts;
  opts.max_size = 6;
  PropReport report =
      Prop::Check<LossCase>("rewritten-grad-fd", 30, gen, pred, opts);
  EXPECT_TRUE(report.ok) << report.message;
}

TEST(GradientCheck, NaiveLoss) {
  auto gen = [](uint64_t seed, uint32_t size) {
    return MakeLossCase(seed, size);
  };
  auto pred = [](const LossCase& c, std::string* msg) {
    NaiveLoss loss(c.w_pos, c.w_neg);
    FactorGrads analytic(c.model);
    loss.ComputeWithGrads(c.model, c.x, &analytic);
    FactorGrads fd = CentralDifferenceGrads(
        [&](const FactorModel& m) {
          NaiveLoss f(c.w_pos, c.w_neg);
          return f.Compute(m, c.x);
        },
        c.model, 1e-5);
    const double err = RelMaxDiff(analytic, fd);
    if (err > GradCheckTolerance()) {
      *msg = StrFormat("naive grad vs FD err %.3e", err);
      return false;
    }
    return true;
  };
  PropOptions opts;
  opts.max_size = 5;
  PropReport report =
      Prop::Check<LossCase>("naive-grad-fd", 20, gen, pred, opts);
  EXPECT_TRUE(report.ok) << report.message;
}

// The sampled loss is only differentiable with the sampler frozen:
// pinning sampler_state before every evaluation makes each call draw the
// identical negative set, so central differences see a smooth function.
TEST(GradientCheck, NegativeSamplingLossWithPinnedSampler) {
  auto gen = [](uint64_t seed, uint32_t size) {
    return MakeLossCase(seed, size);
  };
  auto pred = [](const LossCase& c, std::string* msg) {
    NegativeSamplingLoss loss(c.w_pos, c.w_neg, /*seed=*/0x5eed);
    FactorGrads analytic(c.model);
    loss.set_sampler_state(7);
    loss.ComputeWithGrads(c.model, c.x, &analytic);
    FactorGrads fd = CentralDifferenceGrads(
        [&loss, &c](const FactorModel& m) {
          loss.set_sampler_state(7);
          return loss.Compute(m, c.x);
        },
        c.model, 1e-5);
    const double err = RelMaxDiff(analytic, fd);
    if (err > GradCheckTolerance()) {
      *msg = StrFormat("negative-sampling grad vs FD err %.3e", err);
      return false;
    }
    return true;
  };
  PropOptions opts;
  opts.max_size = 6;
  PropReport report = Prop::Check<LossCase>("negative-sampling-grad-fd", 20,
                                            gen, pred, opts);
  EXPECT_TRUE(report.ok) << report.message;
}

struct HausdorffCase {
  LbsnCase lbsn;
  FactorModel model;
  TcssConfig config;
};

HausdorffCase MakeHausdorffCase(uint64_t seed, uint32_t size) {
  Rng rng(seed);
  HausdorffCase c;
  c.lbsn = GenLbsnCase(&rng, size);
  const size_t rank = GenRank(&rng, size);
  c.model = GenInteriorFactorModel(&rng, c.lbsn.train.dim_i(),
                                   c.lbsn.train.dim_j(),
                                   c.lbsn.train.dim_k(), rank);
  c.config.seed = seed ^ 0x4a05dull;
  c.config.use_location_entropy = true;
  c.config.alpha = rng.Bernoulli(0.5) ? -1.0 : -2.0;
  // Mix the paper-exact full pool with capped subsampled pools.
  c.config.hausdorff_pool = rng.Bernoulli(0.5) ? 0 : 1 + rng.UniformInt(8);
  c.config.max_friend_pois = rng.Bernoulli(0.5) ? 0 : 1 + rng.UniformInt(8);
  return c;
}

std::vector<uint32_t> EligibleUsers(const SocialHausdorffLoss& loss,
                                    size_t num_users) {
  std::vector<uint32_t> out;
  for (uint32_t u = 0; u < num_users; ++u) {
    if (!loss.candidate_pool(u).empty() && !loss.friend_pois(u).empty()) {
      out.push_back(u);
    }
  }
  return out;
}

TEST(GradientCheck, SocialHausdorffLossWithEntropyWeights) {
  auto gen = [](uint64_t seed, uint32_t size) {
    return MakeHausdorffCase(seed, size);
  };
  size_t nonvacuous = 0;
  auto pred = [&nonvacuous](const HausdorffCase& c, std::string* msg) {
    SocialHausdorffLoss loss(c.lbsn.data, c.lbsn.train, c.config);
    const std::vector<uint32_t> eligible =
        EligibleUsers(loss, c.lbsn.data.num_users());
    if (eligible.empty()) return true;  // vacuous case
    ++nonvacuous;
    // Check up to two eligible users (FD costs #params evaluations each).
    for (size_t n = 0; n < std::min<size_t>(2, eligible.size()); ++n) {
      const uint32_t user = eligible[n];
      FactorGrads analytic(c.model);
      loss.ComputeForUser(c.model, user, &analytic, /*grad_scale=*/1.0);
      FactorGrads fd = CentralDifferenceGrads(
          [&loss, user](const FactorModel& m) {
            return loss.ComputeForUser(m, user, nullptr, 0.0);
          },
          c.model, 1e-5);
      const double err = RelMaxDiff(analytic, fd);
      if (err > 5e-4) {
        *msg = StrFormat("hausdorff grad vs FD err %.3e for user %u", err,
                         user);
        return false;
      }
    }
    return true;
  };
  PropOptions opts;
  opts.max_size = 7;
  PropReport report = Prop::Check<HausdorffCase>("hausdorff-grad-fd", 20,
                                                 gen, pred, opts);
  EXPECT_TRUE(report.ok) << report.message;
  // Guard against a vacuous pass: the generator must produce users with
  // both a candidate pool and friend POIs in a healthy share of cases.
  EXPECT_GE(nonvacuous, 5u);
}

// ---------------------------------------------------------------------------
// Social Hausdorff value vs brute force
// ---------------------------------------------------------------------------

TEST(DifferentialHausdorff, MatchesBruteForcePerUserAndInFull) {
  auto gen = [](uint64_t seed, uint32_t size) {
    return MakeHausdorffCase(seed, size);
  };
  size_t checked_users = 0;
  auto pred = [&checked_users](const HausdorffCase& c, std::string* msg) {
    SocialHausdorffLoss loss(c.lbsn.data, c.lbsn.train, c.config);
    const std::vector<uint32_t> eligible =
        EligibleUsers(loss, c.lbsn.data.num_users());
    checked_users += eligible.size();
    double sum = 0.0;
    for (uint32_t user : eligible) {
      const double got = loss.ComputeForUser(c.model, user, nullptr, 0.0);
      const double want = OracleHausdorffUser(loss, c.lbsn.data, c.model,
                                              user);
      // The optimized path caches distances as floats; the oracle uses
      // double haversine throughout, hence the loose tolerance.
      const double err = RelDiff(got, want);
      if (err > 1e-4) {
        *msg = StrFormat("user %u: impl %.12g vs brute force %.12g "
                         "(err %.3e, alpha=%g)",
                         user, got, want, err, c.config.alpha);
        return false;
      }
      sum += got;
    }
    if (RelDiff(loss.ComputeFull(c.model), sum) > 1e-12) {
      *msg = "ComputeFull != sum of ComputeForUser";
      return false;
    }
    return true;
  };
  PropOptions opts;
  opts.max_size = 10;
  PropReport report = Prop::Check<HausdorffCase>("hausdorff-vs-brute-force",
                                                 40, gen, pred, opts);
  EXPECT_TRUE(report.ok) << report.message;
  EXPECT_GE(checked_users, 20u);  // vacuity guard
}

// ---------------------------------------------------------------------------
// Metamorphic laws
// ---------------------------------------------------------------------------

// Relabeling users/POIs/time bins (and permuting the matching factor rows)
// must not change the loss, and must permute the gradient rows the same
// way. Catches any hidden dependence on index order (cursors, shard
// boundaries, coalescing).
TEST(Metamorphic, LossPermutationEquivariance) {
  struct Case {
    LossCase base;
    int mode = 0;
    std::vector<uint32_t> perm;  // perm[old] = new
  };
  auto gen = [](uint64_t seed, uint32_t size) {
    Rng rng(seed);
    Case c;
    c.base = MakeLossCase(rng.Next(), size);
    c.mode = static_cast<int>(rng.UniformInt(3));
    const size_t n = c.base.x.dim(c.mode);
    c.perm.resize(n);
    for (size_t i = 0; i < n; ++i) c.perm[i] = static_cast<uint32_t>(i);
    rng.Shuffle(&c.perm);
    return c;
  };
  auto pred = [](const Case& c, std::string* msg) {
    const LossCase& b = c.base;
    // Permuted tensor: coordinates of the chosen mode are relabeled.
    SparseTensor px(b.x.dim_i(), b.x.dim_j(), b.x.dim_k());
    for (const TensorEntry& e : b.x.entries()) {
      uint32_t idx[3] = {e.i, e.j, e.k};
      idx[c.mode] = c.perm[idx[c.mode]];
      (void)px.Add(idx[0], idx[1], idx[2], e.value);
    }
    // Entries are already coalesced, so re-finalizing only re-sorts; keep
    // real values intact by finalizing non-binary.
    (void)px.Finalize(/*binary=*/false);
    // Permuted model: row perm[i] of the permuted factor = row i.
    FactorModel pm = b.model;
    const Matrix* sources[3] = {&b.model.u1, &b.model.u2, &b.model.u3};
    Matrix* targets[3] = {&pm.u1, &pm.u2, &pm.u3};
    for (size_t i = 0; i < c.perm.size(); ++i) {
      for (size_t t = 0; t < b.model.rank(); ++t) {
        (*targets[c.mode])(c.perm[i], t) = (*sources[c.mode])(i, t);
      }
    }

    RewrittenLoss loss(b.w_pos, b.w_neg);
    FactorGrads g(b.model), pg(pm);
    const double v = loss.ComputeWithGrads(b.model, b.x, &g);
    const double pv = loss.ComputeWithGrads(pm, px, &pg);
    if (RelDiff(v, pv) > 1e-11) {
      *msg = StrFormat("mode %d permutation changed the loss: %.17g vs "
                       "%.17g",
                       c.mode, v, pv);
      return false;
    }
    // Gradient rows of the permuted mode are relabeled; others unchanged.
    const Matrix* got[3] = {&pg.u1, &pg.u2, &pg.u3};
    const Matrix* want[3] = {&g.u1, &g.u2, &g.u3};
    for (int m = 0; m < 3; ++m) {
      for (size_t i = 0; i < want[m]->rows(); ++i) {
        const size_t pi = (m == c.mode) ? c.perm[i] : i;
        for (size_t t = 0; t < b.model.rank(); ++t) {
          if (RelDiff((*got[m])(pi, t), (*want[m])(i, t)) > 1e-11) {
            *msg = StrFormat("grad mode %d row %zu not equivariant", m, i);
            return false;
          }
        }
      }
    }
    for (size_t t = 0; t < b.model.rank(); ++t) {
      if (RelDiff(pg.h[t], g.h[t]) > 1e-11) {
        *msg = "h gradient not permutation invariant";
        return false;
      }
    }
    return true;
  };
  PropOptions opts;
  opts.max_size = 9;
  PropReport report =
      Prop::Check<Case>("loss-permutation-equivariance", 60, gen, pred,
                        opts);
  EXPECT_TRUE(report.ok) << report.message;
}

// Scaling every tensor value and h by the same power of two scales the
// loss by c^2 (factor gradients by c^2, h gradients by c) — exactly, since
// power-of-two scaling is lossless in floating point.
TEST(Metamorphic, LossValueScalingHomogeneity) {
  struct Case {
    LossCase base;
    double c = 2.0;
  };
  auto gen = [](uint64_t seed, uint32_t size) {
    Rng rng(seed);
    Case c;
    c.base = MakeLossCase(rng.Next(), size, /*force_real=*/true);
    const double choices[3] = {0.5, 2.0, 4.0};
    c.c = choices[rng.UniformInt(3)];
    return c;
  };
  auto pred = [](const Case& cse, std::string* msg) {
    const LossCase& b = cse.base;
    const double c = cse.c;
    SparseTensor sx(b.x.dim_i(), b.x.dim_j(), b.x.dim_k());
    for (const TensorEntry& e : b.x.entries()) {
      (void)sx.Add(e.i, e.j, e.k, e.value * c);
    }
    (void)sx.Finalize(/*binary=*/false);
    FactorModel sm = b.model;
    for (double& h : sm.h) h *= c;

    for (const bool rewritten : {true, false}) {
      std::unique_ptr<WholeDataLoss> loss, sloss;
      if (rewritten) {
        loss = std::make_unique<RewrittenLoss>(b.w_pos, b.w_neg);
        sloss = std::make_unique<RewrittenLoss>(b.w_pos, b.w_neg);
      } else {
        loss = std::make_unique<NaiveLoss>(b.w_pos, b.w_neg);
        sloss = std::make_unique<NaiveLoss>(b.w_pos, b.w_neg);
      }
      FactorGrads g(b.model), sg(sm);
      const double v = loss->ComputeWithGrads(b.model, b.x, &g);
      const double sv = sloss->ComputeWithGrads(sm, sx, &sg);
      if (sv != c * c * v) {
        *msg = StrFormat("%s: loss(c*X, c*h) = %.17g != c^2 * %.17g",
                         rewritten ? "rewritten" : "naive", sv, v);
        return false;
      }
      FactorGrads expect(b.model);
      expect.Add(g, 1.0);
      expect.u1.Scale(c * c);
      expect.u2.Scale(c * c);
      expect.u3.Scale(c * c);
      for (double& h : expect.h) h *= c;
      if (RelMaxDiff(sg, expect) != 0.0) {
        *msg = StrFormat("%s: gradients not exactly homogeneous",
                         rewritten ? "rewritten" : "naive");
        return false;
      }
    }
    return true;
  };
  PropOptions opts;
  opts.max_size = 8;
  PropReport report = Prop::Check<Case>("loss-scaling-homogeneity", 40, gen,
                                        pred, opts);
  EXPECT_TRUE(report.ok) << report.message;
}

// ---------------------------------------------------------------------------
// Fold-in vs dense-grid oracle, and the reproduction law
// ---------------------------------------------------------------------------

TEST(DifferentialFoldIn, MatchesDenseGridOracleAndReproducesItsRow) {
  struct Case {
    FactorModel model;
    std::vector<TensorCell> obs;
    FoldInOptions opts;
    uint32_t user = 0;
  };
  auto gen = [](uint64_t seed, uint32_t size) {
    Rng rng(seed);
    Case c;
    const size_t dim_i = 1 + rng.UniformInt(size);
    const size_t dim_j = 1 + rng.UniformInt(size);
    const size_t dim_k = 1 + rng.UniformInt(std::min<uint32_t>(size, 6));
    const size_t rank = GenRank(&rng, size);
    c.model = GenFactorModel(&rng, dim_i, dim_j, dim_k, rank);
    c.user = static_cast<uint32_t>(rng.UniformInt(dim_i));
    c.opts.w_pos = rng.Uniform(0.5, 1.0);
    c.opts.w_neg = rng.Uniform(0.01, 0.5);
    // A solid ridge keeps the normal equations well-conditioned, so the
    // two solvers (Gram-rewritten vs dense-grid LHS) agree tightly.
    c.opts.ridge = 1e-2;
    // Distinct observed (j, k) cells (the serving path dedupes cells too).
    const size_t grid = dim_j * dim_k;
    const size_t num_obs = rng.UniformInt(std::min<size_t>(grid, 8) + 1);
    for (size_t flat : rng.SampleWithoutReplacement(grid, num_obs)) {
      c.obs.push_back({c.user, static_cast<uint32_t>(flat / dim_k),
                       static_cast<uint32_t>(flat % dim_k)});
    }
    return c;
  };
  auto pred = [](const Case& c, std::string* msg) {
    Result<std::vector<double>> got = FoldInUser(c.model, c.obs, c.opts);
    Result<std::vector<double>> want = OracleFoldIn(c.model, c.obs, c.opts);
    if (got.ok() != want.ok()) {
      *msg = "FoldInUser and oracle disagree on solvability";
      return false;
    }
    if (!got.ok()) return true;
    for (size_t t = 0; t < c.model.rank(); ++t) {
      const double err = RelDiff(got.value()[t], want.value()[t]);
      if (err > 1e-7) {
        *msg = StrFormat("fold-in embedding[%zu]: %.12g vs oracle %.12g "
                         "(err %.3e)",
                         t, got.value()[t], want.value()[t], err);
        return false;
      }
    }
    // Reproduction law: a user whose factor row already is the ridge
    // solution for its observations is reproduced — fold-in is a pure
    // function of (U2, U3, h, obs), and scoring through the embedding
    // equals the model's own prediction.
    FactorModel trained = c.model;
    for (size_t t = 0; t < trained.rank(); ++t) {
      trained.u1(c.user, t) = got.value()[t];
    }
    Result<std::vector<double>> again =
        FoldInUser(trained, c.obs, c.opts);
    if (!again.ok() || again.value() != got.value()) {
      *msg = "re-fold-in of the trained row did not reproduce it";
      return false;
    }
    for (uint32_t j = 0; j < trained.u2.rows(); ++j) {
      for (uint32_t k = 0; k < trained.u3.rows(); ++k) {
        if (trained.Predict(c.user, j, k) !=
            FoldInScore(trained, got.value(), j, k)) {
          *msg = StrFormat("Predict != FoldInScore at (%u, %u)", j, k);
          return false;
        }
      }
    }
    return true;
  };
  PropOptions opts;
  opts.max_size = 10;
  PropReport report =
      Prop::Check<Case>("fold-in-vs-dense-grid", 60, gen, pred, opts);
  EXPECT_TRUE(report.ok) << report.message;
}

// ---------------------------------------------------------------------------
// Top-k recommendation vs full-sort oracle
// ---------------------------------------------------------------------------

/// Scores quantized to quarters so ties are everywhere — the interesting
/// part of top-k selection.
class QuantizedRecommender : public Recommender {
 public:
  explicit QuantizedRecommender(const FactorModel* model) : model_(model) {}
  std::string name() const override { return "quantized"; }
  Status Fit(const TrainContext&) override { return Status::OK(); }
  double Score(uint32_t i, uint32_t j, uint32_t k) const override {
    return std::floor(model_->Predict(i, j, k) * 4.0) / 4.0;
  }

 private:
  const FactorModel* model_;
};

TEST(DifferentialTopK, MatchesFullSortOracle) {
  struct Case {
    SparseTensor train;
    FactorModel model;
    TopKOptions opts;
    uint32_t user = 0, time_bin = 0;
    bool null_train = false;
  };
  auto gen = [](uint64_t seed, uint32_t size) {
    Rng rng(seed);
    Case c;
    GenTensorOptions topts;
    topts.allow_empty_modes = false;  // need a valid user/time index
    c.train = GenSparseTensor(&rng, size, topts);
    const size_t rank = GenRank(&rng, size);
    c.model = GenFactorModel(&rng, c.train.dim_i(), c.train.dim_j(),
                             c.train.dim_k(), rank);
    c.user = static_cast<uint32_t>(rng.UniformInt(c.train.dim_i()));
    c.time_bin = static_cast<uint32_t>(rng.UniformInt(c.train.dim_k()));
    const size_t num_pois = c.train.dim_j();
    c.opts.k = rng.UniformInt(num_pois + 3);
    c.opts.exclude_visited = rng.Bernoulli(0.4);
    c.null_train = c.opts.exclude_visited && rng.Bernoulli(0.25);
    if (rng.Bernoulli(0.5)) {
      // Candidate lists with duplicates and out-of-range ids; sometimes
      // every candidate is out of range (the all-excluded case).
      const bool all_invalid = rng.Bernoulli(0.2);
      const size_t len = rng.UniformInt(2 * num_pois + 2);
      for (size_t n = 0; n < len; ++n) {
        const uint32_t j = static_cast<uint32_t>(
            all_invalid ? num_pois + rng.UniformInt(5)
                        : rng.UniformInt(num_pois + 3));
        c.opts.candidates.push_back(j);
      }
      if (c.opts.candidates.empty()) {
        // An empty list means "all POIs"; force at least one entry so
        // this branch really tests candidate filtering.
        c.opts.candidates.push_back(
            static_cast<uint32_t>(rng.UniformInt(num_pois)));
      }
    }
    return c;
  };
  auto pred = [](const Case& c, std::string* msg) {
    QuantizedRecommender rec(&c.model);
    const SparseTensor* train = c.null_train ? nullptr : &c.train;
    const std::vector<Recommendation> got = TopKRecommendations(
        rec, c.user, c.time_bin, c.train.dim_j(), c.opts, train);
    const std::vector<Recommendation> want = OracleTopK(
        rec, c.user, c.time_bin, c.train.dim_j(), c.opts, train);
    if (got.size() != want.size()) {
      *msg = StrFormat("top-k size %zu vs oracle %zu (k=%zu, J=%zu)",
                       got.size(), want.size(), c.opts.k, c.train.dim_j());
      return false;
    }
    for (size_t n = 0; n < got.size(); ++n) {
      if (got[n].poi != want[n].poi || got[n].score != want[n].score) {
        *msg = StrFormat("top-k[%zu] = (%u, %.12g) vs oracle (%u, %.12g)",
                         n, got[n].poi, got[n].score, want[n].poi,
                         want[n].score);
        return false;
      }
    }
    return true;
  };
  PropOptions opts;
  opts.max_size = 16;
  PropReport report =
      Prop::Check<Case>("top-k-vs-full-sort", 80, gen, pred, opts);
  EXPECT_TRUE(report.ok) << report.message;
}

// ---------------------------------------------------------------------------
// Streaming properties (DESIGN.md §14)
// ---------------------------------------------------------------------------

// The seeded drift-stream generator: sound events, reproducible from the
// seed, and actually drifting — the early and late POI histograms must
// differ when the popular window shifts, otherwise the chronological
// evaluation in stream_test would be measuring nothing.
TEST(StreamProperties, DriftStreamGeneratorIsSoundReproducibleAndDrifting) {
  auto gen = [](uint64_t seed, uint32_t size) {
    DriftStreamConfig cfg;
    cfg.seed = seed;
    cfg.num_users = 5 + size;
    cfg.num_pois = 20 + 2 * size;
    cfg.num_events = 400 + 20 * size;
    return cfg;
  };
  auto pred = [](const DriftStreamConfig& cfg, std::string* msg) {
    auto a = GenerateDriftStream(cfg);
    auto b = GenerateDriftStream(cfg);
    if (!a.ok() || !b.ok()) {
      *msg = "generator failed on a valid config";
      return false;
    }
    const auto& ea = a.value().checkins();
    const auto& eb = b.value().checkins();
    if (ea.size() != cfg.num_events || ea.size() != eb.size()) {
      *msg = StrFormat("event count %zu (twin %zu) != %zu", ea.size(),
                       eb.size(), cfg.num_events);
      return false;
    }
    const int64_t start = FromCivil(cfg.year, 1, 1);
    const int64_t end = FromCivil(cfg.year + 1, 1, 1);
    std::vector<double> early(cfg.num_pois, 0.0), late(cfg.num_pois, 0.0);
    for (size_t e = 0; e < ea.size(); ++e) {
      if (ea[e].user != eb[e].user || ea[e].poi != eb[e].poi ||
          ea[e].timestamp != eb[e].timestamp) {
        *msg = StrFormat("event %zu differs between same-seed runs", e);
        return false;
      }
      if (ea[e].user >= cfg.num_users || ea[e].poi >= cfg.num_pois ||
          ea[e].timestamp < start || ea[e].timestamp >= end) {
        *msg = StrFormat("event %zu out of bounds (u=%u j=%u ts=%lld)", e,
                         ea[e].user, ea[e].poi,
                         static_cast<long long>(ea[e].timestamp));
        return false;
      }
      if (4 * e < ea.size()) early[ea[e].poi] += 1.0;
      if (4 * e >= 3 * ea.size()) late[ea[e].poi] += 1.0;
    }
    double tv = 0.0, ne = 0.0, nl = 0.0;
    for (double v : early) ne += v;
    for (double v : late) nl += v;
    for (size_t j = 0; j < cfg.num_pois; ++j) {
      tv += std::abs(early[j] / ne - late[j] / nl);
    }
    tv *= 0.5;
    if (tv < 0.05) {
      *msg = StrFormat("no drift: early/late TV distance %.4f", tv);
      return false;
    }
    // The chronological split partitions the stream at a clean instant.
    ChronoSplit split = ChronologicalSplit(ea, 0.7);
    if (split.before.size() + split.after.size() != ea.size()) {
      *msg = "chronological split lost events";
      return false;
    }
    for (const auto& ev : split.before) {
      if (ev.timestamp >= split.cutoff_ts) {
        *msg = "before-side event at or after the cutoff";
        return false;
      }
    }
    for (const auto& ev : split.after) {
      if (ev.timestamp < split.cutoff_ts) {
        *msg = "after-side event before the cutoff";
        return false;
      }
    }
    return true;
  };
  PropOptions opts;
  opts.max_size = 16;
  PropReport report = Prop::Check<DriftStreamConfig>(
      "drift-stream-soundness", 12, gen, pred, opts);
  EXPECT_TRUE(report.ok) << report.message;
}

// Metamorphic batching law: delivering the same check-ins as one batch or
// as many batches (with snapshots, solves and queries interleaved) must
// not change anything downstream — the delta snapshot, the fold-in
// embeddings (bitwise), and the refined model bytes are all invariant to
// how the stream was chunked.
TEST(StreamProperties, OneBatchVsManyBatchesIsByteIdentical) {
  struct Case {
    DriftStreamConfig cfg;
    std::vector<CheckInEvent> extra;
    size_t chunks = 1;
  };
  auto gen = [](uint64_t seed, uint32_t size) {
    Case c;
    c.cfg.seed = seed;
    c.cfg.num_users = 6 + size / 2;
    c.cfg.num_pois = 8 + size;
    c.cfg.num_events = 60 + 5 * size;
    Rng rng(seed ^ 0xABCDEF);
    const int64_t start = FromCivil(c.cfg.year, 1, 1);
    const size_t n = 10 + 3 * size;
    for (size_t e = 0; e < n; ++e) {
      c.extra.push_back(
          {static_cast<uint32_t>(rng.UniformInt(c.cfg.num_users)),
           static_cast<uint32_t>(rng.UniformInt(c.cfg.num_pois)),
           start + static_cast<int64_t>(rng.UniformInt(300 * 86400))});
    }
    c.chunks = 1 + rng.UniformInt(5);
    return c;
  };
  auto pred = [](const Case& c, std::string* msg) {
    auto data = GenerateDriftStream(c.cfg);
    if (!data.ok()) {
      *msg = "generator failed";
      return false;
    }
    const TimeGranularity g = TimeGranularity::kMonthOfYear;
    auto model = std::make_shared<const FactorModel>([&] {
      // Any valid model works for the fold-in half of the law.
      Rng mr(c.cfg.seed);
      FactorModel m;
      m.u2 = Matrix(c.cfg.num_pois, 3);
      m.u3 = Matrix(12, 3);
      for (size_t j = 0; j < m.u2.rows(); ++j) {
        for (size_t t = 0; t < 3; ++t) m.u2(j, t) = mr.Uniform();
      }
      for (size_t k = 0; k < 12; ++k) {
        for (size_t t = 0; t < 3; ++t) m.u3(k, t) = mr.Uniform();
      }
      m.h = {1.0, 0.8, 0.6};
      return m;
    }());

    // One batch.
    DeltaBuffer one(c.cfg.num_users, c.cfg.num_pois);
    IncrementalFoldIn inc_one;
    inc_one.BindModel(model, 1);
    for (const auto& ev : c.extra) {
      if (!one.Append(ev.user, ev.poi, ev.timestamp).ok()) {
        *msg = "valid event rejected";
        return false;
      }
      inc_one.Append(ev.user, ev.poi, TimeBin(ev.timestamp, g));
    }

    // Many batches, with snapshots and solves interleaved.
    DeltaBuffer many(c.cfg.num_users, c.cfg.num_pois);
    IncrementalFoldIn inc_many;
    inc_many.BindModel(model, 1);
    const size_t per = (c.extra.size() + c.chunks - 1) / c.chunks;
    for (size_t b = 0; b < c.chunks; ++b) {
      for (size_t e = b * per;
           e < std::min(c.extra.size(), (b + 1) * per); ++e) {
        const auto& ev = c.extra[e];
        if (!many.Append(ev.user, ev.poi, ev.timestamp).ok()) {
          *msg = "valid event rejected in chunked delivery";
          return false;
        }
        inc_many.Append(ev.user, ev.poi, TimeBin(ev.timestamp, g));
      }
      (void)many.Snapshot();                       // observer, not mutator
      (void)inc_many.Embedding(c.extra[0].user);   // interleaved solve
    }

    const auto sa = one.Snapshot(), sb = many.Snapshot();
    if (sa.size() != sb.size()) {
      *msg = StrFormat("snapshot sizes differ: %zu vs %zu", sa.size(),
                       sb.size());
      return false;
    }
    for (size_t e = 0; e < sa.size(); ++e) {
      if (sa[e].user != sb[e].user || sa[e].poi != sb[e].poi ||
          sa[e].timestamp != sb[e].timestamp) {
        *msg = StrFormat("snapshot event %zu differs", e);
        return false;
      }
    }
    for (uint32_t u = 0; u < c.cfg.num_users; ++u) {
      const std::vector<double>* ea = inc_one.Embedding(u);
      const std::vector<double>* eb = inc_many.Embedding(u);
      if ((ea == nullptr) != (eb == nullptr)) {
        *msg = StrFormat("user %u solvable in one chunking only", u);
        return false;
      }
      if (ea == nullptr) continue;
      for (size_t t = 0; t < ea->size(); ++t) {
        if ((*ea)[t] != (*eb)[t]) {  // bitwise, not approximate
          *msg = StrFormat("user %u embedding differs at [%zu]", u, t);
          return false;
        }
      }
    }

    // Delta-merged refinement: identical model bytes.
    std::vector<CheckInEvent> merged_a = data.value().checkins();
    for (const auto& ev : sa) merged_a.push_back(ev);
    std::vector<CheckInEvent> merged_b = data.value().checkins();
    for (const auto& ev : sb) merged_b.push_back(ev);
    auto ta = BuildCheckinTensor(data.value(), merged_a, g);
    auto tb = BuildCheckinTensor(data.value(), merged_b, g);
    if (!ta.ok() || !tb.ok()) {
      *msg = "merged tensor build failed";
      return false;
    }
    RefinerOptions ropts;
    ropts.config.rank = 3;
    ropts.config.epochs = 2;
    BackgroundRefiner ra(ropts), rb(ropts);
    auto ma = ra.Refine(data.value(), ta.value(), nullptr);
    auto mb = rb.Refine(data.value(), tb.value(), nullptr);
    if (!ma.ok() || !mb.ok()) {
      *msg = "refinement failed";
      return false;
    }
    if (SerializeFactorModel(ma.value()) != SerializeFactorModel(mb.value())) {
      *msg = "refined model bytes differ between chunkings";
      return false;
    }
    return true;
  };
  PropOptions opts;
  opts.max_size = 12;
  PropReport report = Prop::Check<Case>(
      "stream-batch-split-invariance", 8, gen, pred, opts);
  EXPECT_TRUE(report.ok) << report.message;
}

}  // namespace
}  // namespace tcss
