// Resilience coverage for the serving layer: fallback-chain tier
// selection, hot reload with full off-path validation, torn/failing reads
// at every byte prefix (the read-path mirror of the PR-1 save sweep), the
// kill-the-model/recovery state machine, deadline degradation, and the
// untrusted request parser.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <string_view>

#include "common/env.h"
#include "common/fault_env.h"
#include "common/rng.h"
#include "common/strings.h"
#include "core/model_io.h"
#include "data/dataset.h"
#include "serve/model_watcher.h"
#include "serve/recommend_service.h"
#include "serve/request.h"

namespace tcss {
namespace {

// --- fixtures ----------------------------------------------------------

// 4 users, 5 POIs, monthly bins. Users 0..2 are "trained" users; user 3
// has check-ins but (with a 3-row U1) no model row, so it serves from
// fold-in.
Dataset TinyDataset() {
  std::vector<Poi> pois(5);
  for (int j = 0; j < 5; ++j) {
    pois[j] = {{30.0 + j, -80.0 + j}, PoiCategory::kFood};
  }
  SocialGraph social(4);
  EXPECT_TRUE(social.AddEdge(0, 1).ok());
  EXPECT_TRUE(social.Finalize().ok());
  Dataset data(4, std::move(pois), std::move(social));
  // Jan 2020 midnights; bin = month index 0.
  const int64_t jan = 1577836800;
  const int64_t feb = 1580515200;
  EXPECT_TRUE(data.AddCheckIn(0, 0, jan).ok());
  EXPECT_TRUE(data.AddCheckIn(0, 1, feb).ok());
  EXPECT_TRUE(data.AddCheckIn(1, 2, jan).ok());
  EXPECT_TRUE(data.AddCheckIn(2, 3, jan).ok());
  EXPECT_TRUE(data.AddCheckIn(3, 1, jan).ok());
  EXPECT_TRUE(data.AddCheckIn(3, 4, feb).ok());
  return data;
}

// A model whose every prediction equals `level` (all factors 1, h =
// level/r scaled): lets tests identify which model generation answered.
FactorModel ConstantModel(size_t I, size_t J, size_t K, double level) {
  FactorModel m;
  const size_t r = 2;
  m.u1 = Matrix(I, r);
  m.u2 = Matrix(J, r);
  m.u3 = Matrix(K, r);
  m.u1.Fill(1.0);
  m.u2.Fill(1.0);
  m.u3.Fill(1.0);
  m.h.assign(r, level / static_cast<double>(r));
  return m;
}

Status WriteRaw(const std::string& path, const std::string& contents) {
  auto f = Env::Default()->NewWritableFile(path);
  if (!f.ok()) return f.status();
  TCSS_RETURN_IF_ERROR(f.value()->Append(contents));
  return f.value()->Close();
}

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

// --- request parsing ---------------------------------------------------

TEST(RequestParseTest, ParsesFullGrammar) {
  auto req = ParseRequestLine("topk 7 3 k=25 new deadline_ms=1.5 cand=1,4,2");
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  EXPECT_EQ(req.value().user, 7u);
  EXPECT_EQ(req.value().time_bin, 3u);
  EXPECT_EQ(req.value().k, 25u);
  EXPECT_TRUE(req.value().exclude_visited);
  EXPECT_DOUBLE_EQ(req.value().deadline_ms, 1.5);
  EXPECT_EQ(req.value().candidates, (std::vector<uint32_t>{1, 4, 2}));
}

TEST(RequestParseTest, ParsesGeoFence) {
  auto req = ParseRequestLine("topk 2 4 k=5 within_km=25.5,40.7,-74.0");
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  EXPECT_DOUBLE_EQ(req.value().within_km, 25.5);
  EXPECT_DOUBLE_EQ(req.value().center.lat, 40.7);
  EXPECT_DOUBLE_EQ(req.value().center.lon, -74.0);
  // Composes with the other options.
  req = ParseRequestLine("topk 1 0 new cand=1,2 within_km=10,0,0");
  ASSERT_TRUE(req.ok());
  EXPECT_TRUE(req.value().exclude_visited);
  EXPECT_DOUBLE_EQ(req.value().within_km, 10.0);
}

TEST(RequestParseTest, RejectsMalformedGeoFence) {
  const char* bad[] = {
      "topk 1 2 within_km=",             // empty
      "topk 1 2 within_km=10",           // missing centre
      "topk 1 2 within_km=10,20",        // missing longitude
      "topk 1 2 within_km=10,20,30,40",  // extra field
      "topk 1 2 within_km=x,20,30",      // non-numeric radius
      "topk 1 2 within_km=10,y,30",      // non-numeric latitude
      "topk 1 2 within_km=0,20,30",      // zero radius
      "topk 1 2 within_km=-5,20,30",     // negative radius
      "topk 1 2 within_km=nan,20,30",    // non-finite radius
      "topk 1 2 within_km=1e9,20,30",    // beyond half the circumference
      "topk 1 2 within_km=10,91,30",     // latitude out of range
      "topk 1 2 within_km=10,20,181",    // longitude out of range
      "topk 1 2 within_km=10,inf,30",    // non-finite centre
  };
  for (const char* line : bad) {
    EXPECT_FALSE(ParseRequestLine(line).ok()) << "'" << line << "' parsed";
  }
}

TEST(RequestParseTest, RejectsMalformedInput) {
  const char* bad[] = {
      "",                          // empty
      "frobnicate 1 2",            // unknown directive
      "topk",                      // missing fields
      "topk 1",                    //
      "topk x 2",                  // non-numeric user
      "topk 1 -2",                 // negative time bin
      "topk 1 2 k=",               // empty k
      "topk 1 2 k=999999999999",   // k beyond cap
      "topk 1 2 deadline_ms=nan",  // non-finite deadline
      "topk 1 2 deadline_ms=-1",   // negative deadline
      "topk 1 2 cand=1,x",         // bad candidate
      "topk 1 2 frob=3",           // unknown option
      "topk 99999999999 0",        // user beyond uint32
  };
  for (const char* line : bad) {
    EXPECT_FALSE(ParseRequestLine(line).ok()) << "'" << line << "' parsed";
  }
}

// --- tier selection ----------------------------------------------------

class ServeTest : public ::testing::Test {
 protected:
  ServeTest() : data_(TinyDataset()) {}

  // Builds watcher + service over `path`. Callers save a model there (or
  // not) before the first poll, which Init() performs.
  void Start(const std::string& path, Env* env = nullptr) {
    ModelWatcher::Options wopts;
    wopts.env = env;
    wopts.num_users = data_.num_users();
    wopts.num_pois = data_.num_pois();
    wopts.num_bins = 12;
    watcher_ = std::make_unique<ModelWatcher>(path, wopts);
    service_ = std::make_unique<RecommendService>(
        &data_, TimeGranularity::kMonthOfYear, watcher_.get());
    ASSERT_TRUE(service_->Init().ok());
  }

  Dataset data_;
  std::unique_ptr<ModelWatcher> watcher_;
  std::unique_ptr<RecommendService> service_;
};

TEST_F(ServeTest, FallbackChainPicksTierPerRequest) {
  const std::string path = TempPath("chain_model.tcss");
  // Model covers only users 0..2 (a prefix): user 3 must fold in.
  ASSERT_TRUE(SaveFactorModel(ConstantModel(3, 5, 12, 1.0), path).ok());
  Start(path);
  ASSERT_NE(watcher_->current(), nullptr);

  ServeRequest req;
  req.k = 3;
  req.user = 0;
  EXPECT_EQ(service_->TopK(req).tier, ServeTier::kModel);
  req.user = 3;  // dataset user without a model row, has check-ins
  EXPECT_EQ(service_->TopK(req).tier, ServeTier::kFoldIn);
  req.user = 42;  // unknown user
  EXPECT_EQ(service_->TopK(req).tier, ServeTier::kPopularity);

  const ServiceStats stats = service_->Stats();
  EXPECT_EQ(stats.health, ServeHealth::kHealthy);
  EXPECT_EQ(stats.queries_by_tier[0], 1u);
  EXPECT_EQ(stats.queries_by_tier[1], 1u);
  EXPECT_EQ(stats.queries_by_tier[2], 1u);
  EXPECT_EQ(stats.total_queries, 3u);
}

TEST_F(ServeTest, InvalidTimeBinYieldsEmptyNotCrash) {
  const std::string path = TempPath("badtime_model.tcss");
  ASSERT_TRUE(SaveFactorModel(ConstantModel(4, 5, 12, 1.0), path).ok());
  Start(path);
  ServeRequest req;
  req.user = 0;
  req.time_bin = 12;  // one past the last monthly bin
  auto resp = service_->TopK(req);
  EXPECT_TRUE(resp.recs.empty());
  EXPECT_EQ(service_->Stats().invalid_requests, 1u);
  EXPECT_EQ(service_->Stats().total_queries, 0u);
}

TEST_F(ServeTest, ColdStartWithoutModelServesPopularity) {
  Start(TempPath("never_written_model.tcss"));
  EXPECT_EQ(service_->health(), ServeHealth::kFallback);
  ServeRequest req;
  req.user = 0;  // would be a model user if a model existed
  auto resp = service_->TopK(req);
  EXPECT_EQ(resp.tier, ServeTier::kPopularity);
  EXPECT_FALSE(resp.recs.empty());
}

TEST_F(ServeTest, DeadlineBudgetDegradesToPopularity) {
  const std::string path = TempPath("deadline_model.tcss");
  ASSERT_TRUE(SaveFactorModel(ConstantModel(4, 5, 12, 1.0), path).ok());
  Start(path);
  ServeRequest req;
  req.user = 0;
  // Warm the model tier's latency estimate (no deadline).
  EXPECT_EQ(service_->TopK(req).tier, ServeTier::kModel);
  // Any positive measured latency exceeds this budget.
  req.deadline_ms = 1e-12;
  auto resp = service_->TopK(req);
  EXPECT_EQ(resp.tier, ServeTier::kPopularity);
  EXPECT_EQ(service_->Stats().deadline_degrades, 1u);
}

// --- hot reload --------------------------------------------------------

TEST_F(ServeTest, HotReloadSwapsModelBetweenQueries) {
  const std::string path = TempPath("reload_model.tcss");
  ASSERT_TRUE(SaveFactorModel(ConstantModel(4, 5, 12, 1.0), path).ok());
  Start(path);
  auto before = watcher_->current();
  ASSERT_NE(before, nullptr);
  EXPECT_DOUBLE_EQ(before->Predict(0, 0, 0), 1.0);

  ASSERT_TRUE(SaveFactorModel(ConstantModel(4, 5, 12, 2.0), path).ok());
  // In-flight queries hold the old shared_ptr; the swap must not touch it.
  service_->PollModel();
  EXPECT_EQ(watcher_->reload_successes(), 2u);  // initial load + reload
  EXPECT_DOUBLE_EQ(before->Predict(0, 0, 0), 1.0);  // old copy intact
  EXPECT_DOUBLE_EQ(watcher_->current()->Predict(0, 0, 0), 2.0);
  EXPECT_EQ(service_->health(), ServeHealth::kHealthy);
}

TEST_F(ServeTest, WrongShapeModelIsRejected) {
  const std::string path = TempPath("shape_model.tcss");
  ASSERT_TRUE(SaveFactorModel(ConstantModel(4, 5, 12, 1.0), path).ok());
  Start(path);
  // Right format, wrong POI count: must be rejected by shape validation.
  ASSERT_TRUE(SaveFactorModel(ConstantModel(4, 6, 12, 2.0), path).ok());
  service_->PollModel();
  EXPECT_EQ(watcher_->reload_rejects(), 1u);
  EXPECT_DOUBLE_EQ(watcher_->current()->Predict(0, 0, 0), 1.0);
  EXPECT_EQ(service_->health(), ServeHealth::kDegraded);
}

TEST_F(ServeTest, RepeatedPollOverSameBadFileCountsOnce) {
  const std::string path = TempPath("dedup_model.tcss");
  ASSERT_TRUE(SaveFactorModel(ConstantModel(4, 5, 12, 1.0), path).ok());
  Start(path);
  ASSERT_TRUE(WriteRaw(path, "TCSSv2\ngarbage\n").ok());
  service_->PollModel();
  service_->PollModel();
  service_->PollModel();
  EXPECT_EQ(watcher_->reload_rejects(), 1u);
  EXPECT_EQ(service_->health(), ServeHealth::kDegraded);
}

// The read-path mirror of the PR-1 atomic-save sweep: a reload that sees
// *any* strict byte prefix of the new model (a torn read of a
// non-atomically written file) must reject it and keep serving the old
// model; the full file must swap in.
TEST_F(ServeTest, TornReadSweepNeverSwapsInGarbage) {
  const std::string path = TempPath("torn_model.tcss");
  ASSERT_TRUE(SaveFactorModel(ConstantModel(4, 5, 12, 1.0), path).ok());
  Start(path);
  ASSERT_NE(watcher_->current(), nullptr);

  std::string v2_bytes;
  {
    const std::string tmp = TempPath("torn_model_v2_bytes.tcss");
    ASSERT_TRUE(SaveFactorModel(ConstantModel(4, 5, 12, 2.0), tmp).ok());
    auto contents = Env::Default()->ReadFileToString(tmp);
    ASSERT_TRUE(contents.ok());
    v2_bytes = contents.value();
  }

  ServeRequest req;
  req.user = 0;
  req.k = 3;
  for (size_t n = 0; n < v2_bytes.size(); ++n) {
    // A prefix whose lost tail is pure whitespace (the trailing newline)
    // is byte-for-byte the complete model and legitimately swaps in; the
    // CRC footer makes every other prefix detectable.
    if (Trim(std::string_view(v2_bytes).substr(n)).empty()) continue;
    ASSERT_TRUE(WriteRaw(path, v2_bytes.substr(0, n)).ok());
    service_->PollModel();
    ASSERT_NE(watcher_->current(), nullptr) << "prefix " << n;
    ASSERT_DOUBLE_EQ(watcher_->current()->Predict(0, 0, 0), 1.0)
        << "torn prefix of " << n << " bytes was swapped in";
    // Queries during the sweep still answer from the old model tier.
    auto resp = service_->TopK(req);
    ASSERT_EQ(resp.tier, ServeTier::kModel) << "prefix " << n;
    // Every prefix (even the empty file) is a reject with the old model
    // still live: degraded, never fallback, never a crash.
    ASSERT_EQ(service_->health(), ServeHealth::kDegraded) << "prefix " << n;
  }
  ASSERT_TRUE(WriteRaw(path, v2_bytes).ok());
  service_->PollModel();
  EXPECT_DOUBLE_EQ(watcher_->current()->Predict(0, 0, 0), 2.0);
  EXPECT_EQ(service_->health(), ServeHealth::kHealthy);
}

// Same sweep driven through FaultInjectionEnv's read faults instead of
// on-disk prefixes: failing reads and torn reads are rejected, the old
// model keeps serving, and recovery is immediate once reads heal.
TEST_F(ServeTest, InjectedReadFaultsAreRejectedAndRecovered) {
  const std::string path = TempPath("readfault_model.tcss");
  ASSERT_TRUE(SaveFactorModel(ConstantModel(4, 5, 12, 1.0), path).ok());
  FaultInjectionEnv env(Env::Default());
  Start(path, &env);
  ASSERT_NE(watcher_->current(), nullptr);
  ASSERT_TRUE(SaveFactorModel(ConstantModel(4, 5, 12, 2.0), path).ok());

  // Hard-failing reads: every poll rejects, the old model stays.
  env.set_fail_reads_after(0);
  service_->PollModel();
  service_->PollModel();
  EXPECT_EQ(watcher_->reload_rejects(), 2u);  // unfingerprintable: per poll
  EXPECT_DOUBLE_EQ(watcher_->current()->Predict(0, 0, 0), 1.0);
  EXPECT_EQ(service_->health(), ServeHealth::kDegraded);

  // Torn reads (prefix of the valid v2 file): rejected, old model stays.
  env.set_truncate_reads(true);
  service_->PollModel();
  EXPECT_DOUBLE_EQ(watcher_->current()->Predict(0, 0, 0), 1.0);
  EXPECT_EQ(service_->health(), ServeHealth::kDegraded);

  // Reads heal: the new model swaps in.
  env.set_fail_reads_after(-1);
  service_->PollModel();
  EXPECT_DOUBLE_EQ(watcher_->current()->Predict(0, 0, 0), 2.0);
  EXPECT_EQ(service_->health(), ServeHealth::kHealthy);
}

// Kill-the-model state machine: healthy -> (delete) fallback on
// popularity -> (valid file reappears) healthy again; plus the corrupt
// variant where the old model keeps serving.
TEST_F(ServeTest, KillAndRecoverModelFile) {
  const std::string path = TempPath("kill_model.tcss");
  ASSERT_TRUE(SaveFactorModel(ConstantModel(3, 5, 12, 1.0), path).ok());
  Start(path);
  ServeRequest req;
  req.user = 0;
  req.k = 3;
  EXPECT_EQ(service_->TopK(req).tier, ServeTier::kModel);
  EXPECT_EQ(service_->health(), ServeHealth::kHealthy);

  // Delete = explicit unserve: degrade to the lower tiers, don't crash.
  ASSERT_TRUE(Env::Default()->DeleteFile(path).ok());
  service_->PollModel();
  EXPECT_EQ(service_->health(), ServeHealth::kFallback);
  EXPECT_EQ(service_->TopK(req).tier, ServeTier::kPopularity);
  req.user = 3;  // fold-in needs a model too: also popularity now
  EXPECT_EQ(service_->TopK(req).tier, ServeTier::kPopularity);

  // A valid file reappears: back to healthy, model tier answers again.
  ASSERT_TRUE(SaveFactorModel(ConstantModel(3, 5, 12, 3.0), path).ok());
  service_->PollModel();
  EXPECT_EQ(service_->health(), ServeHealth::kHealthy);
  req.user = 0;
  EXPECT_EQ(service_->TopK(req).tier, ServeTier::kModel);
  EXPECT_DOUBLE_EQ(watcher_->current()->Predict(0, 0, 0), 3.0);

  // Corrupt (not delete): the last good model keeps serving, degraded.
  ASSERT_TRUE(WriteRaw(path, "not a model at all").ok());
  service_->PollModel();
  EXPECT_EQ(service_->health(), ServeHealth::kDegraded);
  EXPECT_EQ(service_->TopK(req).tier, ServeTier::kModel);
  EXPECT_DOUBLE_EQ(watcher_->current()->Predict(0, 0, 0), 3.0);
}

// Fold-in answers change with the model generation (the embedding cache
// must not serve stale vectors across a swap).
TEST_F(ServeTest, FoldInCacheInvalidatesAcrossReload) {
  const std::string path = TempPath("foldin_model.tcss");
  ASSERT_TRUE(SaveFactorModel(ConstantModel(3, 5, 12, 1.0), path).ok());
  Start(path);
  ServeRequest req;
  req.user = 3;
  req.k = 5;
  auto r1 = service_->TopK(req);
  ASSERT_EQ(r1.tier, ServeTier::kFoldIn);
  ASSERT_TRUE(SaveFactorModel(ConstantModel(3, 5, 12, 2.0), path).ok());
  service_->PollModel();
  auto r2 = service_->TopK(req);
  ASSERT_EQ(r2.tier, ServeTier::kFoldIn);
  ASSERT_FALSE(r1.recs.empty());
  ASSERT_FALSE(r2.recs.empty());
  // Doubling h doubles every fold-in score's scale; identical scores
  // across generations would mean a stale cache was reused. The top POI's
  // score must differ between generations.
  EXPECT_NE(r1.recs[0].score, r2.recs[0].score);
}

TEST_F(ServeTest, ExcludeVisitedAndCandidatesAreHonored) {
  const std::string path = TempPath("filters_model.tcss");
  ASSERT_TRUE(SaveFactorModel(ConstantModel(4, 5, 12, 1.0), path).ok());
  Start(path);
  ServeRequest req;
  req.user = 0;
  req.time_bin = 0;
  req.k = 10;
  req.exclude_visited = true;
  auto resp = service_->TopK(req);
  for (const auto& r : resp.recs) {
    EXPECT_NE(r.poi, 0u);  // user 0 visited POI 0 (and 1)
    EXPECT_NE(r.poi, 1u);
  }
  req.exclude_visited = false;
  req.candidates = {2, 4, 99};  // 99 out of range: dropped
  resp = service_->TopK(req);
  ASSERT_EQ(resp.recs.size(), 2u);
  for (const auto& r : resp.recs) {
    EXPECT_TRUE(r.poi == 2u || r.poi == 4u);
  }
}

// The batch path must apply each entry's own options — k, exclusion,
// candidate list, geo fence — not the first entry's. Heterogeneous batch
// answers equal the one-at-a-time answers entry for entry. (A Gaussian
// model makes the ordering non-trivial; ConstantModel would hide an
// option mix-up behind ties.)
TEST_F(ServeTest, BatchHonorsPerRequestOptions) {
  const std::string path = TempPath("batch_options_model.tcss");
  FactorModel m;
  Rng rng(99);
  m.u1 = Matrix::GaussianRandom(3, 2, &rng, 0.5);  // user 3 folds in
  m.u2 = Matrix::GaussianRandom(5, 2, &rng, 0.5);
  m.u3 = Matrix::GaussianRandom(12, 2, &rng, 0.5);
  m.h = {0.7, 1.3};
  ASSERT_TRUE(SaveFactorModel(m, path).ok());
  Start(path);

  std::vector<ServeRequest> reqs(6);
  reqs[0].user = 0;
  reqs[0].k = 2;
  reqs[1].user = 1;
  reqs[1].k = 5;
  reqs[1].exclude_visited = true;
  reqs[2].user = 2;
  reqs[2].k = 3;
  reqs[2].candidates = {4, 0, 2};
  reqs[3].user = 3;  // fold-in tier
  reqs[3].k = 4;
  reqs[4].user = 42;  // popularity tier
  reqs[4].k = 1;
  reqs[5].user = 0;
  reqs[5].k = 10;
  reqs[5].within_km = 200.0;  // TinyDataset POIs are ~1 degree apart
  reqs[5].center = {30.0, -80.0};

  const auto batch = service_->BatchTopK(reqs);
  ASSERT_EQ(batch.size(), reqs.size());
  for (size_t i = 0; i < reqs.size(); ++i) {
    const auto single = service_->TopK(reqs[i]);
    EXPECT_EQ(batch[i].tier, single.tier) << "request " << i;
    ASSERT_EQ(batch[i].recs.size(), single.recs.size()) << "request " << i;
    for (size_t j = 0; j < single.recs.size(); ++j) {
      EXPECT_EQ(batch[i].recs[j].poi, single.recs[j].poi)
          << "request " << i << " slot " << j;
    }
  }
  EXPECT_EQ(batch[0].recs.size(), 2u);
  for (const auto& r : batch[1].recs) {  // user 1 visited POI 2
    EXPECT_NE(r.poi, 2u);
  }
  for (const auto& r : batch[2].recs) {
    EXPECT_TRUE(r.poi == 4u || r.poi == 0u || r.poi == 2u);
  }
  EXPECT_EQ(batch[4].recs.size(), 1u);
  ASSERT_FALSE(batch[5].recs.empty());  // POI 0 itself is inside the fence
  for (const auto& r : batch[5].recs) {
    EXPECT_LT(r.poi, 2u);  // POIs 2..4 are >200km from (30,-80)
  }
}

}  // namespace
}  // namespace tcss
