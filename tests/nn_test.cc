#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/layers.h"
#include "nn/optimizer.h"
#include "nn/tape.h"

namespace tcss::nn {
namespace {

// Numerically checks d(loss)/d(param) against the tape for every entry of
// every parameter in the store. `build` must construct the full forward
// graph and return the scalar loss Var.
void CheckGradients(ParameterStore* store,
                    const std::function<Var(Tape*)>& build,
                    double tol = 1e-5) {
  Tape tape;
  Var loss = build(&tape);
  store->ZeroGrads();
  tape.Backward(loss);

  const double eps = 1e-6;
  for (size_t p = 0; p < store->size(); ++p) {
    Parameter* param = store->at(p);
    for (size_t idx = 0; idx < param->value.size(); ++idx) {
      const double orig = param->value.data()[idx];
      param->value.data()[idx] = orig + eps;
      Tape tp;
      const double up = tp.value(build(&tp))(0, 0);
      param->value.data()[idx] = orig - eps;
      Tape tm;
      const double down = tm.value(build(&tm))(0, 0);
      param->value.data()[idx] = orig;
      const double numeric = (up - down) / (2 * eps);
      const double analytic = param->grad.data()[idx];
      EXPECT_NEAR(analytic, numeric,
                  tol * std::max(1.0, std::fabs(numeric)))
          << param->name << "[" << idx << "]";
    }
  }
}

TEST(TapeTest, ForwardValuesMatMulAdd) {
  Tape tape;
  Var a = tape.Input(Matrix::FromRows({{1, 2}, {3, 4}}));
  Var b = tape.Input(Matrix::FromRows({{1, 0}, {0, 1}}));
  Var c = tape.MatMul(a, b);
  EXPECT_DOUBLE_EQ(tape.value(c)(1, 0), 3);
  Var d = tape.Add(a, a);
  EXPECT_DOUBLE_EQ(tape.value(d)(0, 1), 4);
  Var s = tape.SumAll(a);
  EXPECT_DOUBLE_EQ(tape.value(s)(0, 0), 10);
  Var m = tape.MeanAll(a);
  EXPECT_DOUBLE_EQ(tape.value(m)(0, 0), 2.5);
}

TEST(TapeTest, ActivationValues) {
  Tape tape;
  Var x = tape.Input(Matrix::FromRows({{0.0, -1.0, 2.0}}));
  EXPECT_DOUBLE_EQ(tape.value(tape.Sigmoid(x))(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(tape.value(tape.Relu(x))(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(tape.value(tape.Relu(x))(0, 2), 2.0);
  EXPECT_NEAR(tape.value(tape.Tanh(x))(0, 2), std::tanh(2.0), 1e-12);
}

TEST(TapeTest, SoftmaxRowsSumToOne) {
  Tape tape;
  Var x = tape.Input(Matrix::FromRows({{1, 2, 3}, {-5, 0, 5}}));
  const Matrix& s = tape.value(tape.SoftmaxRows(x));
  for (size_t i = 0; i < 2; ++i) {
    double sum = 0;
    for (size_t j = 0; j < 3; ++j) sum += s(i, j);
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
  EXPECT_GT(s(0, 2), s(0, 0));
}

TEST(TapeGradTest, MatMulChain) {
  Rng rng(1);
  ParameterStore store;
  Parameter* w1 = store.Create("w1", 3, 4, &rng, 0.5);
  Parameter* w2 = store.Create("w2", 4, 2, &rng, 0.5);
  Matrix x = Matrix::GaussianRandom(5, 3, &rng);
  Matrix target = Matrix::GaussianRandom(5, 2, &rng);
  CheckGradients(&store, [&](Tape* t) {
    Var h = t->MatMul(t->Input(x), t->Leaf(w1));
    Var y = t->MatMul(h, t->Leaf(w2));
    return t->MseLoss(y, target);
  });
}

TEST(TapeGradTest, ElementwiseOpsAndBroadcast) {
  Rng rng(2);
  ParameterStore store;
  Parameter* a = store.Create("a", 3, 3, &rng, 0.7);
  Parameter* b = store.Create("b", 3, 3, &rng, 0.7);
  Parameter* bias = store.Create("bias", 1, 3, &rng, 0.3);
  Matrix target(3, 3, 0.2);
  CheckGradients(&store, [&](Tape* t) {
    Var m = t->Mul(t->Leaf(a), t->Leaf(b));
    Var s = t->Sub(m, t->Scale(t->Leaf(a), 0.3));
    Var z = t->AddRowBroadcast(s, t->Leaf(bias));
    return t->MseLoss(t->AddScalar(z, 0.1), target);
  });
}

TEST(TapeGradTest, Activations) {
  Rng rng(3);
  ParameterStore store;
  Parameter* w = store.Create("w", 2, 4, &rng, 0.8);
  Matrix x = Matrix::GaussianRandom(3, 2, &rng);
  Matrix target(3, 4, 0.5);
  for (int which = 0; which < 3; ++which) {
    CheckGradients(&store, [&](Tape* t) {
      Var z = t->MatMul(t->Input(x), t->Leaf(w));
      Var y = which == 0 ? t->Sigmoid(z)
              : which == 1 ? t->Tanh(z)
                           : t->Relu(z);
      return t->MseLoss(y, target);
    });
  }
}

TEST(TapeGradTest, SoftmaxTransposeConcat) {
  Rng rng(4);
  ParameterStore store;
  Parameter* a = store.Create("a", 3, 3, &rng, 0.6);
  Parameter* b = store.Create("b", 3, 2, &rng, 0.6);
  Matrix target(3, 5, 0.1);
  CheckGradients(&store, [&](Tape* t) {
    Var sm = t->SoftmaxRows(t->Leaf(a));
    Var at = t->Transpose(t->Transpose(sm));  // double transpose
    Var cc = t->ConcatCols(at, t->Leaf(b));
    return t->MseLoss(cc, target);
  });
}

TEST(TapeGradTest, SliceAndMulScalarVar) {
  Rng rng(5);
  ParameterStore store;
  Parameter* a = store.Create("a", 4, 4, &rng, 0.5);
  Parameter* s = store.Create("s", 1, 3, &rng, 0.5);
  Matrix target(2, 2, 0.3);
  CheckGradients(&store, [&](Tape* t) {
    Var block = t->Slice(t->Leaf(a), 1, 1, 2, 2);
    Var scaled = t->MulScalarVar(block, t->Slice(t->Leaf(s), 0, 1, 1, 1));
    return t->MseLoss(scaled, target);
  });
}

TEST(TapeGradTest, RowsLookupScatters) {
  Rng rng(6);
  ParameterStore store;
  Parameter* table = store.Create("emb", 5, 3, &rng, 0.5);
  Matrix target(4, 3, 0.25);
  std::vector<uint32_t> ids = {1, 3, 1, 0};  // repeated row 1
  CheckGradients(&store, [&](Tape* t) {
    return t->MseLoss(t->Rows(table, ids), target);
  });
}

TEST(TapeGradTest, BceAndWeightedMse) {
  Rng rng(7);
  ParameterStore store;
  Parameter* w = store.Create("w", 3, 1, &rng, 0.5);
  Matrix x = Matrix::GaussianRandom(6, 3, &rng);
  Matrix target(6, 1);
  for (size_t i = 0; i < 6; ++i) target(i, 0) = i % 2;
  Matrix weights(6, 1);
  for (size_t i = 0; i < 6; ++i) weights(i, 0) = 0.5 + 0.1 * i;
  CheckGradients(&store, [&](Tape* t) {
    Var p = t->Sigmoid(t->MatMul(t->Input(x), t->Leaf(w)));
    return t->BceLoss(p, target);
  });
  CheckGradients(&store, [&](Tape* t) {
    Var p = t->MatMul(t->Input(x), t->Leaf(w));
    return t->WeightedMseLoss(p, target, weights);
  });
}

TEST(TapeGradTest, MatMulT) {
  Rng rng(14);
  ParameterStore store;
  Parameter* a = store.Create("a", 3, 4, &rng, 0.6);
  Parameter* b = store.Create("b", 5, 4, &rng, 0.6);
  Matrix target(3, 5, 0.2);
  CheckGradients(&store, [&](Tape* t) {
    return t->MseLoss(t->MatMulT(t->Leaf(a), t->Leaf(b)), target);
  });
}

TEST(TapeGradTest, LstmStep) {
  Rng rng(8);
  ParameterStore store;
  LstmCell cell(&store, "lstm", 3, 4, /*spatiotemporal=*/true, &rng);
  Matrix x = Matrix::GaussianRandom(2, 3, &rng);
  Matrix dt(2, 1, 0.5), dd(2, 1, 0.25);
  Matrix target(2, 4, 0.2);
  CheckGradients(
      &store,
      [&](Tape* t) {
        auto st = cell.InitialState(t, 2);
        st = cell.Step(t, t->Input(x), st, t->Input(dt), t->Input(dd));
        auto st2 = cell.Step(t, t->Input(x), st, t->Input(dt), t->Input(dd));
        return t->MseLoss(st2.h, target);
      },
      2e-4);
}

TEST(DenseLayerTest, ShapesAndBiasEffect) {
  Rng rng(9);
  ParameterStore store;
  Dense layer(&store, "d", 3, 2, Activation::kNone, &rng);
  Tape tape;
  Var y = layer.Apply(&tape, tape.Input(Matrix(4, 3, 1.0)));
  EXPECT_EQ(tape.value(y).rows(), 4u);
  EXPECT_EQ(tape.value(y).cols(), 2u);
}

TEST(OptimizerTest, AdamMinimizesQuadratic) {
  Rng rng(10);
  ParameterStore store;
  Parameter* w = store.Create("w", 1, 5, &rng, 1.0);
  Adam::Options opts;
  opts.lr = 0.1;
  Adam adam(&store, opts);
  Matrix target(1, 5, 3.0);
  double first = 0, last = 0;
  for (int step = 0; step < 200; ++step) {
    Tape tape;
    Var loss = tape.MseLoss(tape.Leaf(w), target);
    if (step == 0) first = tape.value(loss)(0, 0);
    last = tape.value(loss)(0, 0);
    tape.Backward(loss);
    adam.Step();
  }
  EXPECT_LT(last, 1e-3 * first);
  for (size_t i = 0; i < 5; ++i) EXPECT_NEAR(w->value(0, i), 3.0, 0.05);
}

TEST(OptimizerTest, SgdMomentumMinimizesQuadratic) {
  Rng rng(11);
  ParameterStore store;
  Parameter* w = store.Create("w", 1, 3, &rng, 1.0);
  Sgd::Options opts;
  opts.lr = 0.05;
  opts.momentum = 0.5;
  Sgd sgd(&store, opts);
  Matrix target(1, 3, -1.0);
  for (int step = 0; step < 300; ++step) {
    Tape tape;
    Var loss = tape.MseLoss(tape.Leaf(w), target);
    tape.Backward(loss);
    sgd.Step();
  }
  for (size_t i = 0; i < 3; ++i) EXPECT_NEAR(w->value(0, i), -1.0, 0.02);
}

TEST(MlpTest, LearnsXor) {
  Rng rng(12);
  ParameterStore store;
  Mlp mlp(&store, "xor", {2, 8, 1}, Activation::kTanh, Activation::kSigmoid,
          &rng);
  Matrix x = Matrix::FromRows({{0, 0}, {0, 1}, {1, 0}, {1, 1}});
  Matrix y = Matrix::FromRows({{0}, {1}, {1}, {0}});
  Adam::Options opts;
  opts.lr = 0.05;
  Adam adam(&store, opts);
  for (int step = 0; step < 800; ++step) {
    Tape tape;
    Var loss = tape.BceLoss(mlp.Apply(&tape, tape.Input(x)), y);
    tape.Backward(loss);
    adam.Step();
  }
  Tape tape;
  const Matrix& pred = tape.value(mlp.Apply(&tape, tape.Input(x)));
  EXPECT_LT(pred(0, 0), 0.2);
  EXPECT_GT(pred(1, 0), 0.8);
  EXPECT_GT(pred(2, 0), 0.8);
  EXPECT_LT(pred(3, 0), 0.2);
}

TEST(ParameterStoreTest, CountsWeights) {
  Rng rng(13);
  ParameterStore store;
  store.Create("a", 2, 3, &rng, 1.0);
  store.Create("b", Matrix(4, 1));
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.NumWeights(), 10u);
}

}  // namespace
}  // namespace tcss::nn
