#include <gtest/gtest.h>

#include <cmath>

#include "core/hausdorff_loss.h"
#include "data/time_binning.h"
#include "geo/haversine.h"

namespace tcss {
namespace {

// Two users who are friends; user 0's candidate geometry is what the
// Hausdorff head sees. POIs laid out on a line with known distances.
struct Fixture {
  Dataset data;
  SparseTensor train;

  static Fixture Make(bool user1_visits_far_poi = false) {
    SocialGraph social(2);
    EXPECT_TRUE(social.AddEdge(0, 1).ok());
    EXPECT_TRUE(social.Finalize().ok());
    // POIs spaced ~111 km apart along a meridian.
    std::vector<Poi> pois = {
        {{10.0, 20.0}, PoiCategory::kFood},
        {{11.0, 20.0}, PoiCategory::kFood},
        {{12.0, 20.0}, PoiCategory::kShopping},
        {{13.0, 20.0}, PoiCategory::kOutdoor},
    };
    Dataset d(2, pois, std::move(social));
    // User 0 visits POI 0; user 1 (the friend) visits POI 1 (and 3 if
    // requested).
    EXPECT_TRUE(d.AddCheckIn(0, 0, FromCivil(2011, 1, 5)).ok());
    EXPECT_TRUE(d.AddCheckIn(1, 1, FromCivil(2011, 2, 5)).ok());
    if (user1_visits_far_poi) {
      EXPECT_TRUE(d.AddCheckIn(1, 3, FromCivil(2011, 3, 5)).ok());
    }
    SparseTensor t(2, 4, 12);
    for (const auto& c : d.checkins()) {
      EXPECT_TRUE(
          t.Add(c.user, c.poi, TimeBin(c.timestamp,
                                       TimeGranularity::kMonthOfYear))
              .ok());
    }
    EXPECT_TRUE(t.Finalize().ok());
    Fixture f{std::move(d), std::move(t)};
    return f;
  }
};

TcssConfig SmallConfig() {
  TcssConfig cfg;
  cfg.rank = 2;
  cfg.hausdorff_pool = 0;  // all POIs (paper-exact)
  cfg.max_friend_pois = 0;
  cfg.use_location_entropy = false;
  return cfg;
}

// A model whose predictions we can pin: u1 row picks the user, u2 row the
// POI, u3 constant over time. Setting entries of u2 controls p_{i,j}.
FactorModel PinnedModel(size_t J, double yes_value) {
  FactorModel m;
  m.u1 = Matrix(2, 1, 1.0);
  m.u2 = Matrix(J, 1, 0.0);
  m.u3 = Matrix(12, 1, 1.0);
  m.h = {yes_value};
  return m;
}

TEST(SocialHausdorffTest, EligibleUsersAndFriendSets) {
  Fixture f = Fixture::Make();
  SocialHausdorffLoss loss(f.data, f.train, SmallConfig());
  EXPECT_EQ(loss.num_eligible_users(), 2u);
  // N(v_0) = user 1's POIs = {1}; N(v_1) = {0}.
  EXPECT_EQ(loss.friend_pois(0), (std::vector<uint32_t>{1}));
  EXPECT_EQ(loss.friend_pois(1), (std::vector<uint32_t>{0}));
  // Pool 0 => all POIs are candidates.
  EXPECT_EQ(loss.candidate_pool(0).size(), 4u);
  EXPECT_GT(loss.d_max(), 300.0);  // ~333 km between POI 0 and 3
}

TEST(SocialHausdorffTest, DeterministicCaseMatchesHandComputedAhd) {
  // With p in {0, 1} and alpha -> -inf the loss reduces to the plain
  // average Hausdorff distance (the paper's Eq 9/10 remark). We verify
  // against a hand-computed AHD in the deterministic regime with a very
  // negative alpha.
  Fixture f = Fixture::Make();
  TcssConfig cfg = SmallConfig();
  cfg.alpha = -40.0;  // near-exact min
  SocialHausdorffLoss loss(f.data, f.train, cfg);

  // Model: user 0 visits POI 0 with p ~ 1, everything else ~ 0.
  FactorModel m = PinnedModel(4, 1.0);
  m.u2(0, 0) = 1.0 - 1e-9;  // p(0,0) ~ 1 (y clamps just below 1)

  // Hand computation for user 0 (S = {POI 0}, N = {POI 1}):
  //   term1 = d(0, 1); term2 = M_alpha over S of f, f(0) = d(0,1).
  const double d01 = HaversineKm(f.data.poi(0).location,
                                 f.data.poi(1).location);
  const double got = loss.ComputeForUser(m, 0, nullptr, 0.0);
  // term1 uses A + eps normalization with A = sum p ~ 1 + 3*0 = 1.
  // term2 soft-min over 4 candidates: f(0)=d01 (p=1), f(j)=d_max for the
  // p=0 POIs, so M_-40 ~ (1/4 sum f^-40)^(-1/40) ~ d01 * 4^(1/40).
  const double m_alpha = d01 * std::pow(4.0, 1.0 / 40.0);
  EXPECT_NEAR(got, d01 + m_alpha, 0.05 * (d01 + m_alpha));
}

TEST(SocialHausdorffTest, FarPredictionsArePenalizedMore) {
  Fixture f = Fixture::Make();
  TcssConfig cfg = SmallConfig();
  SocialHausdorffLoss loss(f.data, f.train, cfg);
  // Case A: user 0 predicted near the friend's POI (POI 1).
  FactorModel near_model = PinnedModel(4, 1.0);
  near_model.u2(1, 0) = 0.9;
  // Case B: same mass but on the far POI 3.
  FactorModel far_model = PinnedModel(4, 1.0);
  far_model.u2(3, 0) = 0.9;
  EXPECT_LT(loss.ComputeForUser(near_model, 0, nullptr, 0.0),
            loss.ComputeForUser(far_model, 0, nullptr, 0.0));
}

TEST(SocialHausdorffTest, GradientMatchesNumerical) {
  Fixture f = Fixture::Make(/*user1_visits_far_poi=*/true);
  TcssConfig cfg = SmallConfig();
  cfg.rank = 2;
  SocialHausdorffLoss loss(f.data, f.train, cfg);
  Rng rng(3);
  FactorModel m;
  m.u1 = Matrix::GaussianRandom(2, 2, &rng, 0.4);
  m.u2 = Matrix::GaussianRandom(4, 2, &rng, 0.4);
  m.u3 = Matrix::GaussianRandom(12, 2, &rng, 0.4);
  m.h = {0.8, 1.2};

  FactorGrads g(m);
  g.Zero();
  double base = 0.0;
  for (uint32_t u = 0; u < 2; ++u) {
    base += loss.ComputeForUser(m, u, &g, 1.0);
  }
  auto full = [&]() {
    double s = 0.0;
    for (uint32_t u = 0; u < 2; ++u) s += loss.ComputeForUser(m, u, nullptr, 0.0);
    return s;
  };
  (void)base;
  const double eps = 1e-6;
  auto check = [&](double* param, double analytic, const char* what) {
    const double orig = *param;
    *param = orig + eps;
    const double up = full();
    *param = orig - eps;
    const double down = full();
    *param = orig;
    const double numeric = (up - down) / (2 * eps);
    EXPECT_NEAR(analytic, numeric,
                2e-3 * std::max(1.0, std::fabs(numeric)))
        << what;
  };
  for (size_t i = 0; i < m.u1.size(); ++i) {
    check(m.u1.data() + i, g.u1.data()[i], "u1");
  }
  for (size_t i = 0; i < m.u2.size(); ++i) {
    check(m.u2.data() + i, g.u2.data()[i], "u2");
  }
  for (size_t i = 0; i < m.u3.size(); ++i) {
    check(m.u3.data() + i, g.u3.data()[i], "u3");
  }
  for (size_t t = 0; t < m.h.size(); ++t) check(&m.h[t], g.h[t], "h");
}

TEST(SocialHausdorffTest, GradScaleScalesGradients) {
  Fixture f = Fixture::Make();
  SocialHausdorffLoss loss(f.data, f.train, SmallConfig());
  Rng rng(4);
  FactorModel m;
  m.u1 = Matrix::GaussianRandom(2, 2, &rng, 0.4);
  m.u2 = Matrix::GaussianRandom(4, 2, &rng, 0.4);
  m.u3 = Matrix::GaussianRandom(12, 2, &rng, 0.4);
  m.h = {1.0, 1.0};
  FactorGrads g1(m), g2(m);
  g1.Zero();
  g2.Zero();
  (void)loss.ComputeForUser(m, 0, &g1, 1.0);
  (void)loss.ComputeForUser(m, 0, &g2, 2.5);
  Matrix scaled = g1.u2;
  scaled.Scale(2.5);
  EXPECT_LT(MaxAbsDiff(scaled, g2.u2), 1e-10);
}

TEST(SocialHausdorffTest, SelfModeUsesOwnPois) {
  Fixture f = Fixture::Make();
  TcssConfig cfg = SmallConfig();
  cfg.hausdorff = HausdorffMode::kSelf;
  SocialHausdorffLoss loss(f.data, f.train, cfg);
  EXPECT_EQ(loss.friend_pois(0), (std::vector<uint32_t>{0}));
  EXPECT_EQ(loss.friend_pois(1), (std::vector<uint32_t>{1}));
}

TEST(SocialHausdorffTest, EntropyWeightsReduceLossOnPopularPois) {
  // Making the friend's POI popular (visited by everyone) lowers e_j and
  // thus the penalty contribution of distances to it.
  SocialGraph social(3);
  ASSERT_TRUE(social.AddEdge(0, 1).ok());
  ASSERT_TRUE(social.Finalize().ok());
  std::vector<Poi> pois = {{{10, 20}, PoiCategory::kFood},
                           {{11, 20}, PoiCategory::kFood}};
  Dataset d(3, pois, std::move(social));
  ASSERT_TRUE(d.AddCheckIn(0, 0, FromCivil(2011, 1, 1)).ok());
  ASSERT_TRUE(d.AddCheckIn(1, 1, FromCivil(2011, 2, 1)).ok());
  ASSERT_TRUE(d.AddCheckIn(2, 1, FromCivil(2011, 3, 1)).ok());  // popular POI 1
  SparseTensor t(3, 2, 12);
  for (const auto& c : d.checkins()) {
    ASSERT_TRUE(
        t.Add(c.user, c.poi,
              TimeBin(c.timestamp, TimeGranularity::kMonthOfYear))
            .ok());
  }
  ASSERT_TRUE(t.Finalize().ok());

  TcssConfig with, without;
  with = SmallConfig();
  with.use_location_entropy = true;
  without = SmallConfig();
  without.use_location_entropy = false;
  SocialHausdorffLoss weighted(d, t, with);
  SocialHausdorffLoss unweighted(d, t, without);
  // POI 1 has entropy log 2 -> weight 0.5 < 1.
  EXPECT_NEAR(weighted.entropy_weights()[1], 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(unweighted.entropy_weights()[1], 1.0);

  FactorModel m = PinnedModel(2, 1.0);
  m.u2(0, 0) = 0.7;
  m.u2(1, 0) = 0.2;
  EXPECT_LT(weighted.ComputeForUser(m, 0, nullptr, 0.0),
            unweighted.ComputeForUser(m, 0, nullptr, 0.0));
}

TEST(SocialHausdorffTest, ComputeWithGradsExtrapolates) {
  Fixture f = Fixture::Make();
  TcssConfig cfg = SmallConfig();
  cfg.hausdorff_users_per_epoch = 1;  // half the eligible users per epoch
  SocialHausdorffLoss loss(f.data, f.train, cfg);
  FactorModel m = PinnedModel(4, 1.0);
  m.u2(0, 0) = 0.5;
  m.u2(1, 0) = 0.5;
  FactorGrads g(m);
  g.Zero();
  const double full = loss.ComputeFull(m);
  // Two minibatch epochs cover both users; their extrapolated sum is 2x
  // the true per-user values, so the average matches the full loss.
  const double e1 = loss.ComputeWithGrads(m, 0.1, &g);
  const double e2 = loss.ComputeWithGrads(m, 0.1, &g);
  EXPECT_NEAR((e1 + e2) / 2.0, full, 1e-9);
}

TEST(SocialHausdorffTest, LambdaZeroShortCircuits) {
  Fixture f = Fixture::Make();
  SocialHausdorffLoss loss(f.data, f.train, SmallConfig());
  FactorModel m = PinnedModel(4, 1.0);
  FactorGrads g(m);
  g.Zero();
  EXPECT_DOUBLE_EQ(loss.ComputeWithGrads(m, 0.0, &g), 0.0);
  EXPECT_DOUBLE_EQ(g.u2.MaxAbs(), 0.0);
}

}  // namespace
}  // namespace tcss
