#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "tensor/dense_tensor.h"
#include "tensor/gram_operator.h"
#include "tensor/matricization.h"
#include "tensor/mttkrp.h"
#include "tensor/sparse_tensor.h"

namespace tcss {
namespace {

SparseTensor RandomTensor(size_t I, size_t J, size_t K, size_t nnz,
                          uint64_t seed, bool binary = true) {
  SparseTensor t(I, J, K);
  Rng rng(seed);
  for (size_t n = 0; n < nnz; ++n) {
    EXPECT_TRUE(t.Add(rng.UniformInt(I), rng.UniformInt(J), rng.UniformInt(K),
                      binary ? 1.0 : rng.Uniform(0.1, 2.0))
                    .ok());
  }
  EXPECT_TRUE(t.Finalize(binary).ok());
  return t;
}

TEST(SparseTensorTest, AddFinalizeGet) {
  SparseTensor t(3, 4, 5);
  ASSERT_TRUE(t.Add(0, 1, 2).ok());
  ASSERT_TRUE(t.Add(2, 3, 4).ok());
  ASSERT_TRUE(t.Add(0, 1, 2).ok());  // duplicate
  ASSERT_TRUE(t.Finalize().ok());
  EXPECT_EQ(t.nnz(), 2u);  // coalesced
  EXPECT_DOUBLE_EQ(t.Get(0, 1, 2), 1.0);
  EXPECT_DOUBLE_EQ(t.Get(2, 3, 4), 1.0);
  EXPECT_DOUBLE_EQ(t.Get(1, 1, 1), 0.0);
  EXPECT_TRUE(t.Contains(0, 1, 2));
  EXPECT_FALSE(t.Contains(0, 1, 3));
}

TEST(SparseTensorTest, NonBinaryCoalesceSums) {
  SparseTensor t(2, 2, 2);
  ASSERT_TRUE(t.Add(0, 0, 0, 1.5).ok());
  ASSERT_TRUE(t.Add(0, 0, 0, 2.5).ok());
  ASSERT_TRUE(t.Finalize(/*binary=*/false).ok());
  EXPECT_DOUBLE_EQ(t.Get(0, 0, 0), 4.0);
  EXPECT_DOUBLE_EQ(t.SquaredSum(), 16.0);
}

TEST(SparseTensorTest, RejectsOutOfRangeAndDoubleFinalize) {
  SparseTensor t(2, 2, 2);
  EXPECT_FALSE(t.Add(2, 0, 0).ok());
  EXPECT_FALSE(t.Add(0, 2, 0).ok());
  EXPECT_FALSE(t.Add(0, 0, 2).ok());
  ASSERT_TRUE(t.Finalize().ok());
  EXPECT_FALSE(t.Add(0, 0, 0).ok());
  EXPECT_FALSE(t.Finalize().ok());
}

TEST(SparseTensorTest, DensityAndDims) {
  SparseTensor t = RandomTensor(10, 10, 10, 50, 1);
  EXPECT_EQ(t.dim(0), 10u);
  EXPECT_EQ(t.dim(1), 10u);
  EXPECT_EQ(t.dim(2), 10u);
  EXPECT_DOUBLE_EQ(t.NumCells(), 1000.0);
  EXPECT_NEAR(t.Density(), t.nnz() / 1000.0, 1e-15);
}

TEST(SparseTensorTest, EntriesAreSorted) {
  SparseTensor t = RandomTensor(7, 7, 7, 100, 2);
  const auto& e = t.entries();
  for (size_t n = 1; n < e.size(); ++n) {
    const bool less =
        std::make_tuple(e[n - 1].i, e[n - 1].j, e[n - 1].k) <
        std::make_tuple(e[n].i, e[n].j, e[n].k);
    EXPECT_TRUE(less);
  }
}

TEST(DenseTensorTest, FromSparseRoundTrip) {
  SparseTensor sp = RandomTensor(4, 5, 6, 30, 3);
  DenseTensor d = DenseTensor::FromSparse(sp);
  for (uint32_t i = 0; i < 4; ++i)
    for (uint32_t j = 0; j < 5; ++j)
      for (uint32_t k = 0; k < 6; ++k)
        EXPECT_DOUBLE_EQ(d.at(i, j, k), sp.Get(i, j, k));
}

TEST(DenseTensorTest, FrobeniusDistance) {
  DenseTensor a(2, 2, 1), b(2, 2, 1);
  a.at(0, 0, 0) = 3.0;
  b.at(1, 1, 0) = 4.0;
  EXPECT_DOUBLE_EQ(a.FrobeniusDistance(b), 5.0);
}

TEST(MatricizationTest, UnfoldingShapesAndEntries) {
  SparseTensor t(2, 3, 4);
  ASSERT_TRUE(t.Add(1, 2, 3).ok());
  ASSERT_TRUE(t.Finalize().ok());
  Matrix m0 = Unfold(t, 0);
  EXPECT_EQ(m0.rows(), 2u);
  EXPECT_EQ(m0.cols(), 12u);
  EXPECT_DOUBLE_EQ(m0(1, 2 * 4 + 3), 1.0);
  Matrix m1 = Unfold(t, 1);
  EXPECT_EQ(m1.rows(), 3u);
  EXPECT_EQ(m1.cols(), 8u);
  EXPECT_DOUBLE_EQ(m1(2, 1 * 4 + 3), 1.0);
  Matrix m2 = Unfold(t, 2);
  EXPECT_EQ(m2.rows(), 4u);
  EXPECT_EQ(m2.cols(), 6u);
  EXPECT_DOUBLE_EQ(m2(3, 1 * 3 + 2), 1.0);
}

TEST(MatricizationTest, UnfoldingPreservesMass) {
  SparseTensor t = RandomTensor(5, 6, 7, 60, 4, /*binary=*/false);
  for (int mode = 0; mode < 3; ++mode) {
    Matrix m = Unfold(t, mode);
    double sum = 0.0;
    for (size_t i = 0; i < m.rows(); ++i)
      for (size_t j = 0; j < m.cols(); ++j) sum += m(i, j) * m(i, j);
    EXPECT_NEAR(sum, t.SquaredSum(), 1e-10);
  }
}

// MTTKRP against the dense reference computation.
class MttkrpTest : public ::testing::TestWithParam<int> {};

TEST_P(MttkrpTest, MatchesDenseReference) {
  const int mode = GetParam();
  Rng rng(17);
  SparseTensor t = RandomTensor(6, 5, 4, 40, 5, /*binary=*/false);
  const size_t r = 3;
  Matrix factors[3] = {Matrix::GaussianRandom(6, r, &rng),
                       Matrix::GaussianRandom(5, r, &rng),
                       Matrix::GaussianRandom(4, r, &rng)};
  Matrix fast = Mttkrp(t, factors, mode);

  // Dense reference: out[row, t] = sum over all entries of
  // value * f1[idx1,t] * f2[idx2,t].
  Matrix ref(t.dim(mode), r);
  for (const auto& e : t.entries()) {
    const uint32_t idx[3] = {e.i, e.j, e.k};
    for (size_t tt = 0; tt < r; ++tt) {
      ref(idx[mode], tt) += e.value *
                            factors[(mode + 1) % 3](idx[(mode + 1) % 3], tt) *
                            factors[(mode + 2) % 3](idx[(mode + 2) % 3], tt);
    }
  }
  EXPECT_LT(MaxAbsDiff(fast, ref), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Modes, MttkrpTest, ::testing::Values(0, 1, 2));

// ModeGramOperator against the dense A A^T with and without the diagonal.
class GramOperatorTest
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(GramOperatorTest, MatchesDenseGram) {
  const int mode = std::get<0>(GetParam());
  const bool zero_diag = std::get<1>(GetParam());
  SparseTensor t = RandomTensor(8, 7, 6, 80, 6, /*binary=*/false);
  ModeGramOperator op(t, mode, zero_diag);
  Matrix unfolding = Unfold(t, mode);
  Matrix dense = MatMulT(unfolding, unfolding);
  if (zero_diag) {
    for (size_t i = 0; i < dense.rows(); ++i) dense(i, i) = 0.0;
  }
  ASSERT_EQ(op.Dim(), dense.rows());
  Rng rng(7);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<double> x(op.Dim());
    for (auto& v : x) v = rng.Gaussian();
    std::vector<double> fast(op.Dim());
    op.Apply(x, &fast);
    std::vector<double> ref = MatVec(dense, x);
    for (size_t i = 0; i < ref.size(); ++i) {
      EXPECT_NEAR(fast[i], ref[i], 1e-9) << "mode " << mode;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndDiag, GramOperatorTest,
    ::testing::Combine(::testing::Values(0, 1, 2), ::testing::Bool()));

TEST(GramOperatorTest, DiagonalMatchesDense) {
  SparseTensor t = RandomTensor(5, 5, 5, 40, 8, /*binary=*/false);
  for (int mode = 0; mode < 3; ++mode) {
    ModeGramOperator op(t, mode, true);
    Matrix unfolding = Unfold(t, mode);
    for (size_t i = 0; i < op.Dim(); ++i) {
      double expected = 0.0;
      for (size_t c = 0; c < unfolding.cols(); ++c) {
        expected += unfolding(i, c) * unfolding(i, c);
      }
      EXPECT_NEAR(op.Diagonal()[i], expected, 1e-10);
    }
  }
}

}  // namespace
}  // namespace tcss
