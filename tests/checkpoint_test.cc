// Tests of the training resilience layer: TCKPv1 checkpoint format,
// CheckpointManager retention + crash-safe saves, kill-and-resume
// bit-identity, fault-injection atomicity, divergence guards with LR
// backoff, and plateau early stopping.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "common/env.h"
#include "common/fault_env.h"
#include "common/rng.h"
#include "core/checkpoint.h"
#include "core/trainer.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "data/tensor_builder.h"

namespace tcss {
namespace {

struct World {
  Dataset data;
  SparseTensor train;
};

World MakeWorld() {
  auto data = GenerateSyntheticLbsn(
      PresetConfig(SyntheticPreset::kGowallaLike, 0.2));
  EXPECT_TRUE(data.ok());
  TrainTestSplit split = SplitCheckins(data.value(), 0.8, 3);
  auto train = BuildCheckinTensor(data.value(), split.train,
                                  TimeGranularity::kMonthOfYear);
  EXPECT_TRUE(train.ok());
  return {data.MoveValue(), train.MoveValue()};
}

/// Fresh (empty) per-test scratch directory under the gtest temp dir.
std::string ScratchDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/tcss_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

TrainerCheckpoint MakeCheckpoint(int epoch, uint64_t seed) {
  Rng rng(seed);
  TrainerCheckpoint ckpt;
  ckpt.model.u1 = Matrix::GaussianRandom(5, 3, &rng, 0.4);
  ckpt.model.u2 = Matrix::GaussianRandom(4, 3, &rng, 0.4);
  ckpt.model.u3 = Matrix::GaussianRandom(6, 3, &rng, 0.4);
  ckpt.model.h = {rng.Gaussian(), rng.Gaussian(), rng.Gaussian()};
  ckpt.adam_m = FactorGrads(ckpt.model);
  ckpt.adam_v = FactorGrads(ckpt.model);
  auto fill = [&rng](Matrix* m, Matrix* v) {
    for (size_t i = 0; i < m->size(); ++i) {
      m->data()[i] = rng.Gaussian();
      v->data()[i] = rng.Uniform();
    }
  };
  fill(&ckpt.adam_m.u1, &ckpt.adam_v.u1);
  fill(&ckpt.adam_m.u2, &ckpt.adam_v.u2);
  fill(&ckpt.adam_m.u3, &ckpt.adam_v.u3);
  for (size_t t = 0; t < 3; ++t) {
    ckpt.adam_m.h[t] = rng.Gaussian();
    ckpt.adam_v.h[t] = rng.Uniform();
  }
  ckpt.adam_t = epoch;
  ckpt.epoch = epoch;
  ckpt.hausdorff_rotation = static_cast<size_t>(epoch) * 7;
  ckpt.sampler_state = static_cast<uint64_t>(epoch) * 11 + 5;
  ckpt.lr_scale = 0.5;
  return ckpt;
}

bool SameGrads(const FactorGrads& a, const FactorGrads& b) {
  if (a.h != b.h) return false;
  return MaxAbsDiff(a.u1, b.u1) == 0.0 && MaxAbsDiff(a.u2, b.u2) == 0.0 &&
         MaxAbsDiff(a.u3, b.u3) == 0.0;
}

bool SameCheckpoint(const TrainerCheckpoint& a, const TrainerCheckpoint& b) {
  return a.epoch == b.epoch && a.adam_t == b.adam_t &&
         a.hausdorff_rotation == b.hausdorff_rotation &&
         a.sampler_state == b.sampler_state &&
         a.lr_scale == b.lr_scale && a.model.h == b.model.h &&
         MaxAbsDiff(a.model.u1, b.model.u1) == 0.0 &&
         MaxAbsDiff(a.model.u2, b.model.u2) == 0.0 &&
         MaxAbsDiff(a.model.u3, b.model.u3) == 0.0 &&
         SameGrads(a.adam_m, b.adam_m) && SameGrads(a.adam_v, b.adam_v);
}

bool AllFinite(const FactorModel& m) {
  for (size_t i = 0; i < m.u1.size(); ++i) {
    if (!std::isfinite(m.u1.data()[i])) return false;
  }
  for (size_t i = 0; i < m.u2.size(); ++i) {
    if (!std::isfinite(m.u2.data()[i])) return false;
  }
  for (size_t i = 0; i < m.u3.size(); ++i) {
    if (!std::isfinite(m.u3.data()[i])) return false;
  }
  for (double h : m.h) {
    if (!std::isfinite(h)) return false;
  }
  return true;
}

TEST(CheckpointFormatTest, SerializeParseRoundTripIsExact) {
  const TrainerCheckpoint ckpt = MakeCheckpoint(17, 5);
  const std::string text = SerializeCheckpoint(ckpt);
  auto parsed = ParseCheckpoint(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(SameCheckpoint(ckpt, parsed.value()));
}

TEST(CheckpointFormatTest, FileWithoutSamplerFieldStillParses) {
  // Checkpoints written before the negative-sampling state was persisted
  // lack the "sampler" line; they must parse with sampler_state == 0.
  TrainerCheckpoint ckpt = MakeCheckpoint(9, 4);
  std::string text = SerializeCheckpoint(ckpt);
  std::string_view payload;
  ASSERT_TRUE(ValidateCrcFooter(text, &payload).ok());
  std::string old_format(payload);
  const size_t pos = old_format.find("sampler ");
  ASSERT_NE(pos, std::string::npos);
  const size_t eol = old_format.find('\n', pos);
  ASSERT_NE(eol, std::string::npos);
  old_format.erase(pos, eol - pos + 1);
  AppendCrcFooter(&old_format);

  auto parsed = ParseCheckpoint(old_format);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().sampler_state, 0u);
  ckpt.sampler_state = 0;
  EXPECT_TRUE(SameCheckpoint(ckpt, parsed.value()));
}

TEST(CheckpointFormatTest, EveryTruncationIsRejected) {
  const std::string text = SerializeCheckpoint(MakeCheckpoint(3, 7));
  for (size_t n = 0; n + 1 < text.size(); n += 3) {
    auto parsed = ParseCheckpoint(text.substr(0, n));
    EXPECT_FALSE(parsed.ok()) << "prefix of " << n << " bytes parsed";
  }
}

TEST(CheckpointFormatTest, BitCorruptionIsRejected) {
  std::string text = SerializeCheckpoint(MakeCheckpoint(3, 7));
  text[text.size() / 3] ^= 0x10;
  auto parsed = ParseCheckpoint(text);
  ASSERT_FALSE(parsed.ok());
}

TEST(CheckpointManagerTest, SaveLoadLatestAndRetention) {
  CheckpointOptions opts;
  opts.dir = ScratchDir("retention");
  opts.every = 1;
  opts.retain = 2;
  CheckpointManager mgr(opts);
  ASSERT_TRUE(mgr.Init().ok());
  EXPECT_FALSE(mgr.LoadLatest().ok());  // empty dir

  for (int e = 1; e <= 5; ++e) {
    ASSERT_TRUE(mgr.Save(MakeCheckpoint(e, 100 + e)).ok());
  }
  EXPECT_EQ(mgr.ListEpochs(), (std::vector<int>{4, 5}));
  auto latest = mgr.LoadLatest();
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest.value().epoch, 5);
}

TEST(CheckpointManagerTest, LoadLatestSkipsCorruptNewest) {
  CheckpointOptions opts;
  opts.dir = ScratchDir("skip_corrupt");
  opts.retain = 10;
  CheckpointManager mgr(opts);
  ASSERT_TRUE(mgr.Init().ok());
  ASSERT_TRUE(mgr.Save(MakeCheckpoint(1, 1)).ok());
  ASSERT_TRUE(mgr.Save(MakeCheckpoint(2, 2)).ok());

  // Truncate the newest file; recovery must fall back to epoch 1.
  const std::string newest = opts.dir + "/ckpt-000002.tckp";
  auto contents = Env::Default()->ReadFileToString(newest);
  ASSERT_TRUE(contents.ok());
  {
    auto f = Env::Default()->NewWritableFile(newest);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE(
        f.value()->Append(contents.value().substr(0, 30)).ok());
    ASSERT_TRUE(f.value()->Close().ok());
  }
  auto latest = mgr.LoadLatest();
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest.value().epoch, 1);
}

TEST(CheckpointManagerTest, SaveIsAtomicUnderEveryFailurePoint) {
  const TrainerCheckpoint old_ckpt = MakeCheckpoint(1, 21);
  const TrainerCheckpoint new_ckpt = MakeCheckpoint(2, 22);

  // Learn the op count of one clean save.
  int total_ops = 0;
  {
    CheckpointOptions opts;
    opts.dir = ScratchDir("atomic_probe");
    FaultInjectionEnv probe(Env::Default());
    opts.env = &probe;
    CheckpointManager mgr(opts);
    ASSERT_TRUE(mgr.Save(new_ckpt).ok());
    total_ops = probe.ops_attempted();
    ASSERT_GT(total_ops, 2);
  }

  for (int k = 0; k <= total_ops; ++k) {
    CheckpointOptions opts;
    opts.dir = ScratchDir("atomic_sweep");
    opts.retain = 10;
    CheckpointManager setup(opts);
    ASSERT_TRUE(setup.Init().ok());
    ASSERT_TRUE(setup.Save(old_ckpt).ok());

    FaultInjectionEnv env(Env::Default());
    env.set_fail_after(k);
    env.set_truncate_on_failure(true);
    CheckpointOptions fopts = opts;
    fopts.env = &env;
    CheckpointManager faulty(fopts);
    const Status st = faulty.Save(new_ckpt);

    // Whatever happened, a restarted process must recover a fully valid
    // checkpoint — the old one, or the new one if the rename completed.
    auto latest = setup.LoadLatest();
    ASSERT_TRUE(latest.ok())
        << "crash at op " << k << ": " << latest.status().ToString();
    const bool is_old = SameCheckpoint(latest.value(), old_ckpt);
    const bool is_new = SameCheckpoint(latest.value(), new_ckpt);
    EXPECT_TRUE(is_old || is_new) << "crash at op " << k;
    if (st.ok()) {
      EXPECT_TRUE(is_new) << "crash at op " << k;
    }
  }
}

// Shard-aware naming (CheckpointOptions::shard/num_shards): every worker
// of a distributed run shares one directory, yet each manager sees only
// files carrying its own "-s<s>of<N>" tag.
TEST(ShardNamingTest, ShardsShareADirectoryWithoutClobbering) {
  CheckpointOptions base;
  base.dir = ScratchDir("shards");
  base.every = 1;
  base.retain = 10;
  base.num_shards = 2;

  CheckpointOptions o0 = base, o1 = base;
  o0.shard = 0;
  o1.shard = 1;
  CheckpointManager m0(o0), m1(o1);
  ASSERT_TRUE(m0.Init().ok());
  ASSERT_TRUE(m1.Init().ok());

  // Same epochs, different payloads: distinct file names keep them apart.
  ASSERT_TRUE(m0.Save(MakeCheckpoint(1, 100)).ok());
  ASSERT_TRUE(m1.Save(MakeCheckpoint(1, 200)).ok());
  ASSERT_TRUE(m0.Save(MakeCheckpoint(2, 101)).ok());

  EXPECT_EQ(m0.ListEpochs(), (std::vector<int>{1, 2}));
  EXPECT_EQ(m1.ListEpochs(), (std::vector<int>{1}));

  auto l0 = m0.LoadLatest();
  auto l1 = m1.LoadLatest();
  ASSERT_TRUE(l0.ok());
  ASSERT_TRUE(l1.ok());
  EXPECT_TRUE(SameCheckpoint(l0.value(), MakeCheckpoint(2, 101)));
  EXPECT_TRUE(SameCheckpoint(l1.value(), MakeCheckpoint(1, 200)));

  // The recovery protocol loads a *specific* common epoch per shard.
  auto e1 = m1.LoadEpoch(1);
  ASSERT_TRUE(e1.ok());
  EXPECT_TRUE(SameCheckpoint(e1.value(), MakeCheckpoint(1, 200)));
  EXPECT_EQ(m1.LoadEpoch(2).status().code(), StatusCode::kIOError);

  // The names on disk are the documented scheme, and both tags coexist.
  EXPECT_TRUE(std::filesystem::exists(base.dir + "/ckpt-000002-s0of2.tckp"));
  EXPECT_TRUE(std::filesystem::exists(base.dir + "/ckpt-000001-s1of2.tckp"));
}

TEST(ShardNamingTest, DefaultShardKeepsLegacyNamesAndIgnoresShardFiles) {
  CheckpointOptions copts;
  copts.dir = ScratchDir("shard_legacy");
  copts.every = 1;
  CheckpointManager legacy(copts);
  ASSERT_TRUE(legacy.Init().ok());
  ASSERT_TRUE(legacy.Save(MakeCheckpoint(3, 7)).ok());
  EXPECT_TRUE(std::filesystem::exists(copts.dir + "/ckpt-000003.tckp"));

  // A sharded manager pointed at the same directory sees nothing...
  CheckpointOptions sopts = copts;
  sopts.shard = 1;
  sopts.num_shards = 2;
  CheckpointManager sharded(sopts);
  ASSERT_TRUE(sharded.Init().ok());
  EXPECT_TRUE(sharded.ListEpochs().empty());
  EXPECT_EQ(sharded.LoadLatest().status().code(), StatusCode::kNotFound);

  // ...and after it saves, the legacy manager still sees only its file.
  ASSERT_TRUE(sharded.Save(MakeCheckpoint(5, 8)).ok());
  EXPECT_EQ(legacy.ListEpochs(), (std::vector<int>{3}));
}

TEST(ResumeTest, KillAndResumeIsBitIdentical) {
  World w = MakeWorld();
  TcssConfig cfg;
  cfg.epochs = 12;
  cfg.hausdorff_pool = 64;
  cfg.max_friend_pois = 32;
  cfg.hausdorff_users_per_epoch = 32;

  // Reference: uninterrupted 12-epoch run.
  FactorModel reference;
  {
    TcssTrainer trainer(w.data, w.train, cfg);
    auto result = trainer.Train();
    ASSERT_TRUE(result.ok());
    reference = result.MoveValue();
  }

  // Run with checkpoints every 5 epochs, then simulate a crash after
  // epoch 10 by deleting everything the crashed process would not yet
  // have written (the final epoch-12 checkpoint).
  CheckpointOptions copts;
  copts.dir = ScratchDir("kill_resume");
  copts.every = 5;
  copts.retain = 10;
  CheckpointManager mgr(copts);
  ASSERT_TRUE(mgr.Init().ok());
  {
    TcssTrainer trainer(w.data, w.train, cfg);
    TrainOptions topts;
    topts.checkpoints = &mgr;
    auto result = trainer.Train(topts, nullptr);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(mgr.ListEpochs(), (std::vector<int>{5, 10, 12}));
  }
  ASSERT_TRUE(
      Env::Default()->DeleteFile(copts.dir + "/ckpt-000012.tckp").ok());

  // Resume in a fresh trainer: must pick up at epoch 11 and land on
  // exactly the same floats as the uninterrupted run.
  {
    TcssTrainer trainer(w.data, w.train, cfg);
    TrainOptions topts;
    topts.checkpoints = &mgr;
    topts.resume = true;
    int first_epoch = 0;
    auto result = trainer.Train(
        topts, [&first_epoch](const EpochStats& s, const FactorModel&) {
          if (first_epoch == 0) first_epoch = s.epoch;
        });
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(first_epoch, 11);
    const FactorModel& resumed = result.value();
    EXPECT_EQ(MaxAbsDiff(resumed.u1, reference.u1), 0.0);
    EXPECT_EQ(MaxAbsDiff(resumed.u2, reference.u2), 0.0);
    EXPECT_EQ(MaxAbsDiff(resumed.u3, reference.u3), 0.0);
    ASSERT_EQ(resumed.h.size(), reference.h.size());
    for (size_t t = 0; t < reference.h.size(); ++t) {
      EXPECT_EQ(resumed.h[t], reference.h[t]) << "h[" << t << "]";
    }
  }
}

TEST(ResumeTest, ResumeWithEmptyDirColdStarts) {
  World w = MakeWorld();
  TcssConfig cfg;
  cfg.epochs = 3;
  cfg.hausdorff = HausdorffMode::kNone;
  cfg.lambda = 0.0;
  CheckpointOptions copts;
  copts.dir = ScratchDir("resume_empty");
  CheckpointManager mgr(copts);
  ASSERT_TRUE(mgr.Init().ok());
  TcssTrainer trainer(w.data, w.train, cfg);
  TrainOptions topts;
  topts.checkpoints = &mgr;
  topts.resume = true;
  int first_epoch = 0;
  auto result = trainer.Train(
      topts, [&first_epoch](const EpochStats& s, const FactorModel&) {
        if (first_epoch == 0) first_epoch = s.epoch;
      });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(first_epoch, 1);
}

TEST(ResumeTest, ResumeWithoutCheckpointsIsRejected) {
  World w = MakeWorld();
  TcssConfig cfg;
  cfg.epochs = 2;
  TcssTrainer trainer(w.data, w.train, cfg);
  TrainOptions topts;
  topts.resume = true;
  auto result = trainer.Train(topts, nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResumeTest, MismatchedCheckpointShapeIsRejected) {
  World w = MakeWorld();
  TcssConfig cfg;
  cfg.epochs = 2;
  cfg.hausdorff = HausdorffMode::kNone;
  cfg.lambda = 0.0;
  CheckpointOptions copts;
  copts.dir = ScratchDir("resume_shape");
  CheckpointManager mgr(copts);
  ASSERT_TRUE(mgr.Init().ok());
  ASSERT_TRUE(mgr.Save(MakeCheckpoint(1, 9)).ok());  // tiny 5x4x6 model
  TcssTrainer trainer(w.data, w.train, cfg);
  TrainOptions topts;
  topts.checkpoints = &mgr;
  topts.resume = true;
  auto result = trainer.Train(topts, nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(DivergenceGuardTest, AbsurdLearningRateReturnsNotConverged) {
  World w = MakeWorld();
  TcssConfig cfg;
  cfg.epochs = 20;
  cfg.hausdorff = HausdorffMode::kNone;
  cfg.lambda = 0.0;
  cfg.learning_rate = 1e80;  // Adam steps land the factors at ~1e80

  TcssTrainer trainer(w.data, w.train, cfg);
  auto result = trainer.Train();  // default guards: 3 retries, 0.5 backoff
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotConverged);
  EXPECT_NE(result.status().message().find("divergence"), std::string::npos);
}

TEST(DivergenceGuardTest, RollbackWithStrongBackoffRecovers) {
  World w = MakeWorld();
  TcssConfig cfg;
  cfg.epochs = 8;
  cfg.hausdorff = HausdorffMode::kNone;
  cfg.lambda = 0.0;
  cfg.learning_rate = 1e80;

  TcssTrainer trainer(w.data, w.train, cfg);
  TrainOptions topts;
  topts.max_divergence_retries = 2;
  topts.lr_backoff = 1e-81;  // one backoff lands at a sane LR of 0.1
  int max_rollbacks = 0;
  double last_lr = 0.0;
  auto result = trainer.Train(
      topts, [&](const EpochStats& s, const FactorModel&) {
        max_rollbacks = std::max(max_rollbacks, s.rollbacks);
        last_lr = s.lr;
      });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(max_rollbacks, 1);
  EXPECT_LT(last_lr, 1.0);  // backoff actually applied
  EXPECT_TRUE(AllFinite(result.value()));
}

TEST(DivergenceGuardTest, GradNormLimitTriggersGuard) {
  World w = MakeWorld();
  TcssConfig cfg;
  cfg.epochs = 10;
  cfg.hausdorff = HausdorffMode::kNone;
  cfg.lambda = 0.0;
  TcssTrainer trainer(w.data, w.train, cfg);
  TrainOptions topts;
  topts.grad_norm_limit = 1e-12;  // impossible to satisfy
  topts.max_divergence_retries = 1;
  auto result = trainer.Train(topts, nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotConverged);
}

TEST(EarlyStopTest, PlateauStopsTraining) {
  World w = MakeWorld();
  TcssConfig cfg;
  cfg.epochs = 60;
  cfg.hausdorff = HausdorffMode::kNone;
  cfg.lambda = 0.0;
  TcssTrainer trainer(w.data, w.train, cfg);
  TrainOptions topts;
  topts.plateau_patience = 2;
  topts.plateau_min_delta = 1e18;  // nothing ever "improves" this much
  int epochs_run = 0;
  auto result = trainer.Train(
      topts, [&epochs_run](const EpochStats&, const FactorModel&) {
        ++epochs_run;
      });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(epochs_run, 3);  // 1 sets the best, 2 more plateau epochs
}

TEST(EarlyStopTest, PlateauSavesCheckpointAtTheStoppingEpoch) {
  // Regression: the plateau `break` used to skip the end-of-training
  // snapshot, so a post-plateau --resume silently redid the whole run.
  // Stopping at epoch 3 with a snapshot period of 10 must still leave a
  // checkpoint at epoch 3 on disk.
  World w = MakeWorld();
  TcssConfig cfg;
  cfg.epochs = 60;
  cfg.hausdorff = HausdorffMode::kNone;
  cfg.lambda = 0.0;
  CheckpointOptions copts;
  copts.dir = ScratchDir("plateau_ckpt");
  copts.every = 10;  // would never fire before the early stop
  CheckpointManager mgr(copts);
  ASSERT_TRUE(mgr.Init().ok());
  TcssTrainer trainer(w.data, w.train, cfg);
  TrainOptions topts;
  topts.checkpoints = &mgr;
  topts.plateau_patience = 2;
  topts.plateau_min_delta = 1e18;
  auto result = trainer.Train(topts, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(mgr.ListEpochs(), (std::vector<int>{3}));
  auto latest = mgr.LoadLatest();
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest.value().epoch, 3);
  // The checkpointed model is the one Train() returned.
  EXPECT_EQ(MaxAbsDiff(latest.value().model.u1, result.value().u1), 0.0);
}

TEST(EarlyStopTest, ValidationMetricDrivesTheStop) {
  World w = MakeWorld();
  TcssConfig cfg;
  cfg.epochs = 40;
  cfg.hausdorff = HausdorffMode::kNone;
  cfg.lambda = 0.0;
  TcssTrainer trainer(w.data, w.train, cfg);
  TrainOptions topts;
  topts.plateau_patience = 1;
  topts.validation_metric = [](const FactorModel&) { return 42.0; };
  int epochs_run = 0;
  auto result = trainer.Train(
      topts, [&epochs_run](const EpochStats&, const FactorModel&) {
        ++epochs_run;
      });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(epochs_run, 2);
}

TEST(ResilienceIntegrationTest, CrashDuringCheckpointSavePropagates) {
  // A checkpoint save that dies mid-write surfaces as an IOError from
  // Train, and the directory still holds only fully valid checkpoints.
  World w = MakeWorld();
  TcssConfig cfg;
  cfg.epochs = 6;
  cfg.hausdorff = HausdorffMode::kNone;
  cfg.lambda = 0.0;

  CheckpointOptions copts;
  copts.dir = ScratchDir("crash_midtrain");
  copts.every = 2;
  copts.retain = 10;
  CheckpointManager setup(copts);
  ASSERT_TRUE(setup.Init().ok());

  // Learn the op count of one clean save, then aim the fault at the middle
  // of the *second* save the trainer issues (epoch 4).
  int per_save = 0;
  {
    CheckpointOptions popts;
    popts.dir = ScratchDir("crash_midtrain_probe");
    FaultInjectionEnv probe(Env::Default());
    popts.env = &probe;
    CheckpointManager pmgr(popts);
    ASSERT_TRUE(pmgr.Save(MakeCheckpoint(1, 33)).ok());
    per_save = probe.ops_attempted();
    ASSERT_GT(per_save, 2);
  }

  FaultInjectionEnv env(Env::Default());
  env.set_fail_after(per_save + per_save / 2);
  env.set_truncate_on_failure(true);
  CheckpointOptions fopts = copts;
  fopts.env = &env;
  CheckpointManager faulty(fopts);

  TcssTrainer trainer(w.data, w.train, cfg);
  TrainOptions topts;
  topts.checkpoints = &faulty;
  auto result = trainer.Train(topts, nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);

  // Recovery sees the epoch-2 checkpoint, resumes, and finishes.
  auto latest = setup.LoadLatest();
  ASSERT_TRUE(latest.ok()) << latest.status().ToString();
  EXPECT_EQ(latest.value().epoch, 2);
  TcssTrainer trainer2(w.data, w.train, cfg);
  TrainOptions topts2;
  topts2.checkpoints = &setup;
  topts2.resume = true;
  auto result2 = trainer2.Train(topts2, nullptr);
  ASSERT_TRUE(result2.ok()) << result2.status().ToString();
  EXPECT_TRUE(AllFinite(result2.value()));
}

}  // namespace
}  // namespace tcss
