// Coverage for the ANN candidate-generation tier (DESIGN.md §13): the
// LSH index's bitwise build determinism across thread counts, the
// seed/fingerprint contract, multi-probe behaviour, the recall@10 >= 0.95
// differential property against the exact full-sort oracle (with
// TCSS_PROPTEST_SEED replay), and the serving integration — per-request
// exact fallback (served results never empty when exact isn't), geo-fence
// intersection, batch/single agreement, audited recall telemetry, and the
// generation-keyed rebuild that keeps (model, index) an atomic pair
// across hot reloads, including a rebuild-while-serving storm that the
// TSan stage of tools/check.sh replays.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ann/lsh_index.h"
#include "common/env.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "core/model_io.h"
#include "core/recommend.h"
#include "data/dataset.h"
#include "geo/haversine.h"
#include "obs/metrics.h"
#include "proptest/prop.h"
#include "serve/model_watcher.h"
#include "serve/recommend_service.h"
#include "serve/request.h"

namespace tcss {
namespace {

using proptest::Prop;
using proptest::PropOptions;
using proptest::PropReport;

// --- fixtures ----------------------------------------------------------

// A Gaussian factor model with positive importance weights; the seed pins
// every entry.
FactorModel RandomModel(uint64_t seed, size_t I, size_t J, size_t K,
                        size_t r) {
  Rng rng(seed);
  FactorModel m;
  m.u1 = Matrix::GaussianRandom(I, r, &rng, 0.5);
  m.u2 = Matrix::GaussianRandom(J, r, &rng, 0.5);
  m.u3 = Matrix::GaussianRandom(K, r, &rng, 0.5);
  m.h.resize(r);
  for (size_t t = 0; t < r; ++t) m.h[t] = rng.Uniform(0.2, 1.0);
  return m;
}

// The composed ANN query vector q_t = h_t * U1[i,t] * U3[k,t]: the score
// of POI j is then <q, U2[j,:]> == Predict(i, j, k).
std::vector<double> ComposeQuery(const FactorModel& m, uint32_t user,
                                 uint32_t bin) {
  std::vector<double> q(m.rank());
  const double* a = m.u1.row(user);
  const double* c = m.u3.row(bin);
  for (size_t t = 0; t < m.rank(); ++t) q[t] = m.h[t] * a[t] * c[t];
  return q;
}

// Full-sort exact top-k POI ids, (score desc, id asc) — the recall
// oracle.
std::vector<uint32_t> ExactTopIds(const FactorModel& m, uint32_t user,
                                  uint32_t bin, size_t k) {
  std::vector<std::pair<double, uint32_t>> scored;
  scored.reserve(m.u2.rows());
  for (size_t j = 0; j < m.u2.rows(); ++j) {
    scored.emplace_back(m.Predict(user, static_cast<uint32_t>(j), bin),
                        static_cast<uint32_t>(j));
  }
  std::sort(scored.begin(), scored.end(), [](const auto& x, const auto& y) {
    if (x.first != y.first) return x.first > y.first;
    return x.second < y.second;
  });
  std::vector<uint32_t> ids;
  for (size_t i = 0; i < scored.size() && i < k; ++i) {
    ids.push_back(scored[i].second);
  }
  return ids;
}

// Exact re-rank of an ANN candidate union — what the service's scorer
// does with the union.
std::vector<uint32_t> RerankTopIds(const FactorModel& m,
                                   const std::vector<uint32_t>& cands,
                                   uint32_t user, uint32_t bin, size_t k) {
  std::vector<std::pair<double, uint32_t>> scored;
  scored.reserve(cands.size());
  for (uint32_t j : cands) {
    scored.emplace_back(m.Predict(user, j, bin), j);
  }
  std::sort(scored.begin(), scored.end(), [](const auto& x, const auto& y) {
    if (x.first != y.first) return x.first > y.first;
    return x.second < y.second;
  });
  std::vector<uint32_t> ids;
  for (size_t i = 0; i < scored.size() && i < k; ++i) {
    ids.push_back(scored[i].second);
  }
  return ids;
}

double Recall(const std::vector<uint32_t>& approx,
              const std::vector<uint32_t>& exact) {
  if (exact.empty()) return 1.0;
  std::vector<uint32_t> sorted = approx;
  std::sort(sorted.begin(), sorted.end());
  size_t hit = 0;
  for (uint32_t id : exact) {
    if (std::binary_search(sorted.begin(), sorted.end(), id)) ++hit;
  }
  return static_cast<double>(hit) / static_cast<double>(exact.size());
}

// An LBSN dataset with `num_pois` randomly placed POIs and two check-ins
// per user (so every dataset user has fold-in observations). Bins are
// monthly.
Dataset GeoDataset(uint64_t seed, size_t num_users, size_t num_pois) {
  Rng rng(seed);
  std::vector<Poi> pois(num_pois);
  for (size_t j = 0; j < num_pois; ++j) {
    pois[j] = {{rng.Uniform(-60.0, 60.0), rng.Uniform(-170.0, 170.0)},
               PoiCategory::kFood};
  }
  SocialGraph social(num_users);
  EXPECT_TRUE(social.Finalize().ok());
  Dataset data(num_users, std::move(pois), std::move(social));
  const int64_t jan = 1577836800;  // Jan 2020 (bin 0)
  const int64_t feb = 1580515200;  // Feb 2020 (bin 1)
  for (size_t u = 0; u < num_users; ++u) {
    EXPECT_TRUE(
        data.AddCheckIn(static_cast<uint32_t>(u),
                        static_cast<uint32_t>(rng.UniformInt(num_pois)), jan)
            .ok());
    EXPECT_TRUE(
        data.AddCheckIn(static_cast<uint32_t>(u),
                        static_cast<uint32_t>(rng.UniformInt(num_pois)), feb)
            .ok());
  }
  return data;
}

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

// --- index determinism -------------------------------------------------

TEST(LshIndexTest, BuildIsBitwiseIdenticalAcrossThreadCounts) {
  const FactorModel model = RandomModel(11, 4, 3000, 12, 16);
  ann::LshConfig cfg;  // defaults: 8 tables, auto bits, 8 probes
  std::vector<std::string> images;
  for (int threads : {1, 2, 8}) {
    SetGlobalThreads(threads);
    ann::LshIndex index(model, cfg);
    images.push_back(index.DebugBytes());
  }
  SetGlobalThreads(1);
  ASSERT_FALSE(images[0].empty());
  EXPECT_EQ(images[0], images[1]) << "1-thread vs 2-thread build differ";
  EXPECT_EQ(images[0], images[2]) << "1-thread vs 8-thread build differ";
}

TEST(LshIndexTest, SeedAndFingerprintPinTheProjections) {
  const FactorModel model = RandomModel(7, 3, 500, 12, 8);
  ann::LshConfig cfg;
  ann::LshIndex a(model, cfg);
  ann::LshIndex b(model, cfg);
  // Same bytes, same config: bit-identical index.
  EXPECT_EQ(a.DebugBytes(), b.DebugBytes());
  EXPECT_EQ(a.fingerprint(), ann::ModelFingerprint(model));

  // A different base seed draws fresh hyperplanes.
  ann::LshConfig other_seed = cfg;
  other_seed.seed = cfg.seed + 1;
  EXPECT_NE(a.DebugBytes(), ann::LshIndex(model, other_seed).DebugBytes());

  // Any retrain perturbs the fingerprint, which re-seeds the projections:
  // the hyperplanes are not frozen across model generations.
  FactorModel perturbed = RandomModel(7, 3, 500, 12, 8);
  *perturbed.u2.row(0) += 1e-9;
  EXPECT_NE(ann::ModelFingerprint(perturbed), a.fingerprint());
  EXPECT_NE(a.DebugBytes(), ann::LshIndex(perturbed, cfg).DebugBytes());
}

TEST(LshIndexTest, CandidatesAreSortedUniqueAndInRange) {
  const FactorModel model = RandomModel(3, 4, 700, 12, 8);
  ann::LshConfig cfg;
  ann::LshIndex index(model, cfg);
  for (uint32_t user = 0; user < 4; ++user) {
    const auto q = ComposeQuery(model, user, user % 12);
    const auto cands = index.Candidates(q.data(), q.size());
    EXPECT_FALSE(cands.empty());
    EXPECT_TRUE(std::is_sorted(cands.begin(), cands.end()));
    EXPECT_EQ(std::adjacent_find(cands.begin(), cands.end()), cands.end());
    for (uint32_t id : cands) EXPECT_LT(id, 700u);
  }
  // A query of the wrong rank cannot be composed against the index.
  std::vector<double> bad(model.rank() + 1, 0.5);
  EXPECT_TRUE(index.Candidates(bad.data(), bad.size()).empty());
}

TEST(LshIndexTest, MoreProbesNeverShrinkTheUnion) {
  const FactorModel model = RandomModel(5, 4, 900, 12, 8);
  ann::LshConfig one;
  one.probes = 1;
  ann::LshConfig some;
  some.probes = 4;
  ann::LshConfig many;
  many.probes = ann::kMaxLshProbes;  // clamped to bits+1 internally
  ann::LshIndex i1(model, one), i4(model, some), iall(model, many);
  for (uint32_t user = 0; user < 4; ++user) {
    const auto q = ComposeQuery(model, user, 3);
    const auto c1 = i1.Candidates(q.data(), q.size());
    const auto c4 = i4.Candidates(q.data(), q.size());
    const auto call = iall.Candidates(q.data(), q.size());
    // Same seed+fingerprint => identical hyperplanes, so probing more
    // buckets can only add candidates.
    EXPECT_TRUE(std::includes(c4.begin(), c4.end(), c1.begin(), c1.end()));
    EXPECT_TRUE(
        std::includes(call.begin(), call.end(), c4.begin(), c4.end()));
  }
}

// --- recall property ---------------------------------------------------

struct RecallCase {
  FactorModel model;
  size_t num_pois = 0;
  uint64_t seed = 0;
};

RecallCase GenRecallCase(uint64_t seed, uint32_t size) {
  Rng rng(seed);
  RecallCase c;
  c.seed = seed;
  // 250..~1500 POIs: large enough that the candidate union is a strict
  // subset of the catalogue (the property is vacuous when every request
  // falls back to exact).
  c.num_pois = 250 + 48 * static_cast<size_t>(size) + rng.UniformInt(100);
  const size_t r = 8 + rng.UniformInt(9);  // rank 8..16
  c.model.u1 = Matrix::GaussianRandom(6, r, &rng, 0.5);
  c.model.u2 = Matrix::GaussianRandom(c.num_pois, r, &rng, 0.5);
  c.model.u3 = Matrix::GaussianRandom(12, r, &rng, 0.5);
  c.model.h.resize(r);
  for (size_t t = 0; t < r; ++t) c.model.h[t] = rng.Uniform(0.2, 1.0);
  return c;
}

// The acceptance gate: at the default table/probe settings, recall@10 of
// the re-ranked candidate union against the exact full-sort oracle is
// >= 0.95 pooled over every generated catalogue, with the service's own
// fallback rule applied (a union smaller than min_candidates is served
// exactly and scores recall 1). Each case also has an 0.5 floor so a
// single pathological catalogue cannot hide in the pool.
TEST(AnnRecallProperty, RecallAtTenAgainstExactOracle) {
  size_t total_queries = 0;
  size_t ann_served = 0;
  double recall_sum = 0.0;
  const auto pred = [&](const RecallCase& c, std::string* msg) {
    ann::LshConfig cfg;  // the defaults the CLI flags default to
    ann::LshIndex index(c.model, cfg);
    const size_t k = 10;
    const size_t need = std::max(cfg.min_candidates, k);
    double case_sum = 0.0;
    size_t case_n = 0;
    for (uint32_t user = 0; user < 6; ++user) {
      for (uint32_t bin : {0u, 5u, 11u}) {
        const auto q = ComposeQuery(c.model, user, bin);
        const auto cands = index.Candidates(q.data(), q.size());
        double rec = 1.0;  // service fallback: exact path, perfect recall
        if (cands.size() >= need) {
          ++ann_served;
          rec = Recall(RerankTopIds(c.model, cands, user, bin, k),
                       ExactTopIds(c.model, user, bin, k));
        }
        case_sum += rec;
        ++case_n;
      }
    }
    recall_sum += case_sum;
    total_queries += case_n;
    const double case_recall = case_sum / static_cast<double>(case_n);
    if (case_recall < 0.5) {
      *msg = StrFormat("case recall@10 %.4f < 0.5 (J=%zu seed=%llu)",
                       case_recall, c.num_pois,
                       static_cast<unsigned long long>(c.seed));
      return false;
    }
    return true;
  };
  const PropReport report = Prop::Check<RecallCase>(
      "ann_recall_at_10", 12, GenRecallCase, pred);
  EXPECT_TRUE(report.ok) << report.message;
  uint64_t unused = 0;
  if (!proptest::ReplaySeedFromEnv(&unused)) {
    ASSERT_GT(total_queries, 0u);
    const double pooled = recall_sum / static_cast<double>(total_queries);
    EXPECT_GE(pooled, 0.95) << "pooled recall@10 across " << total_queries
                            << " queries";
    // Vacuity guard: the gate is meaningless if the fallback served
    // (recall 1 by construction) most of the traffic.
    EXPECT_GT(ann_served, total_queries / 2)
        << "ANN answered too few queries for the recall gate to bind";
  }
}

// A failing recall property must print a TCSS_PROPTEST_SEED that replays
// to the identical shrunk counterexample: CheckCase on the reported seed
// reproduces the same shrunk size and the same input-derived message.
TEST(AnnRecallProperty, ReplaySeedReproducesCounterexample) {
  const auto gen = [](uint64_t seed, uint32_t size) {
    Rng rng(seed);
    RecallCase c;
    c.seed = seed;
    c.num_pois = 64 + 8 * static_cast<size_t>(size);
    const size_t r = 4;
    c.model.u1 = Matrix::GaussianRandom(2, r, &rng, 0.5);
    c.model.u2 = Matrix::GaussianRandom(c.num_pois, r, &rng, 0.5);
    c.model.u3 = Matrix::GaussianRandom(12, r, &rng, 0.5);
    c.model.h.assign(r, 1.0);
    return c;
  };
  // An unattainable threshold: every case is a counterexample, and the
  // message depends on the generated input.
  const auto pred = [](const RecallCase& c, std::string* msg) {
    ann::LshConfig cfg;
    cfg.min_candidates = 1;
    ann::LshIndex index(c.model, cfg);
    const auto q = ComposeQuery(c.model, 0, 0);
    const auto cands = index.Candidates(q.data(), q.size());
    const double rec = Recall(RerankTopIds(c.model, cands, 0, 0, 10),
                              ExactTopIds(c.model, 0, 0, 10));
    *msg = StrFormat("recall %.6f at J=%zu fp=%llu", rec, c.num_pois,
                     static_cast<unsigned long long>(
                         ann::ModelFingerprint(c.model)));
    return rec > 1.0;  // impossible
  };
  const PropReport first = Prop::Check<RecallCase>(
      "ann_recall_replay", 3, gen, pred);
  ASSERT_FALSE(first.ok);
  ASSERT_FALSE(first.message.empty());
  for (int replay = 0; replay < 2; ++replay) {
    const PropReport again = Prop::CheckCase<RecallCase>(
        "ann_recall_replay", first.fail_seed, 0, 1, gen, pred);
    ASSERT_FALSE(again.ok);
    EXPECT_EQ(again.fail_seed, first.fail_seed);
    EXPECT_EQ(again.fail_size, first.fail_size);
    EXPECT_EQ(again.shrunk_size, first.shrunk_size);
    EXPECT_EQ(again.message, first.message);
  }
}

// --- serving integration -----------------------------------------------

class AnnServeTest : public ::testing::Test {
 protected:
  // Builds watcher + service over `path` with per-test metric isolation.
  // Callers save a model at `path` first; Init() performs the first poll.
  void Start(Dataset data, const std::string& path,
             RecommendService::Options opts) {
    data_ = std::make_unique<Dataset>(std::move(data));
    opts.metrics = &metrics_;
    ModelWatcher::Options wopts;
    wopts.num_users = data_->num_users();
    wopts.num_pois = data_->num_pois();
    wopts.num_bins = 12;
    watcher_ = std::make_unique<ModelWatcher>(path, wopts);
    service_ = std::make_unique<RecommendService>(
        data_.get(), TimeGranularity::kMonthOfYear, watcher_.get(), opts);
    ASSERT_TRUE(service_->Init().ok());
  }

  static RecommendService::Options AnnOptions(size_t min_candidates,
                                              uint64_t audit_every) {
    RecommendService::Options opts;
    opts.ann.enabled = true;
    opts.ann.lsh.min_candidates = min_candidates;
    opts.ann.audit_every = audit_every;
    return opts;
  }

  obs::MetricRegistry metrics_;
  std::unique_ptr<Dataset> data_;
  std::unique_ptr<ModelWatcher> watcher_;
  std::unique_ptr<RecommendService> service_;
};

// On a catalogue smaller than min_candidates every request falls back to
// the exact path: answers match an ANN-disabled twin exactly and nothing
// is ever served from the union.
TEST_F(AnnServeTest, TinyCatalogFallsBackToExactPath) {
  const std::string path = TempPath("ann_tiny_model.tcss");
  ASSERT_TRUE(SaveFactorModel(RandomModel(21, 4, 5, 12, 4), path).ok());
  Start(GeoDataset(21, 4, 5), path, AnnOptions(64, 1));

  obs::MetricRegistry exact_metrics;
  RecommendService::Options exact_opts;
  exact_opts.metrics = &exact_metrics;
  RecommendService exact(data_.get(), TimeGranularity::kMonthOfYear,
                         watcher_.get(), exact_opts);
  ASSERT_TRUE(exact.Init().ok());

  for (uint32_t user = 0; user < 4; ++user) {
    ServeRequest req;
    req.user = user;
    req.time_bin = user % 12;
    req.k = 3;
    const auto got = service_->TopK(req);
    const auto want = exact.TopK(req);
    ASSERT_EQ(got.tier, want.tier);
    ASSERT_EQ(got.recs.size(), want.recs.size());
    for (size_t i = 0; i < want.recs.size(); ++i) {
      EXPECT_EQ(got.recs[i].poi, want.recs[i].poi);
      EXPECT_DOUBLE_EQ(got.recs[i].score, want.recs[i].score);
    }
    EXPECT_FALSE(got.recs.empty());
  }
  const ServiceStats stats = service_->Stats();
  EXPECT_EQ(stats.ann_served, 0u);
  EXPECT_EQ(stats.ann_fallbacks, 4u);
  EXPECT_EQ(stats.ann_rebuilds, 1u);  // built once, then bypassed
}

// On a large catalogue the union serves, every ANN answer is audited
// (audit_every=1), the recall proxy lands in the registry, and the
// ANN-tier histograms the --metrics-out dump exports are all present.
TEST_F(AnnServeTest, LargeCatalogServesFromUnionAndAudits) {
  const std::string path = TempPath("ann_large_model.tcss");
  ASSERT_TRUE(SaveFactorModel(RandomModel(31, 6, 1200, 12, 8), path).ok());
  Start(GeoDataset(31, 6, 1200), path, AnnOptions(64, 1));

  obs::MetricRegistry exact_metrics;
  RecommendService::Options exact_opts;
  exact_opts.metrics = &exact_metrics;
  RecommendService exact(data_.get(), TimeGranularity::kMonthOfYear,
                         watcher_.get(), exact_opts);
  ASSERT_TRUE(exact.Init().ok());

  for (uint32_t user = 0; user < 6; ++user) {
    for (uint32_t bin : {0u, 3u, 7u, 11u}) {
      ServeRequest req;
      req.user = user;
      req.time_bin = bin;
      req.k = 10;
      const auto got = service_->TopK(req);
      EXPECT_EQ(got.tier, ServeTier::kModel);
      // The differential never-empty guarantee: exact answered, so the
      // ANN tier must too (by union or by fallback, never empty-handed).
      EXPECT_FALSE(exact.TopK(req).recs.empty());
      EXPECT_FALSE(got.recs.empty());
    }
  }

  const ServiceStats stats = service_->Stats();
  EXPECT_GT(stats.ann_served, 0u);
  EXPECT_EQ(stats.ann_audits, stats.ann_served);
  EXPECT_EQ(stats.ann_rebuilds, 1u);
  EXPECT_EQ(stats.ann_served + stats.ann_fallbacks, 24u);

  const auto recall = metrics_.GetHistogram("ann.recall_proxy")->Snapshot();
  ASSERT_EQ(recall.count, stats.ann_audits);
  EXPECT_GE(recall.sum / static_cast<double>(recall.count), 0.9);
  EXPECT_GT(metrics_.GetHistogram("ann.candidates")->Snapshot().count, 0u);
  EXPECT_GT(metrics_.GetHistogram("ann.rebuild_ms")->Snapshot().count, 0u);
  EXPECT_GT(metrics_.GetHistogram("ann.bucket_occupancy")->Snapshot().count,
            0u);
  // The JSON export (what `tcss serve --metrics-out` dumps) carries them.
  const std::string json = metrics_.Snapshot().ToJson();
  for (const char* name :
       {"ann.candidates", "ann.recall_proxy", "ann.rebuild_ms",
        "ann.bucket_occupancy", "ann.served", "ann.rebuilds"}) {
    EXPECT_NE(json.find(name), std::string::npos) << name;
  }
}

// within_km restricts every tier to POIs inside the fence, composes with
// an explicit candidate list by intersection, and a fence that matches
// nothing answers empty instead of leaking the whole catalogue.
TEST_F(AnnServeTest, GeoFenceRestrictsResultsOnEveryTier) {
  const std::string path = TempPath("ann_fence_model.tcss");
  // u1 has 5 rows for 6 dataset users: user 5 serves from fold-in.
  ASSERT_TRUE(SaveFactorModel(RandomModel(41, 5, 800, 12, 8), path).ok());
  Start(GeoDataset(41, 6, 800), path, AnnOptions(8, 0));

  ServeRequest req;
  req.k = 20;
  req.within_km = 1500.0;
  req.center = data_->poi(0).location;
  for (uint32_t user : {0u, 5u, 999u}) {  // model, fold-in, popularity
    req.user = user;
    const auto resp = service_->TopK(req);
    ASSERT_FALSE(resp.recs.empty()) << "user " << user;
    for (const auto& r : resp.recs) {
      EXPECT_LE(HaversineKm(req.center, data_->poi(r.poi).location),
                req.within_km)
          << "user " << user << " poi " << r.poi;
    }
  }

  // Fence ∩ explicit candidates: results come from both restrictions.
  req.user = 0;
  req.candidates = {0, 1, 2, 3, 4, 5, 6, 7};
  const auto both = service_->TopK(req);
  for (const auto& r : both.recs) {
    EXPECT_LT(r.poi, 8u);
    EXPECT_LE(HaversineKm(req.center, data_->poi(r.poi).location),
              req.within_km);
  }

  // A fence over empty ocean (GeoDataset places POIs in [-60, 60] lat):
  // empty answer, not the whole catalogue.
  req.candidates.clear();
  req.center = {-84.0, 10.0};
  req.within_km = 5.0;
  EXPECT_TRUE(service_->TopK(req).recs.empty());

  // An invalid fence is rejected like any other untrusted field.
  req.center = {200.0, 10.0};
  EXPECT_TRUE(service_->TopK(req).recs.empty());
  EXPECT_EQ(service_->Stats().invalid_requests, 1u);
  EXPECT_GE(service_->Stats().geo_fenced, 5u);
}

// BatchTopK must honor per-request options (k, exclusion, candidates,
// fence, ANN/audit decisions) independently per entry: a heterogeneous
// batch answers exactly like the one-at-a-time path.
TEST_F(AnnServeTest, BatchMatchesSingleAcrossHeterogeneousOptions) {
  const std::string path = TempPath("ann_batch_model.tcss");
  ASSERT_TRUE(SaveFactorModel(RandomModel(51, 5, 600, 12, 8), path).ok());
  Start(GeoDataset(51, 6, 600), path, AnnOptions(32, 3));

  std::vector<ServeRequest> reqs;
  {
    ServeRequest r;  // plain ANN-eligible model request
    r.user = 0;
    r.time_bin = 2;
    r.k = 10;
    reqs.push_back(r);
  }
  {
    ServeRequest r;  // different k, visited excluded
    r.user = 1;
    r.time_bin = 5;
    r.k = 3;
    r.exclude_visited = true;
    reqs.push_back(r);
  }
  {
    ServeRequest r;  // explicit candidates (restriction forces exactness)
    r.user = 2;
    r.time_bin = 0;
    r.k = 5;
    r.candidates = {5, 17, 99, 3, 200, 201, 202};
    reqs.push_back(r);
  }
  {
    ServeRequest r;  // geo-fenced
    r.user = 3;
    r.time_bin = 11;
    r.k = 8;
    r.within_km = 2000.0;
    r.center = {10.0, 10.0};
    reqs.push_back(r);
  }
  {
    ServeRequest r;  // fold-in user
    r.user = 5;
    r.time_bin = 1;
    r.k = 4;
    reqs.push_back(r);
  }
  {
    ServeRequest r;  // unknown user: popularity tier
    r.user = 999;
    r.time_bin = 0;
    r.k = 6;
    reqs.push_back(r);
  }
  {
    ServeRequest r;  // invalid time bin: empty, counted invalid
    r.user = 0;
    r.time_bin = 12;
    reqs.push_back(r);
  }

  const auto batch = service_->BatchTopK(reqs);
  ASSERT_EQ(batch.size(), reqs.size());
  for (size_t i = 0; i < reqs.size(); ++i) {
    const auto single = service_->TopK(reqs[i]);
    EXPECT_EQ(batch[i].tier, single.tier) << "request " << i;
    ASSERT_EQ(batch[i].recs.size(), single.recs.size()) << "request " << i;
    for (size_t j = 0; j < single.recs.size(); ++j) {
      EXPECT_EQ(batch[i].recs[j].poi, single.recs[j].poi)
          << "request " << i << " slot " << j;
      // The batch gemm may associate products differently: same ranking,
      // scores equal to a relative ulp-scale tolerance.
      EXPECT_NEAR(batch[i].recs[j].score, single.recs[j].score,
                  1e-9 * (1.0 + std::abs(single.recs[j].score)))
          << "request " << i << " slot " << j;
    }
  }
  // Per-entry option checks on the batch results themselves.
  EXPECT_EQ(batch[1].recs.size(), 3u);
  for (const auto& r : batch[2].recs) {
    EXPECT_TRUE(r.poi == 5 || r.poi == 17 || r.poi == 99 || r.poi == 3 ||
                r.poi == 200 || r.poi == 201 || r.poi == 202);
  }
  for (const auto& r : batch[3].recs) {
    EXPECT_LE(HaversineKm({10.0, 10.0}, data_->poi(r.poi).location), 2000.0);
  }
  EXPECT_EQ(batch[4].tier, ServeTier::kFoldIn);
  EXPECT_EQ(batch[5].tier, ServeTier::kPopularity);
  EXPECT_TRUE(batch[6].recs.empty());
}

// A hot reload swaps (model, index) as one generation: the rebuild
// counter tracks generations, and every rec served after the swap scores
// with the NEW model — never a candidate list from one generation scored
// against the other.
TEST_F(AnnServeTest, HotReloadRebuildsIndexWithTheNewGeneration) {
  const std::string path = TempPath("ann_reload_model.tcss");
  const FactorModel gen1 = RandomModel(61, 4, 400, 12, 8);
  ASSERT_TRUE(SaveFactorModel(gen1, path).ok());
  Start(GeoDataset(61, 4, 400), path, AnnOptions(1, 0));

  ServeRequest req;
  req.user = 0;
  req.time_bin = 4;
  req.k = 5;
  auto r1 = service_->TopK(req);
  ASSERT_EQ(r1.tier, ServeTier::kModel);
  ASSERT_FALSE(r1.recs.empty());
  EXPECT_EQ(service_->Stats().ann_rebuilds, 1u);
  for (const auto& rec : r1.recs) {
    EXPECT_DOUBLE_EQ(rec.score, gen1.Predict(0, rec.poi, 4));
  }

  const FactorModel gen2 = RandomModel(62, 4, 400, 12, 8);
  ASSERT_TRUE(SaveFactorModel(gen2, path).ok());
  service_->PollModel();
  auto r2 = service_->TopK(req);
  ASSERT_EQ(r2.tier, ServeTier::kModel);
  ASSERT_FALSE(r2.recs.empty());
  EXPECT_EQ(service_->Stats().ann_rebuilds, 2u);
  for (const auto& rec : r2.recs) {
    EXPECT_DOUBLE_EQ(rec.score, gen2.Predict(0, rec.poi, 4));
  }
  // Serving without a reload does not rebuild.
  service_->TopK(req);
  EXPECT_EQ(service_->Stats().ann_rebuilds, 2u);
}

// Rebuild-while-serving storm: a writer thread replaces the model file
// continuously while the serving thread interleaves polls, ANN queries,
// fences and fold-ins. The generation invariant (TCSS_CHECK in the
// service) crashes on any (model, index) mismatch; TSan covers the
// watcher/serving-thread edges when check.sh replays this under the
// `ann` label.
TEST_F(AnnServeTest, RebuildWhileServingUnderReloadStorm) {
  const std::string path = TempPath("ann_storm_model.tcss");
  ASSERT_TRUE(SaveFactorModel(RandomModel(71, 4, 300, 12, 8), path).ok());
  Start(GeoDataset(71, 4, 300), path, AnnOptions(1, 4));

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    uint64_t gen = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      // SaveFactorModel writes atomically (temp + rename), so a poll
      // mid-write sees either generation, never a torn file.
      ASSERT_TRUE(
          SaveFactorModel(RandomModel(100 + gen, 4, 300, 12, 8), path).ok());
      ++gen;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  for (int i = 0; i < 400; ++i) {
    if (i % 3 == 0) service_->PollModel();
    ServeRequest req;
    req.user = static_cast<uint32_t>(i % 4);
    req.time_bin = static_cast<uint32_t>(i % 12);
    req.k = 5;
    if (i % 5 == 0) {
      req.within_km = 3000.0;
      req.center = data_->poi(static_cast<uint32_t>(i % 300)).location;
    }
    const auto resp = service_->TopK(req);
    ASSERT_EQ(resp.tier, ServeTier::kModel) << "iteration " << i;
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();

  const ServiceStats stats = service_->Stats();
  EXPECT_EQ(stats.total_queries, 400u);
  EXPECT_GE(stats.ann_rebuilds, 2u) << "the storm never swapped a model";
  EXPECT_GT(stats.ann_served, 0u);
}

}  // namespace
}  // namespace tcss
