// Kernel-dispatch suite (label "kernels"): the TCSS_SIMD dispatch seam,
// bitwise equivalence of the scalar and native kernel builds across
// thread counts, the CSF kernels against COO and each other, the
// bucketed COO modes-1/2 parallel path (serial == parallel bytes), the
// mirrored Gram, and the CSF-backed RewrittenLoss (bound == unbound
// bytes). tools/check.sh runs this suite in the plain stage under both
// TCSS_SIMD=off and TCSS_SIMD=native, and again under ASan/UBSan and
// TSan.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/whole_data_loss.h"
#include "linalg/kernel_table.h"
#include "linalg/matrix.h"
#include "linalg/simd.h"
#include "tensor/csf_tensor.h"
#include "tensor/mttkrp.h"
#include "tensor/sparse_kernels.h"
#include "tensor/sparse_tensor.h"

namespace tcss {
namespace {

bool BitIdentical(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a.data()[i] != b.data()[i]) return false;
  }
  return true;
}

bool BitIdentical(const FactorGrads& a, const FactorGrads& b) {
  return a.h == b.h && BitIdentical(a.u1, b.u1) && BitIdentical(a.u2, b.u2) &&
         BitIdentical(a.u3, b.u3);
}

double RelMaxDiff(const Matrix& a, const Matrix& b) {
  double err = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = std::fabs(a.data()[i] - b.data()[i]);
    const double scale = std::max(1.0, std::fabs(b.data()[i]));
    err = std::max(err, d / scale);
  }
  return err;
}

/// RAII: restore threads and the env-resolved SIMD mode when a test ends.
struct KernelGuard {
  ~KernelGuard() {
    SetGlobalThreads(1);
    SetSimdMode(ResolveSimdMode(std::getenv("TCSS_SIMD")));
  }
};

SparseTensor RandomTensor(size_t I, size_t J, size_t K, size_t nnz,
                          uint64_t seed, bool binary = false) {
  Rng rng(seed);
  SparseTensor x(I, J, K);
  for (size_t e = 0; e < nnz; ++e) {
    (void)x.Add(static_cast<uint32_t>(rng.UniformInt(I)),
                static_cast<uint32_t>(rng.UniformInt(J)),
                static_cast<uint32_t>(rng.UniformInt(K)),
                rng.Uniform(0.1, 2.0));
  }
  EXPECT_TRUE(x.Finalize(binary).ok());
  return x;
}

FactorModel RandomModel(size_t I, size_t J, size_t K, size_t r,
                        uint64_t seed) {
  Rng rng(seed);
  FactorModel m;
  m.u1 = Matrix::GaussianRandom(I, r, &rng, 0.3);
  m.u2 = Matrix::GaussianRandom(J, r, &rng, 0.3);
  m.u3 = Matrix::GaussianRandom(K, r, &rng, 0.3);
  m.h.resize(r);
  for (double& h : m.h) h = rng.Uniform(0.5, 1.5);
  return m;
}

// --------------------------------------------------------------------------
// Dispatch guard: the dispatcher must never silently fall back to scalar
// when the vectorized build is compiled in and the CPU supports it.
// --------------------------------------------------------------------------

TEST(SimdDispatchTest, NativeNeverSilentlyFallsBackWhenAvailable) {
  if (!SimdNativeCompiledIn()) {
    GTEST_SKIP() << "vectorized kernel build not compiled in "
                 << "(toolchain lacks -fopenmp-simd, or coverage build)";
  }
  if (!SimdNativeSupportedByCpu()) {
    GTEST_SKIP() << "CPU lacks the compiled ISA (AVX2)";
  }
  // With the native build available, both the explicit request and the
  // unset default must resolve to kNative — resolving to kScalar here is
  // exactly the silent fallback this guard exists to catch.
  EXPECT_EQ(ResolveSimdMode("native"), SimdMode::kNative);
  EXPECT_EQ(ResolveSimdMode(nullptr), SimdMode::kNative);
  EXPECT_EQ(ResolveSimdMode(""), SimdMode::kNative);
}

TEST(SimdDispatchTest, ExplicitModesResolveAsDocumented) {
  EXPECT_EQ(ResolveSimdMode("off"), SimdMode::kScalar);
  EXPECT_EQ(ResolveSimdMode("scalar"), SimdMode::kScalar);
  // Unknown values warn and resolve like unset.
  EXPECT_EQ(ResolveSimdMode("bogus"), ResolveSimdMode(nullptr));
  EXPECT_STREQ(SimdModeName(SimdMode::kScalar), "scalar");
  EXPECT_STREQ(SimdModeName(SimdMode::kNative), "native");
}

TEST(SimdDispatchTest, SetSimdModeSelectsTable) {
  KernelGuard guard;
  SetSimdMode(SimdMode::kScalar);
  EXPECT_EQ(&ActiveKernels(), &ScalarKernelTable());
  SetSimdMode(SimdMode::kNative);
  EXPECT_EQ(&ActiveKernels(), &NativeKernelTable());
}

// --------------------------------------------------------------------------
// Scalar vs native: bitwise-identical kernels at 1/2/8 threads
// --------------------------------------------------------------------------

TEST(KernelEquivalenceTest, DenseKernelsBitIdenticalScalarVsNative) {
  KernelGuard guard;
  Rng rng(41);
  // Shapes straddle kKc = 64 tiling and the 4-way k-block remainders.
  const size_t shapes[][3] = {
      {1, 1, 1}, {3, 5, 7}, {64, 64, 64}, {65, 67, 33}, {200, 130, 17}};
  for (const auto& s : shapes) {
    const Matrix a = Matrix::GaussianRandom(s[0], s[1], &rng);
    const Matrix b = Matrix::GaussianRandom(s[1], s[2], &rng);
    const Matrix c = Matrix::GaussianRandom(s[0], s[2], &rng);
    for (int threads : {1, 2, 8}) {
      SetGlobalThreads(threads);
      SetSimdMode(SimdMode::kScalar);
      const Matrix mm_s = MatMul(a, b);
      const Matrix mtm_s = MatTMul(a, c);
      const Matrix gram_s = Gram(a);
      SetSimdMode(SimdMode::kNative);
      EXPECT_TRUE(BitIdentical(mm_s, MatMul(a, b)))
          << s[0] << "x" << s[1] << "x" << s[2] << " @" << threads;
      EXPECT_TRUE(BitIdentical(mtm_s, MatTMul(a, c)))
          << s[0] << "x" << s[1] << "x" << s[2] << " @" << threads;
      EXPECT_TRUE(BitIdentical(gram_s, Gram(a)))
          << s[0] << "x" << s[1] << "x" << s[2] << " @" << threads;
    }
  }
}

TEST(KernelEquivalenceTest, CsfMttkrpBitIdenticalScalarVsNativePerMode) {
  KernelGuard guard;
  const SparseTensor x = RandomTensor(40, 30, 12, 2000, 7);
  const CsfTensor csf(x);
  Rng rng(8);
  // Rank 9 exercises the vector remainders, rank 8 the 4-wide chunked
  // bodies, and rank 32 the register-resident mode-0 specialization.
  for (size_t r : {size_t{9}, size_t{8}, size_t{32}}) {
    Matrix factors[3] = {Matrix::GaussianRandom(40, r, &rng),
                         Matrix::GaussianRandom(30, r, &rng),
                         Matrix::GaussianRandom(12, r, &rng)};
    for (int mode = 0; mode < 3; ++mode) {
      for (int threads : {1, 2, 8}) {
        SetGlobalThreads(threads);
        SetSimdMode(SimdMode::kScalar);
        const Matrix want = SparseKernels::Mttkrp(csf, factors, mode);
        SetSimdMode(SimdMode::kNative);
        EXPECT_TRUE(
            BitIdentical(want, SparseKernels::Mttkrp(csf, factors, mode)))
            << "rank " << r << " mode " << mode << " @" << threads
            << " threads";
      }
    }
  }
}

TEST(KernelEquivalenceTest, RewrittenLossBitIdenticalScalarVsNative) {
  KernelGuard guard;
  const SparseTensor x = RandomTensor(25, 20, 8, 1500, 21);
  const FactorModel m = RandomModel(25, 20, 8, 6, 22);
  RewrittenLoss loss(0.95, 0.05);
  for (int threads : {1, 2, 8}) {
    SetGlobalThreads(threads);
    SetSimdMode(SimdMode::kScalar);
    FactorGrads gs(m);
    const double ls = loss.ComputeWithGrads(m, x, &gs);
    SetSimdMode(SimdMode::kNative);
    FactorGrads gn(m);
    const double ln = loss.ComputeWithGrads(m, x, &gn);
    EXPECT_EQ(ls, ln) << threads << " threads";
    EXPECT_TRUE(BitIdentical(gs, gn)) << threads << " threads";
  }
}

// --------------------------------------------------------------------------
// CSF vs COO differential, and thread-count invariance of both
// --------------------------------------------------------------------------

TEST(CsfKernelsTest, MttkrpMatchesCooPerMode) {
  KernelGuard guard;
  for (uint64_t seed : {1u, 2u, 3u}) {
    const SparseTensor x = RandomTensor(30, 25, 10, 400 << seed, seed);
    const CsfTensor csf(x);
    Rng rng(seed + 100);
    const size_t r = 5;
    Matrix factors[3] = {Matrix::GaussianRandom(30, r, &rng),
                         Matrix::GaussianRandom(25, r, &rng),
                         Matrix::GaussianRandom(10, r, &rng)};
    for (int mode = 0; mode < 3; ++mode) {
      const Matrix coo = MttkrpCoo(x, factors, mode);
      const Matrix got = SparseKernels::Mttkrp(csf, factors, mode);
      EXPECT_LE(RelMaxDiff(got, coo), 1e-12)
          << "mode " << mode << " seed " << seed;
    }
  }
}

TEST(CsfKernelsTest, MttkrpThreadCountInvariantPerMode) {
  KernelGuard guard;
  const SparseTensor x = RandomTensor(50, 40, 12, 4000, 5);
  const CsfTensor csf(x);
  Rng rng(6);
  const size_t r = 8;
  Matrix factors[3] = {Matrix::GaussianRandom(50, r, &rng),
                       Matrix::GaussianRandom(40, r, &rng),
                       Matrix::GaussianRandom(12, r, &rng)};
  for (int mode = 0; mode < 3; ++mode) {
    SetGlobalThreads(1);
    const Matrix serial = SparseKernels::Mttkrp(csf, factors, mode);
    for (int threads : {2, 8}) {
      SetGlobalThreads(threads);
      EXPECT_TRUE(
          BitIdentical(serial, SparseKernels::Mttkrp(csf, factors, mode)))
          << "mode " << mode << " @" << threads;
    }
  }
}

// --------------------------------------------------------------------------
// Satellite regression: the bucketed COO modes-1/2 parallel path returns
// the serial loop's exact bytes (the pre-bucketing preserves per-row
// entry order).
// --------------------------------------------------------------------------

TEST(MttkrpCooBucketTest, SerialEqualsParallelBytesAllModes) {
  KernelGuard guard;
  for (const bool finalized : {true, false}) {
    Rng rng(17);
    SparseTensor x(60, 45, 12);
    for (size_t e = 0; e < 9000; ++e) {
      (void)x.Add(static_cast<uint32_t>(rng.UniformInt(60)),
                  static_cast<uint32_t>(rng.UniformInt(45)),
                  static_cast<uint32_t>(rng.UniformInt(12)),
                  rng.Uniform(0.1, 2.0));
    }
    if (finalized) {
      ASSERT_TRUE(x.Finalize(false).ok());
    }
    const size_t r = 8;  // nnz * r is far past the parallel threshold
    Matrix factors[3] = {Matrix::GaussianRandom(60, r, &rng),
                         Matrix::GaussianRandom(45, r, &rng),
                         Matrix::GaussianRandom(12, r, &rng)};
    for (int mode = 0; mode < 3; ++mode) {
      SetGlobalThreads(1);
      const Matrix serial = MttkrpCoo(x, factors, mode);
      for (int threads : {2, 8}) {
        SetGlobalThreads(threads);
        EXPECT_TRUE(BitIdentical(serial, MttkrpCoo(x, factors, mode)))
            << "mode " << mode << " @" << threads
            << (finalized ? " finalized" : " unfinalized");
      }
    }
  }
}

// --------------------------------------------------------------------------
// Satellite regression: mirrored Gram stays bitwise-equal to the full
// rectangle it replaced, and exactly symmetric.
// --------------------------------------------------------------------------

TEST(GramMirrorTest, EqualsFullRectangleBitwise) {
  KernelGuard guard;
  Rng rng(31);
  const std::pair<size_t, size_t> shapes[] = {
      {7, 3}, {200, 32}, {65, 64}, {1, 5}};
  for (const auto& shape : shapes) {
    const Matrix a =
        Matrix::GaussianRandom(shape.first, shape.second, &rng);
    for (int threads : {1, 2, 8}) {
      SetGlobalThreads(threads);
      const Matrix g = Gram(a);
      const Matrix full = MatTMul(a, a);
      EXPECT_TRUE(BitIdentical(g, full))
          << shape.first << "x" << shape.second << " @" << threads;
      for (size_t i = 0; i < g.rows(); ++i) {
        for (size_t j = 0; j < i; ++j) {
          ASSERT_EQ(g(i, j), g(j, i)) << i << "," << j;
        }
      }
    }
  }
}

// --------------------------------------------------------------------------
// CSF-backed RewrittenLoss: bound and unbound calls return the same
// bytes, and the entry term matches a direct per-entry reference.
// --------------------------------------------------------------------------

TEST(RewrittenCsfTest, BoundAndUnboundBitIdentical) {
  KernelGuard guard;
  const SparseTensor x = RandomTensor(30, 22, 9, 2500, 33);
  const FactorModel m = RandomModel(30, 22, 9, 5, 34);
  RewrittenLoss unbound(0.9, 0.1);
  RewrittenLoss bound(0.9, 0.1);
  bound.BindTensor(x);
  for (int threads : {1, 8}) {
    SetGlobalThreads(threads);
    FactorGrads ga(m), gb(m);
    const double la = unbound.ComputeWithGrads(m, x, &ga);
    const double lb = bound.ComputeWithGrads(m, x, &gb);
    EXPECT_EQ(la, lb) << threads << " threads";
    EXPECT_TRUE(BitIdentical(ga, gb)) << threads << " threads";
  }
}

TEST(RewrittenCsfTest, EntryLossMatchesPerEntryReference) {
  KernelGuard guard;
  const SparseTensor x = RandomTensor(12, 10, 6, 200, 35);
  const FactorModel m = RandomModel(12, 10, 6, 4, 36);
  const double wp = 0.93, wn = 0.07;
  const CsfTensor csf(x);
  const double got = SparseKernels::RewrittenEntryLoss(
      csf, m.u1, m.u2, m.u3, m.h, wp, wn, nullptr, nullptr, nullptr,
      nullptr);
  double want = 0.0;
  for (const TensorEntry& e : x.entries()) {
    const double y = m.Predict(e.i, e.j, e.k);
    want += (wp - wn) * y * y - 2.0 * wp * e.value * y +
            wp * e.value * e.value;
  }
  EXPECT_NEAR(got, want, 1e-10 * std::max(1.0, std::fabs(want)));
}

TEST(RewrittenCsfTest, GradsMatchCooEntryLoop) {
  KernelGuard guard;
  const SparseTensor x = RandomTensor(14, 11, 7, 300, 37);
  const FactorModel m = RandomModel(14, 11, 7, 4, 38);
  const double wp = 0.9, wn = 0.1;
  const CsfTensor csf(x);
  FactorGrads got(m);
  (void)SparseKernels::RewrittenEntryLoss(csf, m.u1, m.u2, m.u3, m.h, wp,
                                          wn, &got.u1, &got.u2, &got.u3,
                                          &got.h);
  FactorGrads want(m);
  for (const TensorEntry& e : x.entries()) {
    const double y = m.Predict(e.i, e.j, e.k);
    const double g = 2.0 * (wp - wn) * y - 2.0 * wp * e.value;
    AccumulateEntryGrad(m, e.i, e.j, e.k, g, &want);
  }
  EXPECT_LE(RelMaxDiff(got.u1, want.u1), 1e-12);
  EXPECT_LE(RelMaxDiff(got.u2, want.u2), 1e-12);
  EXPECT_LE(RelMaxDiff(got.u3, want.u3), 1e-12);
  for (size_t t = 0; t < m.h.size(); ++t) {
    EXPECT_NEAR(got.h[t], want.h[t],
                1e-12 * std::max(1.0, std::fabs(want.h[t])));
  }
}

}  // namespace
}  // namespace tcss
