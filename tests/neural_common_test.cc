// Tests for the shared helpers of the neural baselines: trajectory
// construction (with the train-tensor leakage filter) and the
// positive/negative triple sampler.
#include <gtest/gtest.h>

#include "baselines/neural_common.h"
#include "data/time_binning.h"
#include "graph/social_graph.h"

namespace tcss {
namespace {

Dataset TinyDataset() {
  SocialGraph social(2);
  EXPECT_TRUE(social.AddEdge(0, 1).ok());
  EXPECT_TRUE(social.Finalize().ok());
  std::vector<Poi> pois = {{{40.0, -74.0}, PoiCategory::kFood},
                           {{41.0, -75.0}, PoiCategory::kShopping}};
  Dataset d(2, pois, std::move(social));
  // Deliberately out of chronological order.
  EXPECT_TRUE(d.AddCheckIn(0, 1, FromCivil(2011, 3, 1)).ok());
  EXPECT_TRUE(d.AddCheckIn(0, 0, FromCivil(2011, 1, 1)).ok());
  EXPECT_TRUE(d.AddCheckIn(0, 0, FromCivil(2011, 2, 1)).ok());
  EXPECT_TRUE(d.AddCheckIn(1, 1, FromCivil(2011, 6, 1)).ok());
  return d;
}

TEST(TrajectoryTest, SortsChronologicallyPerUser) {
  Dataset d = TinyDataset();
  auto trajs = BuildTrajectories(d, d.checkins(),
                                 TimeGranularity::kMonthOfYear, 0);
  ASSERT_EQ(trajs.size(), 2u);
  ASSERT_EQ(trajs[0].size(), 3u);
  EXPECT_EQ(trajs[0][0].poi, 0u);  // January first
  EXPECT_EQ(trajs[0][1].poi, 0u);  // February
  EXPECT_EQ(trajs[0][2].poi, 1u);  // March
  EXPECT_EQ(trajs[0][0].time_bin, 0u);
  EXPECT_EQ(trajs[0][2].time_bin, 2u);
  EXPECT_EQ(trajs[1].size(), 1u);
}

TEST(TrajectoryTest, MaxLenKeepsMostRecent) {
  Dataset d = TinyDataset();
  auto trajs = BuildTrajectories(d, d.checkins(),
                                 TimeGranularity::kMonthOfYear, 2);
  ASSERT_EQ(trajs[0].size(), 2u);
  EXPECT_EQ(trajs[0][0].time_bin, 1u);  // February kept
  EXPECT_EQ(trajs[0][1].time_bin, 2u);  // March kept
}

TEST(TrajectoryTest, TrainFilterDropsUnobservedCells) {
  Dataset d = TinyDataset();
  // Train tensor containing only user 0's January cell.
  SparseTensor train(2, 2, 12);
  ASSERT_TRUE(train.Add(0, 0, 0).ok());
  ASSERT_TRUE(train.Finalize().ok());
  auto trajs = BuildTrajectories(d, d.checkins(),
                                 TimeGranularity::kMonthOfYear, 0, &train);
  ASSERT_EQ(trajs[0].size(), 1u);  // Feb/Mar cells not in train -> dropped
  EXPECT_EQ(trajs[0][0].time_bin, 0u);
  EXPECT_TRUE(trajs[1].empty());
}

TEST(TripleSamplerTest, LabelsAndRanges) {
  SparseTensor train(6, 6, 4);
  Rng rng(1);
  for (int n = 0; n < 20; ++n) {
    (void)train.Add(rng.UniformInt(6), rng.UniformInt(6), rng.UniformInt(4));
  }
  ASSERT_TRUE(train.Finalize().ok());

  TripleSampler sampler(train, 7);
  TripleBatch batch = sampler.Next(/*num_pos=*/8, /*neg_ratio=*/2);
  ASSERT_EQ(batch.users.size(), 24u);
  ASSERT_EQ(batch.labels.rows(), 24u);
  for (size_t t = 0; t < batch.users.size(); ++t) {
    EXPECT_LT(batch.users[t], 6u);
    EXPECT_LT(batch.pois[t], 6u);
    EXPECT_LT(batch.times[t], 4u);
    const bool is_positive = (t % 3 == 0);
    EXPECT_DOUBLE_EQ(batch.labels(t, 0), is_positive ? 1.0 : 0.0);
    if (is_positive) {
      EXPECT_TRUE(train.Contains(batch.users[t], batch.pois[t],
                                 batch.times[t]));
    }
  }
}

TEST(TripleSamplerTest, CursorCyclesThroughAllPositives) {
  SparseTensor train(4, 4, 2);
  ASSERT_TRUE(train.Add(0, 0, 0).ok());
  ASSERT_TRUE(train.Add(1, 1, 1).ok());
  ASSERT_TRUE(train.Add(2, 2, 0).ok());
  ASSERT_TRUE(train.Finalize().ok());
  TripleSampler sampler(train, 3);
  std::set<uint32_t> seen_users;
  for (int round = 0; round < 3; ++round) {
    TripleBatch b = sampler.Next(1, 0);
    seen_users.insert(b.users[0]);
  }
  EXPECT_EQ(seen_users.size(), 3u);  // all three positives visited
}

TEST(DenseForwardTest, MatchesManualComputation) {
  nn::Parameter w{"w", Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}}),
                  Matrix(3, 2)};
  nn::Parameter b{"b", Matrix::FromRows({{0.5, -10.0}}), Matrix(1, 2)};
  std::vector<double> x = {1, 1, 1};
  auto linear = DenseForward(w, b, x, /*relu=*/false);
  EXPECT_DOUBLE_EQ(linear[0], 9.5);
  EXPECT_DOUBLE_EQ(linear[1], 2.0);
  auto relu = DenseForward(w, b, x, /*relu=*/true);
  EXPECT_DOUBLE_EQ(relu[1], 2.0);
  nn::Parameter b2{"b2", Matrix::FromRows({{0.5, -100.0}}), Matrix(1, 2)};
  auto relu2 = DenseForward(w, b2, x, /*relu=*/true);
  EXPECT_DOUBLE_EQ(relu2[1], 0.0);
  auto sig = DenseForward(w, b2, x, /*relu=*/false, /*sigmoid=*/true);
  EXPECT_NEAR(sig[1], 0.0, 1e-12);
  EXPECT_GT(sig[0], 0.99);
}

}  // namespace
}  // namespace tcss
