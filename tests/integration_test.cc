// End-to-end tests across the whole stack: synthetic generation -> split
// -> tensor construction -> training -> evaluation, plus persistence and
// the headline property of the paper (TCSS's side information helps).
#include <gtest/gtest.h>

#include <filesystem>

#include "baselines/registry.h"
#include "core/tcss_model.h"
#include "data/csv_io.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "data/tensor_builder.h"
#include "eval/ranking_protocol.h"

namespace tcss {
namespace {

struct Pipeline {
  Dataset data;
  SparseTensor train;
  std::vector<TensorCell> test_cells;
};

Pipeline RunPipeline(const Dataset& data, TimeGranularity g,
                     uint64_t seed = 42) {
  TrainTestSplit split = SplitCheckins(data, 0.8, seed);
  auto train = BuildCheckinTensor(data, split.train, g);
  EXPECT_TRUE(train.ok());
  Dataset copy = data;  // Dataset is a value type
  return {std::move(copy), train.MoveValue(), EventsToCells(split.test, g)};
}

TEST(IntegrationTest, FullTcssPipelineOnAllGranularities) {
  auto data = GenerateSyntheticLbsn(
      PresetConfig(SyntheticPreset::kFoursquareLike, 0.25));
  ASSERT_TRUE(data.ok());
  for (TimeGranularity g :
       {TimeGranularity::kMonthOfYear, TimeGranularity::kWeekOfYear,
        TimeGranularity::kHourOfDay}) {
    Pipeline p = RunPipeline(data.value(), g);
    ASSERT_EQ(p.train.dim_k(), NumBins(g));
    TcssConfig cfg;
    cfg.epochs = 80;
    cfg.hausdorff_users_per_epoch = 24;
    cfg.hausdorff_pool = 48;
    TcssModel model(cfg);
    ASSERT_TRUE(model.Fit({&p.data, &p.train, g, 1}).ok())
        << GranularityName(g);
    RankingMetrics m = EvaluateRanking(model, p.data.num_pois(),
                                       p.test_cells, RankingProtocolOptions{});
    EXPECT_GT(m.hit_at_k, 0.3) << GranularityName(g);
  }
}

TEST(IntegrationTest, SocialHausdorffHeadImprovesOverPlainL2) {
  // The paper's headline ablation: lambda > 0 must beat lambda = 0.
  // Run on a mid-sized world so the effect is visible above noise.
  auto data = GenerateSyntheticLbsn(
      PresetConfig(SyntheticPreset::kGowallaLike, 0.5));
  ASSERT_TRUE(data.ok());
  Pipeline p = RunPipeline(data.value(), TimeGranularity::kMonthOfYear);

  TcssConfig with;
  with.epochs = 200;
  TcssConfig without = with;
  without.lambda = 0.0;
  without.hausdorff = HausdorffMode::kNone;

  TcssModel m_with(with), m_without(without);
  ASSERT_TRUE(
      m_with.Fit({&p.data, &p.train, TimeGranularity::kMonthOfYear, 1}).ok());
  ASSERT_TRUE(
      m_without.Fit({&p.data, &p.train, TimeGranularity::kMonthOfYear, 1})
          .ok());
  RankingProtocolOptions opts;
  auto a = EvaluateRanking(m_with, p.data.num_pois(), p.test_cells, opts);
  auto b = EvaluateRanking(m_without, p.data.num_pois(), p.test_cells, opts);
  EXPECT_GE(a.hit_at_k + 0.02, b.hit_at_k);  // no collapse
  EXPECT_GT(a.mrr, b.mrr - 0.02);
}

TEST(IntegrationTest, CsvRoundTripPreservesModelBehaviour) {
  auto data = GenerateSyntheticLbsn(
      PresetConfig(SyntheticPreset::kYelpLike, 0.2));
  ASSERT_TRUE(data.ok());
  std::string dir = ::testing::TempDir() + "/tcss_integration_csv";
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(SaveDatasetCsv(data.value(), dir).ok());
  auto loaded = LoadDatasetCsv(dir);
  ASSERT_TRUE(loaded.ok());

  Pipeline a = RunPipeline(data.value(), TimeGranularity::kMonthOfYear);
  Pipeline b = RunPipeline(loaded.value(), TimeGranularity::kMonthOfYear);
  ASSERT_EQ(a.train.nnz(), b.train.nnz());

  TcssConfig cfg;
  cfg.epochs = 30;
  TcssModel ma(cfg), mb(cfg);
  ASSERT_TRUE(
      ma.Fit({&a.data, &a.train, TimeGranularity::kMonthOfYear, 1}).ok());
  ASSERT_TRUE(
      mb.Fit({&b.data, &b.train, TimeGranularity::kMonthOfYear, 1}).ok());
  // CSV stores coordinates with 7 decimals, which perturbs haversine
  // distances at the ~1e-8 level; scores must agree to that precision.
  EXPECT_NEAR(ma.Score(1, 2, 3), mb.Score(1, 2, 3), 1e-5);
  EXPECT_NEAR(ma.Score(5, 1, 7), mb.Score(5, 1, 7), 1e-5);
}

TEST(IntegrationTest, CategoryFilteredPipelines) {
  auto data = GenerateSyntheticLbsn(
      PresetConfig(SyntheticPreset::kGowallaLike, 0.3));
  ASSERT_TRUE(data.ok());
  for (int c = 0; c < kNumCategories; ++c) {
    Dataset filtered =
        data.value().FilterByCategory(static_cast<PoiCategory>(c));
    if (filtered.num_pois() < 10 || filtered.num_checkins() < 200) continue;
    Pipeline p = RunPipeline(filtered, TimeGranularity::kMonthOfYear);
    TcssConfig cfg;
    cfg.epochs = 60;
    cfg.hausdorff_pool = 48;
    TcssModel model(cfg);
    ASSERT_TRUE(
        model.Fit({&p.data, &p.train, TimeGranularity::kMonthOfYear, 1}).ok())
        << CategoryName(static_cast<PoiCategory>(c));
    RankingMetrics m = EvaluateRanking(model, p.data.num_pois(),
                                       p.test_cells, RankingProtocolOptions{});
    EXPECT_GT(m.hit_at_k, 0.2)
        << CategoryName(static_cast<PoiCategory>(c));
  }
}

TEST(IntegrationTest, DeterministicEndToEnd) {
  auto gen = [] {
    auto data = GenerateSyntheticLbsn(
        PresetConfig(SyntheticPreset::kGmu5kLike, 0.15));
    EXPECT_TRUE(data.ok());
    Pipeline p = RunPipeline(data.value(), TimeGranularity::kMonthOfYear);
    TcssConfig cfg;
    cfg.epochs = 25;
    TcssModel model(cfg);
    EXPECT_TRUE(
        model.Fit({&p.data, &p.train, TimeGranularity::kMonthOfYear, 1}).ok());
    return EvaluateRanking(model, p.data.num_pois(), p.test_cells,
                           RankingProtocolOptions{});
  };
  RankingMetrics a = gen();
  RankingMetrics b = gen();
  EXPECT_DOUBLE_EQ(a.hit_at_k, b.hit_at_k);
  EXPECT_DOUBLE_EQ(a.mrr, b.mrr);
}

}  // namespace
}  // namespace tcss
