#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/rng.h"
#include "graph/personalized_pagerank.h"
#include "graph/social_graph.h"

namespace tcss {
namespace {

TEST(SocialGraphTest, BasicEdgesAndDegrees) {
  SocialGraph g(4);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  ASSERT_TRUE(g.AddEdge(0, 1).ok());  // duplicate, coalesced
  ASSERT_TRUE(g.Finalize().ok());
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.Degree(0), 1u);
  EXPECT_EQ(g.Degree(1), 2u);
  EXPECT_EQ(g.Degree(3), 0u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_EQ(g.Neighbors(1), (std::vector<uint32_t>{0, 2}));
}

TEST(SocialGraphTest, RejectsSelfLoopsAndOutOfRange) {
  SocialGraph g(3);
  EXPECT_FALSE(g.AddEdge(1, 1).ok());
  EXPECT_FALSE(g.AddEdge(0, 3).ok());
}

TEST(SocialGraphTest, LifecycleErrors) {
  SocialGraph g(3);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.Finalize().ok());
  EXPECT_FALSE(g.AddEdge(1, 2).ok());
  EXPECT_FALSE(g.Finalize().ok());
}

TEST(SocialGraphTest, ConnectedComponents) {
  SocialGraph g(6);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  ASSERT_TRUE(g.AddEdge(3, 4).ok());
  ASSERT_TRUE(g.Finalize().ok());
  // {0,1,2}, {3,4}, {5}
  EXPECT_EQ(g.CountConnectedComponents(), 3u);
}

TEST(SocialGraphTest, AverageDegree) {
  SocialGraph g(4);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(2, 3).ok());
  ASSERT_TRUE(g.Finalize().ok());
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 1.0);
}

TEST(WalkGraphTest, PprMassSumsToOne) {
  WalkGraph g(4);
  g.AddArc(0, 1, 1.0);
  g.AddArc(1, 2, 1.0);
  g.AddArc(2, 0, 1.0);
  g.AddArc(2, 3, 1.0);
  g.AddArc(3, 0, 1.0);
  g.Finalize();
  auto rank = g.BookmarkColoring(0, 0.15, 1e-10);
  double total = std::accumulate(rank.begin(), rank.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-6);
  for (double r : rank) EXPECT_GE(r, 0.0);
}

TEST(WalkGraphTest, PushMatchesPowerIteration) {
  Rng rng(3);
  const size_t n = 40;
  WalkGraph g(n);
  for (size_t u = 0; u < n; ++u) {
    const size_t deg = 1 + rng.UniformInt(5);
    for (size_t d = 0; d < deg; ++d) {
      uint32_t v = static_cast<uint32_t>(rng.UniformInt(n));
      if (v != u) g.AddArc(static_cast<uint32_t>(u), v, rng.Uniform(0.2, 2.0));
    }
  }
  g.Finalize();
  for (uint32_t src : {0u, 7u, 23u}) {
    auto push = g.BookmarkColoring(src, 0.2, 1e-10);
    auto power = g.PowerIteration(src, 0.2, 300);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(push[i], power[i], 1e-5) << "node " << i;
    }
  }
}

TEST(WalkGraphTest, DanglingNodesReturnMassToSource) {
  WalkGraph g(3);
  g.AddArc(0, 1, 1.0);
  g.AddArc(0, 2, 1.0);
  // nodes 1, 2 are dangling
  g.Finalize();
  auto rank = g.BookmarkColoring(0, 0.3, 1e-12);
  double total = std::accumulate(rank.begin(), rank.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-6);
  EXPECT_GT(rank[0], rank[1]);
  EXPECT_NEAR(rank[1], rank[2], 1e-9);  // symmetric targets
}

TEST(WalkGraphTest, RestartConcentratesAtSource) {
  WalkGraph g(3);
  g.AddArc(0, 1, 1.0);
  g.AddArc(1, 2, 1.0);
  g.AddArc(2, 0, 1.0);
  g.Finalize();
  auto high = g.BookmarkColoring(0, 0.9, 1e-12);
  auto low = g.BookmarkColoring(0, 0.1, 1e-12);
  EXPECT_GT(high[0], low[0]);
}

TEST(WalkGraphTest, WeightsBiasTheWalk) {
  WalkGraph g(3);
  g.AddArc(0, 1, 10.0);
  g.AddArc(0, 2, 1.0);
  g.Finalize();
  auto rank = g.BookmarkColoring(0, 0.2, 1e-12);
  EXPECT_GT(rank[1], rank[2]);
}

}  // namespace
}  // namespace tcss
