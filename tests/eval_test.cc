#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <tuple>

#include "common/rng.h"
#include "eval/metrics.h"
#include "eval/ranking_protocol.h"

namespace tcss {
namespace {

TEST(MidRankTest, StrictOrdering) {
  EXPECT_DOUBLE_EQ(MidRank(10.0, {1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(MidRank(0.0, {1, 2, 3}), 4.0);
  EXPECT_DOUBLE_EQ(MidRank(2.5, {1, 2, 3}), 2.0);
}

TEST(MidRankTest, TiesSplitEvenly) {
  // Target tied with all three -> rank 1 + 0 + 1.5 = 2.5.
  EXPECT_DOUBLE_EQ(MidRank(1.0, {1, 1, 1}), 2.5);
  // One greater, one tie.
  EXPECT_DOUBLE_EQ(MidRank(1.0, {2, 1}), 2.5);
}

TEST(MidRankTest, EmptyOthersIsRankOne) {
  EXPECT_DOUBLE_EQ(MidRank(0.0, {}), 1.0);
}

TEST(RmseTest, AgainstConstant) {
  std::vector<TensorCell> cells = {{0, 0, 0}, {1, 1, 1}};
  auto score = [](uint32_t i, uint32_t, uint32_t) {
    return i == 0 ? 1.0 : 0.0;
  };
  // errors vs target 1: {0, 1} -> rmse sqrt(0.5)
  EXPECT_NEAR(RmseAgainstConstant(score, cells, 1.0), std::sqrt(0.5), 1e-12);
  EXPECT_DOUBLE_EQ(RmseAgainstConstant(score, {}, 1.0), 0.0);
}

std::vector<TensorCell> MakeCells(size_t n, size_t num_users,
                                  size_t num_pois, uint64_t seed) {
  Rng rng(seed);
  std::vector<TensorCell> cells;
  for (size_t t = 0; t < n; ++t) {
    cells.push_back({static_cast<uint32_t>(rng.UniformInt(num_users)),
                     static_cast<uint32_t>(rng.UniformInt(num_pois)),
                     static_cast<uint32_t>(rng.UniformInt(12))});
  }
  return cells;
}

TEST(RankingProtocolTest, OracleScorerGetsPerfectMetrics) {
  auto cells = MakeCells(200, 20, 500, 1);
  // Oracle: the target POI of a cell always scores highest. Encode the
  // "true" poi per (user, time) by checking membership.
  std::set<std::tuple<uint32_t, uint32_t, uint32_t>> truth;
  for (const auto& c : cells) truth.insert({c.i, c.j, c.k});
  auto score = [&truth](uint32_t i, uint32_t j, uint32_t k) {
    return truth.count({i, j, k}) ? 1.0 : 0.0;
  };
  RankingProtocolOptions opts;
  RankingMetrics m = EvaluateRanking(score, 500, cells, opts);
  EXPECT_DOUBLE_EQ(m.hit_at_k, 1.0);
  // Negatives may occasionally also be "true" cells; MRR stays near 1.
  EXPECT_GT(m.mrr, 0.95);
  EXPECT_EQ(m.num_entries, 200u);
}

TEST(RankingProtocolTest, RandomScorerIsNearChance) {
  auto cells = MakeCells(2000, 50, 300, 2);
  Rng rng(3);
  auto score = [&rng](uint32_t, uint32_t, uint32_t) {
    return rng.Uniform();
  };
  RankingProtocolOptions opts;
  RankingMetrics m = EvaluateRanking(score, 300, cells, opts);
  // Chance level: 10 / 101.
  EXPECT_NEAR(m.hit_at_k, 10.0 / 101.0, 0.02);
}

TEST(RankingProtocolTest, ConstantScorerGetsMidRank) {
  auto cells = MakeCells(500, 10, 200, 4);
  auto score = [](uint32_t, uint32_t, uint32_t) { return 0.5; };
  RankingProtocolOptions opts;
  RankingMetrics m = EvaluateRanking(score, 200, cells, opts);
  // Every target lands at mid-rank 51 -> no hits, MRR = 1/51.
  EXPECT_DOUBLE_EQ(m.hit_at_k, 0.0);
  EXPECT_NEAR(m.mrr, 1.0 / 51.0, 1e-9);
}

TEST(RankingProtocolTest, MrrAveragesPerUserFirst) {
  // User 0 has 2 cells with rank 1; user 1 has 1 cell ranked last.
  // Entry-level mean RR would be (1 + 1 + ~0)/3 = 0.67; the paper's
  // user-level average is (1 + ~0)/2 = 0.5.
  std::vector<TensorCell> cells = {{0, 5, 0}, {0, 6, 1}, {1, 7, 0}};
  auto score = [](uint32_t i, uint32_t j, uint32_t) {
    if (i == 0) return j == 5 || j == 6 ? 1.0 : 0.0;
    return j == 7 ? -1.0 : 0.0;  // user 1's target always loses
  };
  RankingProtocolOptions opts;
  opts.num_negatives = 100;
  RankingMetrics m = EvaluateRanking(score, 1000, cells, opts);
  EXPECT_EQ(m.num_users, 2u);
  EXPECT_NEAR(m.mrr, 0.5 * (1.0 + 1.0 / 101.0), 1e-6);
}

TEST(RankingProtocolTest, DeterministicForSeed) {
  auto cells = MakeCells(300, 30, 400, 5);
  auto score = [](uint32_t i, uint32_t j, uint32_t k) {
    return std::sin(static_cast<double>(i * 131 + j * 17 + k));
  };
  RankingProtocolOptions opts;
  RankingMetrics a = EvaluateRanking(score, 400, cells, opts);
  RankingMetrics b = EvaluateRanking(score, 400, cells, opts);
  EXPECT_DOUBLE_EQ(a.hit_at_k, b.hit_at_k);
  EXPECT_DOUBLE_EQ(a.mrr, b.mrr);
}

TEST(RankingProtocolTest, EmptyTestSet) {
  RankingProtocolOptions opts;
  RankingMetrics m = EvaluateRanking(
      [](uint32_t, uint32_t, uint32_t) { return 0.0; }, 100, {}, opts);
  EXPECT_EQ(m.num_entries, 0u);
  EXPECT_DOUBLE_EQ(m.hit_at_k, 0.0);
}

TEST(RankingProtocolTest, TopKControlsHitThreshold) {
  auto cells = MakeCells(400, 20, 300, 6);
  Rng rng(7);
  auto score = [&rng](uint32_t, uint32_t, uint32_t) {
    return rng.Uniform();
  };
  RankingProtocolOptions opts1;
  opts1.top_k = 1;
  RankingProtocolOptions opts50;
  opts50.top_k = 50;
  double h1 = EvaluateRanking(score, 300, cells, opts1).hit_at_k;
  double h50 = EvaluateRanking(score, 300, cells, opts50).hit_at_k;
  EXPECT_LT(h1, h50);
  EXPECT_NEAR(h50, 50.0 / 101.0, 0.06);
}

// --- Edge cases of the protocol (PR 5) -----------------------------------

TEST(RankingProtocolTest, TieHeavyScorerIsDeterministicAcrossRuns) {
  // A scorer with ties everywhere (three distinct score levels) must give
  // bitwise-identical metrics on repeat runs: ties are handled by MidRank
  // arithmetic, not by any ordering of equal keys.
  auto cells = MakeCells(300, 15, 200, 11);
  auto score = [](uint32_t, uint32_t j, uint32_t) {
    return static_cast<double>(j % 3);
  };
  RankingProtocolOptions opts;
  RankingMetrics a = EvaluateRanking(score, 200, cells, opts);
  RankingMetrics b = EvaluateRanking(score, 200, cells, opts);
  EXPECT_EQ(a.mrr, b.mrr);
  EXPECT_EQ(a.hit_at_k, b.hit_at_k);
  EXPECT_EQ(a.ndcg_at_k, b.ndcg_at_k);
  EXPECT_EQ(a.precision_at_k, b.precision_at_k);
}

TEST(RankingProtocolTest, UsersWithoutTestCellsDoNotDiluteMrr) {
  // Only users 2 and 9 have test cells; MRR averages over exactly those
  // two, not over the full user range.
  std::vector<TensorCell> cells = {{2, 5, 0}, {2, 6, 1}, {9, 7, 0}};
  auto score = [](uint32_t, uint32_t, uint32_t) { return 1.0; };
  RankingProtocolOptions opts;
  opts.num_negatives = 4;
  RankingMetrics m = EvaluateRanking(score, 50, cells, opts);
  EXPECT_EQ(m.num_users, 2u);
  // Constant scores: every rank is the mid-rank 1 + 4/2 = 3.
  EXPECT_DOUBLE_EQ(m.mrr, 1.0 / 3.0);
}

TEST(RankingProtocolTest, TopKBeyondCatalogStillWellDefined) {
  // top_k far larger than both the POI catalogue and the candidate list:
  // every target ranks within k, so Hit@K saturates at 1 and the metrics
  // stay in range.
  auto cells = MakeCells(50, 5, 8, 21);
  Rng rng(3);
  auto score = [&rng](uint32_t, uint32_t, uint32_t) {
    return rng.Uniform();
  };
  RankingProtocolOptions opts;
  opts.top_k = 1000;
  opts.num_negatives = 6;
  RankingMetrics m = EvaluateRanking(score, 8, cells, opts);
  EXPECT_DOUBLE_EQ(m.hit_at_k, 1.0);
  EXPECT_GT(m.ndcg_at_k, 0.0);
  EXPECT_LE(m.ndcg_at_k, 1.0);
}

TEST(RankingProtocolTest, SinglePoiCatalogRanksTargetFirst) {
  // With one POI there are no negatives to draw (j == target is always
  // rejected); the attempts guard must terminate and the target gets
  // rank 1 against an empty field.
  std::vector<TensorCell> cells = {{0, 0, 0}, {1, 0, 3}};
  auto score = [](uint32_t, uint32_t, uint32_t) { return 0.5; };
  RankingProtocolOptions opts;
  RankingMetrics m = EvaluateRanking(score, 1, cells, opts);
  EXPECT_EQ(m.num_entries, 2u);
  EXPECT_DOUBLE_EQ(m.mrr, 1.0);
  EXPECT_DOUBLE_EQ(m.hit_at_k, 1.0);
}

TEST(RankingProtocolTest, AllCandidatesExcludedByTrainObservations) {
  // exclude_observed with a train tensor covering EVERY (user, poi, time)
  // cell: all negative draws are rejected, the attempts guard terminates,
  // and the target ranks 1 against an empty field (metrics still sane).
  const size_t num_pois = 6;
  SparseTensor train(2, num_pois, 2);
  for (uint32_t i = 0; i < 2; ++i) {
    for (uint32_t j = 0; j < num_pois; ++j) {
      for (uint32_t k = 0; k < 2; ++k) ASSERT_TRUE(train.Add(i, j, k).ok());
    }
  }
  ASSERT_TRUE(train.Finalize().ok());
  std::vector<TensorCell> cells = {{0, 2, 0}, {1, 4, 1}};
  auto score = [](uint32_t, uint32_t j, uint32_t) {
    return static_cast<double>(j);
  };
  RankingProtocolOptions opts;
  opts.exclude_observed = true;
  RankingMetrics m = EvaluateRanking(score, num_pois, cells, opts, &train);
  EXPECT_EQ(m.num_entries, 2u);
  EXPECT_DOUBLE_EQ(m.mrr, 1.0);
  EXPECT_DOUBLE_EQ(m.hit_at_k, 1.0);
  EXPECT_DOUBLE_EQ(m.precision_at_k, 1.0 / static_cast<double>(opts.top_k));
}

}  // namespace
}  // namespace tcss
