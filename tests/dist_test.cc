// Distributed training suite (ctest label "dist"): the partition chaos
// harness and the differential gates of the coordinator/worker engine
// (src/dist, DESIGN.md §11).
//
//  * Units: row partition coverage, tensor slicing, sliced factor init,
//    the streamed generator's slice-concat identity, wire round-trips and
//    strict-parse rejection.
//  * Differential gates: a W=1 distributed run is bitwise identical to
//    TcssTrainer (same model bytes, same per-epoch loss bytes); W>=2 runs
//    are run-to-run bitwise reproducible and match the single-process
//    trajectory to <= 1e-12 per element (reduction-order effects only).
//  * Chaos: deterministic worker kill-and-restart resumes bit-identically
//    from the newest common shard checkpoint; a transient wire fault
//    (FaultInjectionEnv) triggers reconnect/recovery without changing the
//    final bytes; split reads exercise frame reassembly end to end; a
//    permanent partition aborts in bounded time instead of hanging.
//  * A multi-process smoke (gated on TCSS_CLI_PATH) SIGKILLs a real
//    worker process mid-run and verifies the restarted fleet converges to
//    the exact bytes of an uninterrupted run.
//
// tools/check.sh runs this suite in the plain and TSan stages.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/env.h"
#include "common/fault_env.h"
#include "common/strings.h"
#include "core/trainer.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "data/tensor_builder.h"
#include "core/spectral_init.h"
#include "dist/coordinator.h"
#include "dist/partition.h"
#include "dist/wire.h"
#include "dist/worker.h"

namespace tcss {
namespace {

// ------------------------------------------------------------------------
// Shared fixtures and helpers
// ------------------------------------------------------------------------

struct World {
  Dataset data;
  SparseTensor train;
};

const World& SmallWorld() {
  static World* world = [] {
    auto data =
        GenerateSyntheticLbsn(PresetConfig(SyntheticPreset::kGowallaLike, 0.2));
    EXPECT_TRUE(data.ok()) << data.status().ToString();
    TrainTestSplit split = SplitCheckins(data.value(), 0.8, 3);
    auto train = BuildCheckinTensor(data.value(), split.train,
                                    TimeGranularity::kMonthOfYear);
    EXPECT_TRUE(train.ok()) << train.status().ToString();
    return new World{data.MoveValue(), train.MoveValue()};
  }();
  return *world;
}

/// The distributed-trainable config every engine test uses: decomposable
/// loss, no cross-shard Hausdorff coupling, seedable init, one compute
/// thread (the suite runs under TSan too).
TcssConfig DistConfig(int epochs = 12) {
  TcssConfig cfg;
  cfg.rank = 4;
  cfg.epochs = epochs;
  cfg.lambda = 0.0;
  cfg.hausdorff = HausdorffMode::kNone;
  cfg.init = InitMethod::kRandom;
  cfg.loss_mode = LossMode::kRewritten;
  cfg.temporal_smoothness = 0.05;
  cfg.num_threads = 1;
  cfg.seed = 13;
  return cfg;
}

/// Short unique socket path (sun_path caps at ~100 bytes, so TempDir is
/// not an option).
std::string SockPath(const char* tag) {
  static std::atomic<int> counter{0};
  return StrFormat("/tmp/tcssd-%d-%s-%d.sock", static_cast<int>(getpid()),
                   tag, counter.fetch_add(1));
}

std::string ScratchDir(const std::string& name) {
  std::string dir =
      (std::filesystem::temp_directory_path() / ("tcss_dist_" + name))
          .string();
  std::filesystem::remove_all(dir);
  return dir;
}

bool BitIdentical(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a.data()[i] != b.data()[i]) return false;
  }
  return true;
}

bool BitIdentical(const FactorModel& a, const FactorModel& b) {
  return a.h == b.h && BitIdentical(a.u1, b.u1) && BitIdentical(a.u2, b.u2) &&
         BitIdentical(a.u3, b.u3);
}

/// One in-process distributed run: the coordinator and every worker on
/// their own threads over a real unix-domain socket. Workers whose
/// simulated-SIGKILL flag fired are restarted once with a fresh DistWorker
/// over the same checkpoint directory — the in-process equivalent of a
/// supervisor restarting a dead process.
struct DistRun {
  Status coordinator_status = Status::OK();
  FactorModel model;
  DistCoordinatorStats cstats;
  std::vector<Status> worker_status;
  std::vector<DistWorkerStats> wstats;
  std::vector<EpochStats> epochs;

  bool ok() const {
    if (!coordinator_status.ok()) return false;
    for (const Status& s : worker_status) {
      if (!s.ok()) return false;
    }
    return true;
  }
};

struct DistRunSpec {
  int num_workers = 1;
  /// Per-rank option tweaks (checkpoint dir, fault env, kill hooks...).
  std::function<void(int, DistWorkerOptions*)> tweak_worker;
  std::function<void(DistCoordinatorOptions*)> tweak_coordinator;
  /// Rank -> simulated-SIGKILL flag; such ranks restart once after dying.
  std::map<int, std::atomic<bool>*> kill_flags;
};

DistRun RunDist(const TcssConfig& cfg, const SparseTensor& full,
                const DistRunSpec& spec) {
  DistRun out;
  const size_t I = full.dim_i(), J = full.dim_j(), K = full.dim_k();
  const RowPartition part(I, spec.num_workers);

  std::vector<SparseTensor> slices;
  slices.reserve(spec.num_workers);
  for (int r = 0; r < spec.num_workers; ++r) {
    auto slice = SliceTensorRows(full, part.Begin(r), part.End(r));
    if (!slice.ok()) {
      ADD_FAILURE() << slice.status().ToString();
      out.coordinator_status = slice.status();
      return out;
    }
    slices.push_back(slice.MoveValue());
  }

  DistCoordinatorOptions copts;
  copts.num_workers = spec.num_workers;
  copts.socket_path = SockPath("run");
  copts.heartbeat_timeout_ms = 2000;
  copts.straggler_warn_ms = 250;
  copts.world_timeout_ms = 20000;
  if (spec.tweak_coordinator) spec.tweak_coordinator(&copts);

  DistCoordinator coordinator(cfg, I, J, K, copts);

  out.worker_status.assign(spec.num_workers, Status::OK());
  out.wstats.assign(spec.num_workers, DistWorkerStats{});
  std::vector<std::thread> threads;
  threads.reserve(spec.num_workers);
  for (int r = 0; r < spec.num_workers; ++r) {
    DistWorkerOptions wopts;
    wopts.rank = r;
    wopts.num_workers = spec.num_workers;
    wopts.socket_path = copts.socket_path;
    wopts.heartbeat_interval_ms = 50;
    if (spec.tweak_worker) spec.tweak_worker(r, &wopts);
    std::atomic<bool>* kill = nullptr;
    auto it = spec.kill_flags.find(r);
    if (it != spec.kill_flags.end()) kill = it->second;
    threads.emplace_back([&out, r, cfg, I, J, K,
                          local = std::move(slices[r]), wopts,
                          kill]() mutable {
      {
        DistWorker worker(cfg, I, J, K, local, wopts);
        out.worker_status[r] = worker.Run();
        out.wstats[r] = worker.stats();
        if (out.worker_status[r].ok() || kill == nullptr || !kill->load()) {
          return;
        }
      }
      // The simulated SIGKILL fired: restart, as a supervisor would. The
      // fresh DistWorker rebuilds everything from the checkpoint dir — the
      // dead instance's memory is gone, exactly like a real process death.
      kill->store(false);
      DistWorker worker(cfg, I, J, K, std::move(local), wopts);
      out.worker_status[r] = worker.Run();
      const DistWorkerStats& second = worker.stats();
      out.wstats[r].epochs_computed += second.epochs_computed;
      out.wstats[r].steps_applied += second.steps_applied;
      out.wstats[r].checkpoints += second.checkpoints;
      out.wstats[r].reloads += second.reloads;
      out.wstats[r].rollbacks += second.rollbacks;
      out.wstats[r].reconnects += second.reconnects;
    });
  }

  // The coordinator runs on this thread: every epoch_callback a test
  // installs fires here, sequenced with the assertions that follow.
  auto result = coordinator.Run();
  for (std::thread& t : threads) t.join();
  out.cstats = coordinator.stats();
  if (result.ok()) {
    out.model = result.MoveValue();
  } else {
    out.coordinator_status = result.status();
  }
  return out;
}

// ------------------------------------------------------------------------
// RowPartition / SliceTensorRows / InitializeFactorsSlice
// ------------------------------------------------------------------------

TEST(RowPartitionTest, CoversRowsContiguouslyWithBalancedBlocks) {
  for (size_t rows : {0u, 1u, 7u, 100u, 101u}) {
    for (int world : {1, 2, 3, 8}) {
      const RowPartition part(rows, world);
      size_t total = 0, max_count = 0, min_count = rows + 1;
      EXPECT_EQ(part.Begin(0), 0u);
      EXPECT_EQ(part.End(world - 1), rows);
      for (int r = 0; r < world; ++r) {
        EXPECT_EQ(part.End(r), r + 1 < world ? part.Begin(r + 1) : rows);
        total += part.Count(r);
        max_count = std::max(max_count, part.Count(r));
        min_count = std::min(min_count, part.Count(r));
      }
      EXPECT_EQ(total, rows) << "rows=" << rows << " world=" << world;
      EXPECT_LE(max_count - min_count, 1u);
    }
  }
}

TEST(SliceTensorRowsTest, SliceConcatEqualsFullTensor) {
  const SparseTensor& full = SmallWorld().train;
  const RowPartition part(full.dim_i(), 3);
  size_t seen = 0;
  for (int r = 0; r < 3; ++r) {
    auto slice = SliceTensorRows(full, part.Begin(r), part.End(r));
    ASSERT_TRUE(slice.ok());
    EXPECT_EQ(slice.value().dim_i(), part.Count(r));
    EXPECT_EQ(slice.value().dim_j(), full.dim_j());
    EXPECT_EQ(slice.value().dim_k(), full.dim_k());
    for (const TensorEntry& e : slice.value().entries()) {
      const TensorEntry& g = full.entries()[seen++];
      EXPECT_EQ(e.i + part.Begin(r), g.i);
      EXPECT_EQ(e.j, g.j);
      EXPECT_EQ(e.k, g.k);
      EXPECT_EQ(e.value, g.value);
    }
  }
  EXPECT_EQ(seen, full.nnz());
}

TEST(SliceTensorRowsTest, RejectsBadRangesAndUnfinalizedInput) {
  const SparseTensor& full = SmallWorld().train;
  EXPECT_FALSE(SliceTensorRows(full, 5, 4).ok());
  EXPECT_FALSE(SliceTensorRows(full, 0, full.dim_i() + 1).ok());
  SparseTensor raw(4, 4, 4);
  ASSERT_TRUE(raw.Add(0, 0, 0).ok());
  EXPECT_FALSE(SliceTensorRows(raw, 0, 2).ok());
}

TEST(ValidateDistConfigTest, EnforcesDecomposability) {
  std::string why;
  TcssConfig good = DistConfig();
  EXPECT_TRUE(ValidateDistConfig(good, 2, &why)) << why;
  EXPECT_TRUE(ValidateDistConfig(good, 1, &why)) << why;

  TcssConfig sampling = good;
  sampling.loss_mode = LossMode::kNegativeSampling;
  EXPECT_FALSE(ValidateDistConfig(sampling, 2, &why));

  TcssConfig social = good;
  social.lambda = 0.1;
  social.hausdorff = HausdorffMode::kSocial;
  EXPECT_FALSE(ValidateDistConfig(social, 2, &why));

  TcssConfig spectral = good;
  spectral.init = InitMethod::kSpectral;
  EXPECT_FALSE(ValidateDistConfig(spectral, 2, &why));
  // W == 1 trains on the full tensor, so spectral init stays available.
  EXPECT_TRUE(ValidateDistConfig(spectral, 1, &why)) << why;
}

TEST(InitializeFactorsSliceTest, MatchesFullInitBitwise) {
  const size_t I = 25, J = 9, K = 5;
  for (InitMethod init : {InitMethod::kRandom, InitMethod::kOneHot}) {
    TcssConfig cfg = DistConfig();
    cfg.init = init;
    // The full-model reference init, via a tensor with those dims.
    SparseTensor t(I, J, K);
    ASSERT_TRUE(t.Add(0, 0, 0).ok());
    ASSERT_TRUE(t.Finalize().ok());
    auto full = InitializeFactors(t, cfg);
    ASSERT_TRUE(full.ok());
    const RowPartition part(I, 3);
    for (int r = 0; r < 3; ++r) {
      auto sliced = InitializeFactorsSlice(cfg, I, J, K, part, r);
      ASSERT_TRUE(sliced.ok()) << sliced.status().ToString();
      EXPECT_EQ(sliced.value().u1.rows(), part.Count(r));
      for (size_t i = 0; i < part.Count(r); ++i) {
        for (size_t c = 0; c < cfg.rank; ++c) {
          EXPECT_EQ(sliced.value().u1.row(i)[c],
                    full.value().u1.row(part.Begin(r) + i)[c])
              << "init=" << InitMethodName(init) << " rank " << r;
        }
      }
      EXPECT_TRUE(BitIdentical(sliced.value().u2, full.value().u2));
      EXPECT_TRUE(BitIdentical(sliced.value().u3, full.value().u3));
      EXPECT_EQ(sliced.value().h, full.value().h);
    }
  }
}

TEST(DistFingerprintTest, SeparatesIncompatibleRuns) {
  TcssConfig cfg = DistConfig();
  const uint64_t base = DistFingerprint(cfg, 100, 50, 12, 2);
  EXPECT_EQ(base, DistFingerprint(cfg, 100, 50, 12, 2));
  EXPECT_NE(base, DistFingerprint(cfg, 101, 50, 12, 2));
  EXPECT_NE(base, DistFingerprint(cfg, 100, 50, 12, 3));
  TcssConfig other = cfg;
  other.learning_rate *= 2.0;
  EXPECT_NE(base, DistFingerprint(other, 100, 50, 12, 2));
  other = cfg;
  other.seed += 1;
  EXPECT_NE(base, DistFingerprint(other, 100, 50, 12, 2));
}

// ------------------------------------------------------------------------
// Streamed generator
// ------------------------------------------------------------------------

TEST(StreamedSliceTest, SliceConcatEqualsFullGeneration) {
  StreamedTensorConfig cfg;
  cfg.seed = 99;
  cfg.num_users = 200;
  cfg.num_pois = 50;
  cfg.num_bins = 6;
  cfg.mean_checkins = 10.0;
  auto full = GenerateStreamedSlice(cfg, 0, cfg.num_users);
  ASSERT_TRUE(full.ok());
  EXPECT_GT(full.value().nnz(), 0u);
  size_t seen = 0;
  const size_t cuts[] = {0, 70, 140, cfg.num_users};
  for (int s = 0; s < 3; ++s) {
    auto slice = GenerateStreamedSlice(cfg, cuts[s], cuts[s + 1]);
    ASSERT_TRUE(slice.ok());
    EXPECT_EQ(slice.value().dim_i(), cuts[s + 1] - cuts[s]);
    for (const TensorEntry& e : slice.value().entries()) {
      const TensorEntry& g = full.value().entries()[seen++];
      EXPECT_EQ(e.i + cuts[s], g.i);
      EXPECT_EQ(e.j, g.j);
      EXPECT_EQ(e.k, g.k);
      EXPECT_EQ(e.value, g.value);
    }
  }
  EXPECT_EQ(seen, full.value().nnz());

  // Regeneration is deterministic: same config, same bytes.
  auto again = GenerateStreamedSlice(cfg, 0, cfg.num_users);
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again.value().nnz(), full.value().nnz());
  for (size_t n = 0; n < full.value().nnz(); ++n) {
    EXPECT_EQ(full.value().entries()[n].i, again.value().entries()[n].i);
    EXPECT_EQ(full.value().entries()[n].j, again.value().entries()[n].j);
    EXPECT_EQ(full.value().entries()[n].k, again.value().entries()[n].k);
  }
}

// ------------------------------------------------------------------------
// Wire protocol
// ------------------------------------------------------------------------

std::vector<DistMsg> RepresentativeMessages() {
  std::vector<DistMsg> msgs;
  {
    DistMsg m;
    m.type = DistMsgType::kHello;
    m.gen = 3;
    m.rank = 1;
    m.num_workers = 4;
    m.fingerprint = 0xdeadbeefcafef00dull;
    m.ckpt_epochs = {5, 10, 15};
    msgs.push_back(m);
  }
  {
    DistMsg m;
    m.type = DistMsgType::kStart;
    m.gen = 7;
    m.epoch = 15;
    msgs.push_back(m);
  }
  {
    DistMsg m;
    m.type = DistMsgType::kGrad;
    m.gen = 7;
    m.epoch = 16;
    m.loss = 123.25;
    m.grad_maxabs = 0.5;
    m.lr_scale = 0.25;
    m.u2 = {1.0, -2.0, 3.5};
    m.u3 = {0.0, -0.0};
    m.h = {1e-300};
    m.u3_replica = {4.0, 5.0};
    msgs.push_back(m);
  }
  {
    DistMsg m;
    m.type = DistMsgType::kReduced;
    m.gen = 7;
    m.epoch = 16;
    m.action = kActionStep;
    m.flags = kFlagCheckpoint | kFlagLastEpoch;
    m.lr = 0.0625;
    m.lr_scale = 0.25;
    m.u2 = {2.0};
    m.u3 = {3.0};
    m.h = {4.0};
    msgs.push_back(m);
  }
  {
    DistMsg m;
    m.type = DistMsgType::kHeartbeat;
    m.gen = 9;
    msgs.push_back(m);
  }
  {
    DistMsg m;
    m.type = DistMsgType::kCkptAck;
    m.gen = 9;
    m.epoch = 20;
    msgs.push_back(m);
  }
  {
    DistMsg m;
    m.type = DistMsgType::kFinal;
    m.gen = 9;
    m.epoch = 40;
    m.u1 = {1.5, 2.5, 3.5, 4.5};
    m.u2 = {1.0};
    m.u3 = {2.0};
    m.h = {3.0};
    msgs.push_back(m);
  }
  {
    DistMsg m;
    m.type = DistMsgType::kShutdown;
    m.gen = 9;
    msgs.push_back(m);
  }
  {
    DistMsg m;
    m.type = DistMsgType::kReport;
    m.gen = 10;
    msgs.push_back(m);
  }
  {
    DistMsg m;
    m.type = DistMsgType::kAbort;
    m.gen = 10;
    m.text = "fingerprint mismatch";
    msgs.push_back(m);
  }
  return msgs;
}

void ExpectSameMsg(const DistMsg& a, const DistMsg& b) {
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.gen, b.gen);
  EXPECT_EQ(a.rank, b.rank);
  EXPECT_EQ(a.num_workers, b.num_workers);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.ckpt_epochs, b.ckpt_epochs);
  EXPECT_EQ(a.epoch, b.epoch);
  EXPECT_EQ(a.action, b.action);
  EXPECT_EQ(a.flags, b.flags);
  EXPECT_EQ(a.lr, b.lr);
  EXPECT_EQ(a.lr_scale, b.lr_scale);
  EXPECT_EQ(a.loss, b.loss);
  EXPECT_EQ(a.grad_maxabs, b.grad_maxabs);
  EXPECT_EQ(a.u1, b.u1);
  EXPECT_EQ(a.u2, b.u2);
  EXPECT_EQ(a.u3, b.u3);
  EXPECT_EQ(a.h, b.h);
  EXPECT_EQ(a.u3_replica, b.u3_replica);
  EXPECT_EQ(a.text, b.text);
}

TEST(DistWireTest, EveryMessageTypeRoundTripsExactly) {
  for (const DistMsg& m : RepresentativeMessages()) {
    auto parsed = ParseDistMsg(EncodeDistMsg(m));
    ASSERT_TRUE(parsed.ok())
        << DistMsgTypeName(m.type) << ": " << parsed.status().ToString();
    ExpectSameMsg(m, parsed.value());
  }
}

TEST(DistWireTest, StrictParseRejectsMalformedPayloads) {
  EXPECT_FALSE(ParseDistMsg("").ok());
  EXPECT_FALSE(ParseDistMsg(std::string(1, '\x63')).ok());  // unknown type
  for (const DistMsg& m : RepresentativeMessages()) {
    const std::string good = EncodeDistMsg(m);
    // Every truncation fails (a shorter prefix can never parse: trailing
    // bytes are rejected, so a valid shorter message cannot hide inside).
    for (size_t cut = 0; cut < good.size(); ++cut) {
      EXPECT_FALSE(ParseDistMsg(std::string_view(good.data(), cut)).ok())
          << DistMsgTypeName(m.type) << " cut=" << cut;
    }
    // One trailing byte fails.
    EXPECT_FALSE(ParseDistMsg(good + 'x').ok()) << DistMsgTypeName(m.type);
  }
  // An absurd array count must be rejected before allocation.
  DistMsg hello;
  hello.type = DistMsgType::kHello;
  std::string evil = EncodeDistMsg(hello);
  // The ckpt_epochs count is the last u32 of the payload; force it huge.
  ASSERT_GE(evil.size(), 4u);
  evil[evil.size() - 1] = '\x7f';
  evil[evil.size() - 2] = '\xff';
  evil[evil.size() - 3] = '\xff';
  evil[evil.size() - 4] = '\xff';
  EXPECT_FALSE(ParseDistMsg(evil).ok());
}

TEST(DistWireTest, ReaderReassemblesSplitReadsOverRealSocket) {
  FaultInjectionEnv env(Env::Default());
  env.set_conn_read_chunk(3);  // the kernel dribbles 3 bytes at a time
  const std::string path = SockPath("wire");
  auto listener = env.NewListener(path);
  ASSERT_TRUE(listener.ok());
  std::thread client([&env, &path] {
    auto conn = env.Connect(path);
    ASSERT_TRUE(conn.ok());
    for (const DistMsg& m : RepresentativeMessages()) {
      ASSERT_TRUE(SendDistMsg(conn.value().get(), m, 2000).ok());
    }
  });
  auto server_conn = listener.value()->Accept(2000);
  ASSERT_TRUE(server_conn.ok());
  DistMsgReader reader;
  for (const DistMsg& want : RepresentativeMessages()) {
    DistMsg got;
    auto ev = reader.Next(server_conn.value().get(), &got, 5000, nullptr);
    ASSERT_TRUE(ev.ok()) << ev.status().ToString();
    ASSERT_EQ(ev.value(), DistReadEvent::kMsg);
    ExpectSameMsg(want, got);
  }
  client.join();
  EXPECT_GT(env.conn_reads_attempted(), 3);
}

// ------------------------------------------------------------------------
// Differential gates: distributed vs single-process
// ------------------------------------------------------------------------

Result<FactorModel> TrainReference(const TcssConfig& cfg,
                                   std::vector<EpochStats>* epochs) {
  TcssTrainer trainer(SmallWorld().data, SmallWorld().train, cfg);
  TrainOptions topts;
  return trainer.Train(topts, [epochs](const EpochStats& s,
                                       const FactorModel&) {
    if (epochs != nullptr) epochs->push_back(s);
  });
}

TEST(DistDifferentialTest, SingleWorkerMatchesTrainerBitwise) {
  const TcssConfig cfg = DistConfig(10);
  std::vector<EpochStats> ref_epochs;
  auto ref = TrainReference(cfg, &ref_epochs);
  ASSERT_TRUE(ref.ok());

  DistRunSpec spec;
  spec.num_workers = 1;
  std::vector<EpochStats> dist_epochs;
  spec.tweak_coordinator = [&dist_epochs](DistCoordinatorOptions* o) {
    o->epoch_callback = [&dist_epochs](const EpochStats& s) {
      dist_epochs.push_back(s);
    };
  };
  DistRun run = RunDist(cfg, SmallWorld().train, spec);
  ASSERT_TRUE(run.ok()) << run.coordinator_status.ToString();

  EXPECT_TRUE(BitIdentical(run.model, ref.value()))
      << "W=1 distributed model deviates from TcssTrainer";
  ASSERT_EQ(dist_epochs.size(), ref_epochs.size());
  for (size_t e = 0; e < ref_epochs.size(); ++e) {
    EXPECT_EQ(dist_epochs[e].epoch, ref_epochs[e].epoch);
    EXPECT_EQ(dist_epochs[e].loss_l2, ref_epochs[e].loss_l2) << "epoch " << e;
    EXPECT_EQ(dist_epochs[e].loss_ts, ref_epochs[e].loss_ts) << "epoch " << e;
    EXPECT_EQ(dist_epochs[e].grad_norm, ref_epochs[e].grad_norm)
        << "epoch " << e;
    EXPECT_EQ(dist_epochs[e].lr, ref_epochs[e].lr) << "epoch " << e;
  }
}

TEST(DistDifferentialTest, TwoWorkersMatchSingleProcessWithinReduceOrder) {
  const TcssConfig cfg = DistConfig(10);
  auto ref = TrainReference(cfg, nullptr);
  ASSERT_TRUE(ref.ok());

  DistRunSpec spec;
  spec.num_workers = 2;
  DistRun run = RunDist(cfg, SmallWorld().train, spec);
  ASSERT_TRUE(run.ok()) << run.coordinator_status.ToString();

  // Only the summation order of the U2/U3/h gradient partials differs
  // (per-worker blocks instead of per-thread shards), so the trajectories
  // agree to reduction-order rounding. DESIGN.md §11 documents the bound.
  EXPECT_LE(MaxAbsDiff(run.model.u1, ref.value().u1), 1e-12);
  EXPECT_LE(MaxAbsDiff(run.model.u2, ref.value().u2), 1e-12);
  EXPECT_LE(MaxAbsDiff(run.model.u3, ref.value().u3), 1e-12);
  for (size_t t = 0; t < run.model.h.size(); ++t) {
    EXPECT_LE(std::abs(run.model.h[t] - ref.value().h[t]), 1e-12);
  }
}

TEST(DistDifferentialTest, TwoWorkerRunsAreBitwiseReproducible) {
  const TcssConfig cfg = DistConfig(8);
  DistRunSpec spec;
  spec.num_workers = 2;
  DistRun a = RunDist(cfg, SmallWorld().train, spec);
  DistRun b = RunDist(cfg, SmallWorld().train, spec);
  ASSERT_TRUE(a.ok()) << a.coordinator_status.ToString();
  ASSERT_TRUE(b.ok()) << b.coordinator_status.ToString();
  EXPECT_TRUE(BitIdentical(a.model, b.model));
}

TEST(DistDifferentialTest, ThreeWorkersHandleUnevenRowBlocks) {
  // Trim one user so I % 3 != 0 and the blocks differ in size.
  auto trimmed =
      SliceTensorRows(SmallWorld().train, 0, SmallWorld().train.dim_i() - 1);
  ASSERT_TRUE(trimmed.ok());
  const SparseTensor& full = trimmed.value();
  ASSERT_NE(full.dim_i() % 3, 0u);
  const TcssConfig cfg = DistConfig(6);
  DistRunSpec spec;
  spec.num_workers = 3;
  DistRun run = RunDist(cfg, full, spec);
  ASSERT_TRUE(run.ok()) << run.coordinator_status.ToString();
  EXPECT_EQ(run.model.u1.rows(), full.dim_i());
  EXPECT_EQ(run.model.u2.rows(), full.dim_j());
  EXPECT_EQ(run.model.u3.rows(), full.dim_k());
  for (size_t i = 0; i < run.model.u1.size(); ++i) {
    ASSERT_TRUE(std::isfinite(run.model.u1.data()[i]));
  }
  EXPECT_EQ(run.cstats.epochs, 6);
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(run.wstats[r].steps_applied, 6) << "rank " << r;
  }
}

// ------------------------------------------------------------------------
// Chaos harness: kill/restart, wire faults, stragglers, partitions
// ------------------------------------------------------------------------

TEST(DistChaosTest, KilledWorkerRestartsAndResumesBitIdentically) {
  const TcssConfig cfg = DistConfig(12);
  const std::string dir = ScratchDir("kill_resume");
  auto with_ckpts = [&dir](int, DistWorkerOptions* w) {
    w->checkpoint_dir = dir;  // shard naming keeps ranks apart
    w->checkpoint_retain = 8;
  };

  // Reference: the same checkpointed run, uninterrupted.
  DistRunSpec ref_spec;
  ref_spec.num_workers = 2;
  ref_spec.tweak_worker = with_ckpts;
  ref_spec.tweak_coordinator = [](DistCoordinatorOptions* o) {
    o->checkpoint_every = 3;
  };
  DistRun ref = RunDist(cfg, SmallWorld().train, ref_spec);
  ASSERT_TRUE(ref.ok()) << ref.coordinator_status.ToString();

  // Chaos run in a fresh directory: kill rank 1 right after epoch 5's
  // step broadcast (it dies at its next gradient computation), restart it,
  // and demand the exact bytes of the uninterrupted run.
  const std::string dir2 = ScratchDir("kill_resume_chaos");
  std::atomic<bool> kill{false};
  DistRunSpec spec;
  spec.num_workers = 2;
  spec.kill_flags[1] = &kill;
  spec.tweak_worker = [&dir2, &kill](int rank, DistWorkerOptions* w) {
    w->checkpoint_dir = dir2;
    w->checkpoint_retain = 8;
    if (rank == 1) w->abrupt_stop = &kill;
  };
  bool killed = false;  // epoch 5 is replayed after recovery; kill once
  spec.tweak_coordinator = [&kill, &killed](DistCoordinatorOptions* o) {
    o->checkpoint_every = 3;
    o->heartbeat_timeout_ms = 600;
    o->epoch_callback = [&kill, &killed](const EpochStats& s) {
      if (s.epoch == 5 && !killed) {
        killed = true;
        kill.store(true);
      }
    };
  };
  DistRun run = RunDist(cfg, SmallWorld().train, spec);
  ASSERT_TRUE(run.ok()) << run.coordinator_status.ToString();

  EXPECT_TRUE(BitIdentical(run.model, ref.model))
      << "kill-and-resume changed the trained bytes";
  EXPECT_GE(run.cstats.recoveries, 1);
  EXPECT_GE(run.wstats[1].reloads, 1) << "rank 1 never warm-restarted";
  // The survivor was restarted from the common snapshot too.
  EXPECT_GE(run.wstats[0].reloads, 1);

  std::filesystem::remove_all(dir);
  std::filesystem::remove_all(dir2);
}

TEST(DistChaosTest, TransientWireFaultRecoversBitIdentically) {
  const TcssConfig cfg = DistConfig(12);
  const std::string dir = ScratchDir("wire_ref");
  auto with_ckpts_at = [](const std::string& d) {
    return [d](int, DistWorkerOptions* w) { w->checkpoint_dir = d; };
  };
  DistRunSpec ref_spec;
  ref_spec.num_workers = 2;
  ref_spec.tweak_worker = with_ckpts_at(dir);
  ref_spec.tweak_coordinator = [](DistCoordinatorOptions* o) {
    o->checkpoint_every = 3;
  };
  DistRun ref = RunDist(cfg, SmallWorld().train, ref_spec);
  ASSERT_TRUE(ref.ok()) << ref.coordinator_status.ToString();

  // Rank 1 talks through a fault-injection env. After epoch 4's step its
  // next read is torn down (a reset mid-stream); injection clears shortly
  // after, while the worker is still inside its reconnect backoff.
  FaultInjectionEnv chaos_env(Env::Default());
  const std::string dir2 = ScratchDir("wire_chaos");
  DistRunSpec spec;
  spec.num_workers = 2;
  spec.tweak_worker = [&](int rank, DistWorkerOptions* w) {
    w->checkpoint_dir = dir2;
    if (rank == 1) w->env = &chaos_env;
  };
  std::thread clearer;
  bool armed = false;  // epoch 4 re-runs after recovery; inject only once
  spec.tweak_coordinator = [&](DistCoordinatorOptions* o) {
    o->checkpoint_every = 3;
    o->heartbeat_timeout_ms = 600;
    // The injected fault can kill several short-lived sessions before it
    // clears; the budget must not turn that storm into an abort.
    o->max_recoveries = 100000;
    o->epoch_callback = [&](const EpochStats& s) {
      if (s.epoch == 4 && !armed) {
        armed = true;
        chaos_env.set_fail_conn_reads_after(0);
        clearer = std::thread([&chaos_env] {
          std::this_thread::sleep_for(std::chrono::milliseconds(400));
          chaos_env.set_fail_conn_reads_after(-1);
        });
      }
    };
  };
  DistRun run = RunDist(cfg, SmallWorld().train, spec);
  if (clearer.joinable()) clearer.join();
  ASSERT_TRUE(run.ok()) << run.coordinator_status.ToString();

  EXPECT_TRUE(BitIdentical(run.model, ref.model))
      << "wire fault changed the trained bytes";
  EXPECT_GE(run.wstats[1].reconnects + run.cstats.recoveries, 1)
      << "the injected fault was never hit";
  EXPECT_GE(chaos_env.conn_faults_injected(), 1);

  std::filesystem::remove_all(dir);
  std::filesystem::remove_all(dir2);
}

TEST(DistChaosTest, WholeRunSurvivesSplitReadsBitIdentically) {
  const TcssConfig cfg = DistConfig(8);
  DistRunSpec plain;
  plain.num_workers = 2;
  DistRun ref = RunDist(cfg, SmallWorld().train, plain);
  ASSERT_TRUE(ref.ok()) << ref.coordinator_status.ToString();

  // Every byte of every frame — handshake, gradients, reduced steps,
  // finals — now arrives in 7-byte dribbles on both sides.
  FaultInjectionEnv env(Env::Default());
  env.set_conn_read_chunk(7);
  DistRunSpec spec;
  spec.num_workers = 2;
  spec.tweak_worker = [&env](int, DistWorkerOptions* w) { w->env = &env; };
  spec.tweak_coordinator = [&env](DistCoordinatorOptions* o) {
    o->env = &env;
  };
  DistRun run = RunDist(cfg, SmallWorld().train, spec);
  ASSERT_TRUE(run.ok()) << run.coordinator_status.ToString();
  EXPECT_TRUE(BitIdentical(run.model, ref.model));
  EXPECT_GT(env.conn_reads_attempted(), 100);
}

TEST(DistChaosTest, PermanentPartitionAbortsInBoundedTime) {
  // Rank 1's receive path dies permanently mid-run: it can still connect
  // and send kHello, but never hears a reply, so every recovery collapses
  // again. The run must abort once the recovery budget is spent — bounded
  // time, clear diagnostic, no hang.
  const TcssConfig cfg = DistConfig(30);
  FaultInjectionEnv dead_env(Env::Default());
  DistRunSpec spec;
  spec.num_workers = 2;
  spec.tweak_worker = [&dead_env](int rank, DistWorkerOptions* w) {
    if (rank == 1) {
      w->env = &dead_env;
      w->reconnect_attempts = 3;
      w->reconnect_base_ms = 10;
      w->reconnect_max_ms = 50;
    }
  };
  spec.tweak_coordinator = [&dead_env](DistCoordinatorOptions* o) {
    o->heartbeat_timeout_ms = 400;
    o->world_timeout_ms = 2000;
    o->max_recoveries = 4;
    o->epoch_callback = [&dead_env](const EpochStats& s) {
      if (s.epoch == 3) dead_env.set_fail_conn_reads_after(0);
    };
  };
  const auto t0 = std::chrono::steady_clock::now();
  DistRun run = RunDist(cfg, SmallWorld().train, spec);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_FALSE(run.coordinator_status.ok())
      << "a permanently partitioned run must not report success";
  EXPECT_FALSE(run.worker_status[1].ok());
  EXPECT_LT(secs, 60.0) << "partition abort took too long";
}

TEST(DistChaosTest, StragglerIsWarnedNotKilled) {
  const TcssConfig cfg = DistConfig(8);
  DistRunSpec plain;
  plain.num_workers = 2;
  DistRun ref = RunDist(cfg, SmallWorld().train, plain);
  ASSERT_TRUE(ref.ok());

  DistRunSpec spec;
  spec.num_workers = 2;
  spec.tweak_worker = [](int rank, DistWorkerOptions* w) {
    if (rank == 1) {
      w->stall_before_epoch = 3;  // 600ms nap before epoch 3's gradient
      w->stall_ms = 600;
    }
  };
  spec.tweak_coordinator = [](DistCoordinatorOptions* o) {
    o->straggler_warn_ms = 150;
    o->heartbeat_timeout_ms = 5000;  // slow, but alive: must not be killed
  };
  DistRun run = RunDist(cfg, SmallWorld().train, spec);
  ASSERT_TRUE(run.ok()) << run.coordinator_status.ToString();
  EXPECT_GE(run.cstats.stragglers, 1);
  EXPECT_EQ(run.cstats.recoveries, 0);
  EXPECT_TRUE(BitIdentical(run.model, ref.model))
      << "a straggler must not change the arithmetic";
}

TEST(DistChaosTest, GracefulStopEndsRunEarlyWithAssembledModel) {
  const TcssConfig cfg = DistConfig(50);
  std::atomic<bool> stop{false};
  DistRunSpec spec;
  spec.num_workers = 2;
  spec.tweak_coordinator = [&stop](DistCoordinatorOptions* o) {
    o->stop = &stop;
    o->epoch_callback = [&stop](const EpochStats& s) {
      if (s.epoch == 4) stop.store(true);
    };
  };
  DistRun run = RunDist(cfg, SmallWorld().train, spec);
  ASSERT_TRUE(run.ok()) << run.coordinator_status.ToString();
  EXPECT_GE(run.cstats.epochs, 4);
  EXPECT_LE(run.cstats.epochs, 6);
  EXPECT_EQ(run.model.u1.rows(), SmallWorld().train.dim_i());
}

TEST(DistChaosTest, DivergenceGuardMatchesTrainerAtOneWorker) {
  // An absurd learning rate diverges immediately; the distributed guard
  // must reach the same verdict (NotConverged after the retry budget) as
  // the single-process trainer, by the same rollback path.
  TcssConfig cfg = DistConfig(10);
  cfg.learning_rate = 1e12;

  TcssTrainer trainer(SmallWorld().data, SmallWorld().train, cfg);
  TrainOptions topts;
  auto ref = trainer.Train(topts, nullptr);

  DistRunSpec spec;
  spec.num_workers = 1;
  DistRun run = RunDist(cfg, SmallWorld().train, spec);

  ASSERT_FALSE(ref.ok());
  EXPECT_FALSE(run.coordinator_status.ok());
  EXPECT_EQ(run.coordinator_status.code(), ref.status().code());
  EXPECT_EQ(run.cstats.rollbacks, 3);  // max_divergence_retries
}

TEST(DistChaosTest, FingerprintMismatchAbortsTheImpostor) {
  // A worker launched with yesterday's config must be turned away at the
  // handshake, not silently averaged in.
  const TcssConfig cfg = DistConfig(6);
  TcssConfig stale = cfg;
  stale.learning_rate *= 2.0;

  const SparseTensor& full = SmallWorld().train;
  const RowPartition part(full.dim_i(), 1);
  DistCoordinatorOptions copts;
  copts.num_workers = 1;
  copts.socket_path = SockPath("fpr");
  copts.world_timeout_ms = 4000;
  DistCoordinator coordinator(cfg, full.dim_i(), full.dim_j(), full.dim_k(),
                              copts);

  Status impostor_status = Status::OK();
  std::thread impostor([&] {
    auto slice = SliceTensorRows(full, 0, full.dim_i());
    ASSERT_TRUE(slice.ok());
    DistWorkerOptions wopts;
    wopts.rank = 0;
    wopts.num_workers = 1;
    wopts.socket_path = copts.socket_path;
    wopts.reconnect_attempts = 2;
    wopts.reconnect_base_ms = 10;
    DistWorker worker(stale, full.dim_i(), full.dim_j(), full.dim_k(),
                      slice.MoveValue(), wopts);
    impostor_status = worker.Run();
  });
  auto result = coordinator.Run();
  impostor.join();
  EXPECT_FALSE(result.ok());  // no compatible worker ever arrived
  EXPECT_FALSE(impostor_status.ok());
}

// ------------------------------------------------------------------------
// Multi-process smoke: real processes, real SIGKILL
// ------------------------------------------------------------------------

#ifdef TCSS_CLI_PATH

pid_t Spawn(const std::vector<std::string>& argv) {
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
  cargv.push_back(nullptr);
  pid_t pid = fork();
  if (pid == 0) {
    // Quiet child: the test log only needs the verdict.
    std::freopen("/dev/null", "w", stdout);
    execv(cargv[0], cargv.data());
    _exit(127);
  }
  return pid;
}

int WaitFor(pid_t pid) {
  int status = 0;
  waitpid(pid, &status, 0);
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  return -WTERMSIG(status);
}

std::vector<std::string> CommonArgs(const std::string& extra_users) {
  return {TCSS_CLI_PATH,       "train",
          "--streamed-users",  extra_users,
          "--streamed-pois",   "500",
          "--streamed-bins",   "8",
          "--dist-workers",    "2",
          "--epochs",          "40",
          "--rank",            "6",
          "--num-threads",     "1"};
}

TEST(DistMultiProcessTest, SigkilledWorkerProcessResumesToIdenticalBytes) {
  const std::string users = "20000";
  const std::string dir = ScratchDir("mp_smoke");
  const std::string ref_model = dir + "/ref.fm";
  const std::string chaos_model = dir + "/chaos.fm";
  std::filesystem::create_directories(dir);

  auto run_fleet = [&](const std::string& sock, const std::string& ckpt_dir,
                       const std::string& model_path, bool kill_one) {
    auto coord = CommonArgs(users);
    coord.insert(coord.end(), {"--dist-coordinator", sock, "--model",
                               model_path, "--checkpoint-every", "4",
                               "--heartbeat-timeout-ms", "1000",
                               "--world-timeout-ms", "30000"});
    const pid_t cpid = Spawn(coord);
    auto worker_args = [&](int rank) {
      auto w = CommonArgs(users);
      w.insert(w.end(), {"--dist-worker", sock, "--dist-rank",
                         std::to_string(rank), "--checkpoint-dir", ckpt_dir,
                         "--checkpoint-retain", "16"});
      return w;
    };
    const pid_t w0 = Spawn(worker_args(0));
    pid_t w1 = Spawn(worker_args(1));

    if (kill_one) {
      // Deterministic trigger: SIGKILL rank 1 once its first shard
      // checkpoint exists (epoch 4 of 40) — no timing guesswork.
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(60);
      bool saw_ckpt = false;
      while (std::chrono::steady_clock::now() < deadline) {
        for (const auto& e :
             std::filesystem::directory_iterator(ckpt_dir)) {
          const std::string name = e.path().filename().string();
          if (name.find("s1of2") != std::string::npos &&
              name.find(".tmp") == std::string::npos) {
            saw_ckpt = true;
          }
        }
        if (saw_ckpt) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
      EXPECT_TRUE(saw_ckpt) << "rank 1 never wrote a shard checkpoint";
      kill(w1, SIGKILL);
      WaitFor(w1);
      // The supervisor restarts the dead rank; it re-Hellos and the fleet
      // resumes from the newest common snapshot.
      w1 = Spawn(worker_args(1));
    }

    EXPECT_EQ(WaitFor(cpid), 0) << "coordinator failed";
    EXPECT_EQ(WaitFor(w0), 0) << "worker 0 failed";
    EXPECT_EQ(WaitFor(w1), 0) << "worker 1 failed";
  };

  const std::string ref_ckpts = dir + "/ck_ref";
  const std::string chaos_ckpts = dir + "/ck_chaos";
  std::filesystem::create_directories(ref_ckpts);
  std::filesystem::create_directories(chaos_ckpts);
  run_fleet(SockPath("mpr"), ref_ckpts, ref_model, /*kill_one=*/false);
  run_fleet(SockPath("mpc"), chaos_ckpts, chaos_model, /*kill_one=*/true);

  auto read_all = [](const std::string& p) {
    auto r = Env::Default()->ReadFileToString(p);
    EXPECT_TRUE(r.ok()) << p;
    return r.ok() ? r.value() : std::string();
  };
  const std::string ref_bytes = read_all(ref_model);
  ASSERT_FALSE(ref_bytes.empty());
  EXPECT_EQ(ref_bytes, read_all(chaos_model))
      << "SIGKILL + restart changed the trained model bytes";

  std::filesystem::remove_all(dir);
}

#endif  // TCSS_CLI_PATH

}  // namespace
}  // namespace tcss
